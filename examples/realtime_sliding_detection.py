"""Real-time detection loop: daily window slides with warm-started LP.

The paper's motivation is *real-time* fraud detection.  A production
deployment does not rebuild its 10-day window from scratch every day — it
slides the window incrementally and warm-starts LP from yesterday's labels,
because most of the graph (and most of the converged labeling) carries
over.  This example runs that daily loop and shows the warm start cutting
LP iterations every day after the first.

Run with::

    python examples/realtime_sliding_detection.py
"""

import numpy as np

from repro import GLPEngine, SeededFraudLP
from repro.pipeline import (
    IncrementalWindowBuilder,
    SeedStore,
    TransactionStream,
    TransactionStreamConfig,
    warm_start_seeds,
)


def main() -> None:
    stream = TransactionStream(
        TransactionStreamConfig(
            num_days=20,
            num_users=20_000,
            num_products=12_000,
            transactions_per_day=6_000,
            num_rings=15,
            ring_size=10,
            seed=17,
        )
    )
    store = SeedStore(stream.blacklist())
    engine = GLPEngine()

    # Bootstrap a 10-day window.
    builder = IncrementalWindowBuilder(stream)
    for day in range(10):
        builder.add_day(day)

    previous_window = None
    previous_labels = None
    print("day  window(V/E)        seeds  iters  modeled-LP   labeled")
    for day in range(5):
        window = builder.build()
        base_seeds = store.window_seeds(window)
        if previous_window is None:
            seeds = base_seeds
        else:
            seeds = warm_start_seeds(
                previous_window, previous_labels, window, base_seeds
            )
        result = engine.run(
            window.graph, SeededFraudLP(seeds), max_iterations=20
        )
        labeled = int((result.labels >= 0).sum())
        kind = "cold " if previous_window is None else "warm "
        print(
            f"{10 + day:3d}  {window.graph.num_vertices:6,}/"
            f"{window.graph.num_edges:8,}  {len(seeds):5d}  "
            f"{result.num_iterations:5d}  "
            f"{result.total_seconds * 1e3:7.3f} ms  {labeled:6,}  ({kind})"
        )
        previous_window, previous_labels = window, result.labels
        builder.slide()

    print(
        "\nwarm-started days converge in fewer LP iterations because the "
        "previous window's labels seed ~all of the stable clusters."
    )


if __name__ == "__main__":
    main()
