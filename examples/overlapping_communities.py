"""Overlapping community detection with SLP (speaker-listener LP).

Classic LP assigns each vertex to exactly one community; SLP keeps a
bounded memory of labels per vertex, so vertices on community borders can
belong to several.  This example builds two communities sharing a bridge
group and shows SLP assigning the bridge vertices to both.

Run with::

    python examples/overlapping_communities.py
"""

import numpy as np

from repro import GLPEngine, SpeakerListenerLP
from repro.graph.builder import GraphBuilder


def overlapping_graph(block: int = 30, bridge: int = 6, seed: int = 3):
    """Two dense blocks sharing `bridge` vertices that sit in both."""
    rng = np.random.default_rng(seed)
    n = 2 * block + bridge
    builder = GraphBuilder(num_vertices=n)
    groups = {
        "left": list(range(block)) + list(range(2 * block, n)),
        "right": list(range(block, 2 * block)) + list(range(2 * block, n)),
    }
    for members in groups.values():
        members = np.array(members)
        for _ in range(block * 6):
            u, v = rng.choice(members, size=2, replace=False)
            builder.add_edge(int(u), int(v))
    return builder.build(symmetrize=True, name="overlap"), groups


def main() -> None:
    graph, groups = overlapping_graph()
    bridge = np.arange(60, 66)
    print(
        f"graph: {graph.num_vertices} vertices "
        f"(two blocks of 30 + {bridge.size} bridge vertices)"
    )

    program = SpeakerListenerLP(max_labels=5, prune_threshold=0.08, seed=1)
    result = GLPEngine().run(
        graph, program, max_iterations=40, stop_on_convergence=False
    )

    communities = program.overlapping_communities()
    big = {
        label: members
        for label, members in communities.items()
        if len(members) >= 10
    }
    print(f"SLP found {len(big)} large (overlapping) communities")

    membership_counts = np.zeros(graph.num_vertices, dtype=int)
    for members in big.values():
        membership_counts[members] += 1

    multi = np.flatnonzero(membership_counts > 1)
    print(f"vertices in more than one community: {multi.tolist()}")
    overlap_hits = np.isin(bridge, multi).sum()
    print(
        f"{overlap_hits}/{bridge.size} bridge vertices were assigned to "
        f"multiple communities"
    )
    print(
        "mean memberships: "
        f"bridge={membership_counts[bridge].mean():.2f}, "
        f"non-bridge={membership_counts[:60].mean():.2f}"
    )


if __name__ == "__main__":
    main()
