"""End-to-end fraud detection: the TaoBao-style pipeline of Figure 1.

Generates a transaction stream with planted fraud rings, builds a 30-day
sliding-window graph, propagates labels from black-listed seed users with
GLP, scores the resulting clusters, and reports detection quality plus the
per-stage time split — including how the LP stage's share collapses when
GLP replaces the in-house distributed engine.

Run with::

    python examples/fraud_detection_pipeline.py
"""

from repro import GLPEngine
from repro.baselines import InHouseDistributedEngine
from repro.pipeline import (
    ClusterDetector,
    FraudDetectionPipeline,
    TransactionStream,
    TransactionStreamConfig,
)


def run_with(engine, label: str, stream: TransactionStream) -> None:
    detector = ClusterDetector(engine, max_iterations=20, max_hops=6)
    pipeline = FraudDetectionPipeline(stream, detector)
    report = pipeline.run_window(window_days=30)

    print(f"\n=== {label} ===")
    print(
        f"window graph: {report.num_vertices:,} vertices, "
        f"{report.num_edges:,} edges"
    )
    print(
        f"stage times: build={report.construction_seconds * 1e3:.2f} ms, "
        f"LP={report.lp_seconds * 1e3:.2f} ms, "
        f"downstream={report.downstream_seconds * 1e3:.2f} ms"
    )
    print(f"LP share of pipeline: {report.lp_fraction:.0%}")
    print(
        f"clusters: {report.num_clusters} detected, "
        f"{report.num_fraud_clusters} classified fraudulent"
    )
    print(
        f"user-level precision={report.metrics.precision:.2f} "
        f"recall={report.metrics.recall:.2f} f1={report.metrics.f1:.2f}"
    )


def main() -> None:
    stream = TransactionStream(
        TransactionStreamConfig(num_days=60, num_rings=30, seed=7)
    )
    print(
        f"stream: {stream.transactions.size:,} transactions, "
        f"{len(stream.rings)} planted fraud rings, "
        f"{len(stream.blacklist())} black-listed seed users"
    )

    # The production baseline: LP dominates the pipeline (~75%).
    run_with(
        InHouseDistributedEngine(), "in-house distributed engine", stream
    )
    # GLP on one simulated GPU: same detections, LP share collapses.
    run_with(GLPEngine(), "GLP (one simulated Titan V)", stream)


if __name__ == "__main__":
    main()
