"""Quickstart: community detection with GLP on a simulated GPU.

Builds a graph with planted communities, runs classic label propagation on
the GLP engine, and inspects both the detected communities and the modeled
GPU performance counters.

Run with::

    python examples/quickstart.py
"""

from collections import Counter

import numpy as np

from repro import ClassicLP, GLPEngine
from repro.graph.generators import planted_partition_graph


def main() -> None:
    # 1. A graph with 20 planted communities (p_in=0.9 -> strong structure).
    graph, truth = planted_partition_graph(
        num_vertices=2000,
        num_communities=20,
        avg_degree=12.0,
        p_in=0.9,
        seed=42,
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Run classic LP on the (simulated) GPU.
    engine = GLPEngine()
    result = engine.run(graph, ClassicLP(), max_iterations=20)
    print(
        f"converged={result.converged} after {result.num_iterations} "
        f"iterations; modeled GPU time {result.total_seconds * 1e3:.3f} ms"
    )

    # 3. Detected communities vs the planted ground truth.
    sizes = result.community_sizes()
    print(f"found {sizes.size} communities; largest: {sizes[:5].tolist()}")
    correct = 0
    for label in np.unique(result.labels):
        members = truth[result.labels == label]
        correct += Counter(members.tolist()).most_common(1)[0][1]
    print(f"majority-label purity: {correct / graph.num_vertices:.1%}")

    # 4. What the simulated hardware did.
    counters = result.total_counters
    print(
        f"global memory transactions: {counters.global_transactions:,}; "
        f"SIMT lane utilization: {counters.lane_utilization:.1%}"
    )
    print("per-kernel time breakdown (ms):")
    for kernel, seconds in sorted(
        engine.device.kernel_breakdown().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {kernel:16s} {seconds * 1e3:8.4f}")


if __name__ == "__main__":
    main()
