"""Scaling past device memory: hybrid CPU-GPU and multi-GPU execution.

Reproduces the Section 5.4 scenario in miniature: a window graph larger
than the (scaled) device memory forces GLP into the CPU-GPU heterogeneous
mode; the example reports the residency split, the visible PCIe-transfer
share (< 10 % in the paper), and the gain from adding a second GPU.

Run with::

    python examples/billion_scale_hybrid.py
"""

import numpy as np

from repro import SeededFraudLP
from repro.core.hybrid import HybridEngine, run_auto
from repro.core.multigpu import MultiGPUEngine
from repro.gpusim.config import TITAN_V
from repro.pipeline import TransactionStream, TransactionStreamConfig
from repro.pipeline.window import build_window_graph


def main() -> None:
    stream = TransactionStream(
        TransactionStreamConfig(num_days=60, seed=5)
    )
    window = build_window_graph(stream, 0, 60)
    graph = window.graph
    print(
        f"window graph: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges, {graph.nbytes / 1e6:.1f} MB"
    )

    # Translate the black-list to window vertex ids.
    raw = stream.blacklist()
    users = np.fromiter(raw.keys(), dtype=np.int64)
    labels = np.fromiter(raw.values(), dtype=np.int64)
    vertices = window.window_vertex_of_user(users)
    seeds = {
        int(v): int(l)
        for v, l in zip(vertices[vertices >= 0], labels[vertices >= 0])
    }

    # A device deliberately smaller than the graph (the paper's regime:
    # billion-edge windows vs 12 GB of HBM2).
    small_device = TITAN_V.with_memory(int(graph.nbytes * 0.75))
    print(
        f"device memory: {small_device.global_mem_bytes / 1e6:.1f} MB "
        f"(~75% of the graph) -> hybrid mode expected"
    )

    result, engine = run_auto(
        graph,
        SeededFraudLP(seeds),
        spec=small_device,
        max_iterations=20,
        stop_on_convergence=False,
    )
    assert isinstance(engine, HybridEngine)
    stats = engine.last_stats
    print(f"\nengine: {engine.name}")
    print(
        f"residency: {stats.num_resident_chunks}/{stats.num_chunks} chunks "
        f"on device ({stats.resident_edge_fraction:.0%} of edges); the CPU "
        f"co-processes the rest"
    )
    print(
        f"per-iteration elapsed: {result.seconds_per_iteration * 1e3:.3f} ms"
    )
    print(
        f"visible transfer share: {stats.transfer_fraction:.1%} "
        f"(paper: < 10%)"
    )

    # Add a second GPU: the combined memory fits the graph and the kernel
    # work halves, at the cost of exchanging changed labels per iteration.
    multi = MultiGPUEngine(2, spec=small_device).run(
        graph,
        SeededFraudLP(seeds),
        max_iterations=20,
        stop_on_convergence=False,
    )
    assert np.array_equal(multi.labels, result.labels)
    print(
        f"\n2 GPUs: {multi.seconds_per_iteration * 1e3:.3f} ms/iteration "
        f"-> {result.seconds_per_iteration / multi.seconds_per_iteration:.2f}x "
        f"over the hybrid single-GPU run"
    )


if __name__ == "__main__":
    main()
