"""Writing a custom LP variant with the GLP hook API (paper, Table 1).

Data engineers deploy new fraud-detection strategies by overriding the four
hooks — no GPU knowledge needed.  This example builds a *degree-discounted*
LP: high-degree neighbors (popular products, celebrity accounts) get their
votes damped, so labels spread through tight peer groups rather than hubs —
a common trick against label leakage through popular products.

The same program runs unchanged on every engine (CPU serial, OMP, GLP).

Run with::

    python examples/custom_lp_variant.py
"""

import numpy as np

from repro import GLPEngine, LPProgram
from repro.baselines import SerialEngine
from repro.graph.generators.community import fraud_ring_graph
from repro.types import WEIGHT_DTYPE


class DegreeDiscountedLP(LPProgram):
    """Classic LP with hub-damped votes.

    *LoadNeighbor* rescales each neighbor's contribution by
    ``1 / log2(2 + degree(neighbor))`` so hubs cannot dominate the MFL.
    """

    name = "degree-discounted-lp"
    frontier_safe = True

    def init_state(self, graph, labels):
        self._degrees = graph.degrees

    def load_neighbor(self, vertex_ids, neighbor_ids, neighbor_labels, edge_weights):
        damping = 1.0 / np.log2(2.0 + self._degrees[neighbor_ids])
        return neighbor_labels, (edge_weights * damping).astype(WEIGHT_DTYPE)


def main() -> None:
    # A background graph with 8 dense rings attached through hub products.
    graph, ring_id = fraud_ring_graph(
        num_background=3000,
        num_rings=8,
        ring_size=15,
        background_degree=6.0,
        seed=11,
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    program = DegreeDiscountedLP()
    result = GLPEngine().run(graph, program, max_iterations=15)
    print(
        f"GLP: {result.num_iterations} iterations, "
        f"{np.unique(result.labels).size} communities, "
        f"modeled {result.total_seconds * 1e6:.1f} us"
    )

    # The hooks are engine-agnostic: the CPU reference computes the exact
    # same labels.
    reference = SerialEngine().run(
        graph, DegreeDiscountedLP(), max_iterations=15
    )
    assert np.array_equal(result.labels, reference.labels)
    print("CPU reference produces identical labels — hooks are portable.")

    # How well do detected communities isolate the planted rings?
    for ring in range(8):
        members = np.flatnonzero(ring_id == ring)
        labels = result.labels[members]
        dominant = np.bincount(labels % labels.size).argmax()
        coherent = np.max(np.unique(labels, return_counts=True)[1])
        print(
            f"ring {ring}: {coherent}/{members.size} members share one label"
        )


if __name__ == "__main__":
    main()
