"""Graph partitioning with balanced LP (extension variant).

Balanced label propagation (Ugander & Backstrom — the paper's citation
[34]) shards a massive graph into near-equal parts while keeping neighbors
together: the preprocessing step before distributing a graph across
machines.  This example partitions an LFR benchmark into 4 shards and
compares edge-cut and balance against naive round-robin sharding.

Run with::

    python examples/graph_partitioning.py
"""

import numpy as np

from repro import GLPEngine
from repro.algorithms import BalancedLP
from repro.graph.generators.lfr import lfr_graph


def main() -> None:
    graph, _ = lfr_graph(2000, mu=0.15, avg_degree=12.0, seed=8)
    print(
        f"graph: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges"
    )

    program = BalancedLP(num_partitions=4, penalty=6.0, slack=0.05)

    # The round-robin initial assignment is perfectly balanced but cuts
    # almost every edge.
    initial = program.init_labels(graph)
    program.init_state(graph, initial)
    print(
        f"\nround-robin start: edge cut "
        f"{program.edge_cut_fraction(graph, initial):.1%}, "
        f"imbalance {program.imbalance():.3f}"
    )

    result = GLPEngine().run(
        graph, program, max_iterations=25, stop_on_convergence=False
    )
    cut = program.edge_cut_fraction(graph, result.labels)
    print(
        f"balanced LP:       edge cut {cut:.1%}, "
        f"imbalance {program.imbalance():.3f}"
    )
    print(f"partition sizes: {program.partition_sizes.tolist()}")

    # What an unconstrained LP would do: great locality, terrible balance.
    from repro import ClassicLP

    free = GLPEngine().run(graph, ClassicLP(), max_iterations=25)
    sizes = np.sort(np.bincount(free.labels))[::-1][:4]
    print(
        f"\nunconstrained classic LP for contrast: "
        f"{np.unique(free.labels).size} communities, "
        f"top sizes {sizes.tolist()} — locality without balance"
    )
    print(
        "\nbalanced LP trades a little edge locality for shard balance — "
        "the partitioning trade-off of Ugander & Backstrom."
    )


if __name__ == "__main__":
    main()
