"""Compressed sparse row (CSR) graph storage.

GLP stores graphs in CSR format (paper, Section 3.1): an ``offsets`` array of
length ``num_vertices + 1`` and an ``indices`` array of length ``num_edges``
where the *incoming* neighbors of vertex ``v`` are
``indices[offsets[v]:offsets[v + 1]]``.  LP reads the labels of incoming
neighbors, so — matching the paper's notation ``N(v)`` — the adjacency stored
here is the incoming adjacency.  For undirected graphs the two coincide.

The class is deliberately immutable: engines share one graph across many
iterations and devices, and the simulator relies on stable array identities
for its memory accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


@dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in CSR (incoming-adjacency) layout.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``offsets[0] == 0``, ``offsets[-1] == num_edges``.
    indices:
        ``int64`` array of neighbor vertex ids, grouped per vertex.
    weights:
        Optional ``float64`` array parallel to ``indices``.  ``None`` means
        every edge has weight 1 (the common case for LP).
    name:
        Human-readable dataset name used in reports.
    """

    offsets: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _reversed_cache: Optional["CSRGraph"] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=VERTEX_DTYPE)
        indices = np.ascontiguousarray(self.indices, dtype=VERTEX_DTYPE)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "indices", indices)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
            object.__setattr__(self, "weights", weights)
        self._validate()
        degrees = np.diff(self.offsets)
        degrees.setflags(write=False)
        object.__setattr__(self, "_degrees", degrees)
        for arr in (self.offsets, self.indices, self.weights):
            if arr is not None:
                arr.setflags(write=False)

    def _validate(self) -> None:
        if self.offsets.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("offsets and indices must be 1-D arrays")
        if self.offsets.size == 0:
            raise GraphError("offsets must have at least one entry")
        if self.offsets[0] != 0:
            raise GraphError(f"offsets[0] must be 0, got {self.offsets[0]}")
        if self.offsets[-1] != self.indices.size:
            raise GraphError(
                f"offsets[-1] ({self.offsets[-1]}) must equal "
                f"len(indices) ({self.indices.size})"
            )
        if np.any(np.diff(self.offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        n = self.num_vertices
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise GraphError(
                f"neighbor ids must be in [0, {n}); "
                f"found range [{self.indices.min()}, {self.indices.max()}]"
            )
        if self.weights is not None and self.weights.shape != self.indices.shape:
            raise GraphError(
                f"weights shape {self.weights.shape} must match indices "
                f"shape {self.indices.shape}"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return int(self.offsets.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of (directed) edges."""
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """In-degree of every vertex (read-only int64 array)."""
        return self._degrees

    @property
    def average_degree(self) -> float:
        """Mean in-degree; 0.0 for an empty graph."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def max_degree(self) -> int:
        """Largest in-degree (0 for an edgeless graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self._degrees.max(initial=0))

    @property
    def nbytes(self) -> int:
        """Total bytes of the CSR arrays (the device-resident footprint)."""
        total = self.offsets.nbytes + self.indices.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Return the (read-only) neighbor slice of vertex ``v``."""
        self._check_vertex(v)
        return self.indices[self.offsets[v] : self.offsets[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Return edge weights of ``v``'s neighbor slice (ones if unweighted)."""
        self._check_vertex(v)
        lo, hi = self.offsets[v], self.offsets[v + 1]
        if self.weights is None:
            return np.ones(int(hi - lo), dtype=WEIGHT_DTYPE)
        return self.weights[lo:hi]

    def degree(self, v: int) -> int:
        """In-degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self._degrees[v])

    def edge_sources(self) -> np.ndarray:
        """Expand offsets to a per-edge source-vertex array.

        ``edge_sources()[e]`` is the vertex whose neighbor list contains edge
        slot ``e``.  This is the standard CSR "expand" used by edge-parallel
        kernels; it costs O(V + E).
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self._degrees
        )

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(v, u)`` pairs where ``u`` is an in-neighbor of ``v``."""
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                yield v, int(u)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """Return the graph with all edge directions flipped.

        The result is memoized on the instance: frontier engines call this
        every run to find the out-neighbors of changed vertices, and the
        graph is immutable, so the O(V + E) transpose is paid once.
        """
        if self._reversed_cache is not None:
            return self._reversed_cache
        sources = self.edge_sources()
        order = np.argsort(self.indices, kind="stable")
        new_indices = sources[order]
        counts = np.bincount(self.indices, minlength=self.num_vertices)
        new_offsets = np.zeros(self.num_vertices + 1, dtype=VERTEX_DTYPE)
        np.cumsum(counts, out=new_offsets[1:])
        new_weights = None
        if self.weights is not None:
            new_weights = self.weights[order]
        rev = CSRGraph(
            offsets=new_offsets,
            indices=new_indices,
            weights=new_weights,
            name=f"{self.name}:reversed",
        )
        object.__setattr__(self, "_reversed_cache", rev)
        return rev

    def subgraph(self, vertices: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(graph, mapping)`` where ``mapping[i]`` is the original id
        of new vertex ``i``.  Edges between retained vertices are kept and
        re-labelled into the compact id space.
        """
        vertices = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
        if vertices.size and (
            vertices[0] < 0 or vertices[-1] >= self.num_vertices
        ):
            raise GraphError("subgraph vertex ids out of range")
        new_id = np.full(self.num_vertices, -1, dtype=VERTEX_DTYPE)
        new_id[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)

        chunks = []
        weight_chunks = []
        counts = np.zeros(vertices.size, dtype=VERTEX_DTYPE)
        for i, v in enumerate(vertices):
            nbrs = self.neighbors(int(v))
            keep = new_id[nbrs] >= 0
            kept = new_id[nbrs[keep]]
            counts[i] = kept.size
            chunks.append(kept)
            if self.weights is not None:
                weight_chunks.append(self.neighbor_weights(int(v))[keep])
        offsets = np.zeros(vertices.size + 1, dtype=VERTEX_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        indices = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        weights = None
        if self.weights is not None:
            weights = (
                np.concatenate(weight_chunks)
                if weight_chunks
                else np.empty(0, dtype=WEIGHT_DTYPE)
            )
        sub = CSRGraph(
            offsets=offsets,
            indices=indices,
            weights=weights,
            name=f"{self.name}:sub",
        )
        return sub, vertices

    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, V={self.num_vertices}, "
            f"E={self.num_edges}, avg_deg={self.average_degree:.1f})"
        )
