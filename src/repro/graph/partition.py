"""Vertex and edge partitioners.

Three consumers need partitions:

* the **hybrid CPU-GPU mode** (Section 3.1) streams edge chunks whose CSR
  slices fit the device memory;
* the **multi-GPU mode** splits vertices across devices;
* the **distributed baseline** (Section 5.4) assigns vertex ranges to
  cluster workers and must know how many *boundary* edges cross partitions
  (they determine the per-superstep network shuffle volume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE


@dataclass(frozen=True)
class VertexPartition:
    """A contiguous vertex range ``[start, stop)`` plus its edge extent."""

    index: int
    start: int
    stop: int
    edge_start: int
    edge_stop: int

    @property
    def num_vertices(self) -> int:
        return self.stop - self.start

    @property
    def num_edges(self) -> int:
        return self.edge_stop - self.edge_start


def partition_by_vertex_count(
    graph: CSRGraph, num_parts: int
) -> List[VertexPartition]:
    """Split vertices into ``num_parts`` near-equal contiguous ranges."""
    if num_parts <= 0:
        raise GraphError("num_parts must be positive")
    n = graph.num_vertices
    bounds = np.linspace(0, n, num_parts + 1).astype(VERTEX_DTYPE)
    return [
        VertexPartition(
            index=i,
            start=int(bounds[i]),
            stop=int(bounds[i + 1]),
            edge_start=int(graph.offsets[bounds[i]]),
            edge_stop=int(graph.offsets[bounds[i + 1]]),
        )
        for i in range(num_parts)
    ]


def partition_by_edge_count(
    graph: CSRGraph, max_edges: int
) -> List[VertexPartition]:
    """Split vertices into contiguous ranges of at most ``max_edges`` edges.

    Used by the hybrid mode: each partition's CSR slice must fit on the
    device.  A single vertex whose degree exceeds ``max_edges`` gets its own
    partition (the engine then sub-chunks its neighbor list).
    """
    if max_edges <= 0:
        raise GraphError("max_edges must be positive")
    parts: List[VertexPartition] = []
    n = graph.num_vertices
    start = 0
    while start < n:
        edge_start = int(graph.offsets[start])
        # Furthest stop such that edges in [edge_start, offsets[stop]) fit.
        stop = int(
            np.searchsorted(
                graph.offsets, edge_start + max_edges, side="right"
            )
            - 1
        )
        if stop <= start:
            stop = start + 1  # oversized single vertex
        stop = min(stop, n)
        parts.append(
            VertexPartition(
                index=len(parts),
                start=start,
                stop=stop,
                edge_start=edge_start,
                edge_stop=int(graph.offsets[stop]),
            )
        )
        start = stop
    if not parts:
        parts.append(VertexPartition(0, 0, 0, 0, 0))
    return parts


def balanced_edge_partition(
    graph: CSRGraph, num_parts: int
) -> List[VertexPartition]:
    """Split vertices into ``num_parts`` ranges of near-equal *edge* counts.

    This is the partitioner used for multi-GPU and distributed execution:
    LP work is proportional to edges, not vertices, so balancing edges avoids
    stragglers.
    """
    if num_parts <= 0:
        raise GraphError("num_parts must be positive")
    total_edges = graph.num_edges
    n = graph.num_vertices
    targets = np.linspace(0, total_edges, num_parts + 1)
    bounds = np.searchsorted(graph.offsets, targets, side="left")
    bounds[0] = 0
    bounds[-1] = n
    # Ensure monotone non-decreasing bounds even for skewed graphs.
    bounds = np.maximum.accumulate(bounds)
    return [
        VertexPartition(
            index=i,
            start=int(bounds[i]),
            stop=int(bounds[i + 1]),
            edge_start=int(graph.offsets[bounds[i]]),
            edge_stop=int(graph.offsets[bounds[i + 1]]),
        )
        for i in range(num_parts)
    ]


def boundary_edge_counts(
    graph: CSRGraph, parts: List[VertexPartition]
) -> np.ndarray:
    """Per-partition count of edges whose source lies in another partition.

    ``result[i]`` is the number of incoming edges of partition ``i`` whose
    neighbor vertex is owned elsewhere — the labels that must be shuffled
    over the network each superstep in the distributed baseline.
    """
    owner = np.empty(graph.num_vertices, dtype=VERTEX_DTYPE)
    for part in parts:
        owner[part.start : part.stop] = part.index
    counts = np.zeros(len(parts), dtype=np.int64)
    sources = graph.edge_sources()
    src_owner = owner[graph.indices]
    dst_owner = owner[sources]
    crossing = src_owner != dst_owner
    if crossing.any():
        counts += np.bincount(
            dst_owner[crossing], minlength=len(parts)
        )
    return counts
