"""Incremental graph construction.

:class:`GraphBuilder` accumulates edges (from generators, files or the
fraud-pipeline window constructor) and finalizes them into a
:class:`~repro.graph.csr.CSRGraph`.  It handles the chores every loader
needs: id compaction, deduplication, self-loop removal and symmetrization.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


class GraphBuilder:
    """Accumulate edges and finalize into a CSR graph.

    Edges are stored as ``(dst, src)`` meaning "``src`` is an incoming
    neighbor of ``dst``" to match the CSR convention of
    :class:`~repro.graph.csr.CSRGraph`.  Convenience method
    :meth:`add_edge` takes the natural ``(src, dst)`` order and flips it.

    Parameters
    ----------
    num_vertices:
        If given, vertex ids must be in ``[0, num_vertices)`` and no id
        compaction happens.  If ``None``, arbitrary hashable ids are accepted
        and compacted to ``0..n-1`` at :meth:`build` time.
    """

    def __init__(self, num_vertices: Optional[int] = None) -> None:
        if num_vertices is not None and num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._dst_chunks: list = []
        self._src_chunks: list = []
        self._weight_chunks: list = []
        self._has_weights = False
        self._id_map: Optional[Dict[object, int]] = (
            None if num_vertices is not None else {}
        )

    # ------------------------------------------------------------------
    def _intern(self, vid) -> int:
        """Map an arbitrary id to a compact integer id."""
        if self._id_map is None:
            v = int(vid)
            if not 0 <= v < self._num_vertices:
                raise GraphError(
                    f"vertex id {v} out of range [0, {self._num_vertices})"
                )
            return v
        existing = self._id_map.get(vid)
        if existing is not None:
            return existing
        new_id = len(self._id_map)
        self._id_map[vid] = new_id
        return new_id

    def add_edge(self, src, dst, weight: Optional[float] = None) -> None:
        """Add one directed edge ``src -> dst``."""
        s = self._intern(src)
        d = self._intern(dst)
        self._dst_chunks.append(np.array([d], dtype=VERTEX_DTYPE))
        self._src_chunks.append(np.array([s], dtype=VERTEX_DTYPE))
        if weight is not None:
            self._has_weights = True
            self._weight_chunks.append(np.array([weight], dtype=WEIGHT_DTYPE))
        elif self._has_weights:
            self._weight_chunks.append(np.ones(1, dtype=WEIGHT_DTYPE))

    def add_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Add a batch of directed edges ``src[i] -> dst[i]``.

        Batch ids must already be integers; when the builder was created
        without ``num_vertices``, integer ids are still interned so they can
        mix with hashable ids added via :meth:`add_edge`.
        """
        src = np.asarray(src)
        dst = np.asarray(dst)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError("src and dst must be 1-D arrays of equal length")
        if self._id_map is not None:
            src = np.fromiter(
                (self._intern(int(v)) for v in src), dtype=VERTEX_DTYPE, count=src.size
            )
            dst = np.fromiter(
                (self._intern(int(v)) for v in dst), dtype=VERTEX_DTYPE, count=dst.size
            )
        else:
            src = src.astype(VERTEX_DTYPE, copy=False)
            dst = dst.astype(VERTEX_DTYPE, copy=False)
            for arr, label in ((src, "src"), (dst, "dst")):
                if arr.size and (
                    arr.min() < 0 or arr.max() >= self._num_vertices
                ):
                    raise GraphError(f"{label} ids out of range")
        self._dst_chunks.append(dst)
        self._src_chunks.append(src)
        if weights is not None:
            weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
            if weights.shape != src.shape:
                raise GraphError("weights must match edge batch length")
            self._has_weights = True
            self._weight_chunks.append(weights)
        elif self._has_weights:
            self._weight_chunks.append(np.ones(src.size, dtype=WEIGHT_DTYPE))

    def add_edge_iter(
        self, edges: Iterable[Tuple[object, object]]
    ) -> None:
        """Add edges from an iterable of ``(src, dst)`` pairs."""
        for src, dst in edges:
            self.add_edge(src, dst)

    # ------------------------------------------------------------------
    @property
    def num_pending_edges(self) -> int:
        """Number of edges added so far (before dedup)."""
        return int(sum(chunk.size for chunk in self._dst_chunks))

    def build(
        self,
        *,
        symmetrize: bool = False,
        dedup: bool = True,
        drop_self_loops: bool = True,
        sort_neighbors: bool = True,
        name: str = "graph",
    ) -> CSRGraph:
        """Finalize accumulated edges into a :class:`CSRGraph`.

        Parameters
        ----------
        symmetrize:
            Add the reverse of every edge (producing an undirected graph).
        dedup:
            Collapse duplicate ``(dst, src)`` pairs.  When weights are
            present, duplicate weights are *summed* — the behaviour the
            transaction-window constructor relies on.
        drop_self_loops:
            Remove ``v -> v`` edges (classic LP ignores them).
        sort_neighbors:
            Sort each neighbor list ascending, giving deterministic layouts.
        """
        n = (
            self._num_vertices
            if self._id_map is None
            else len(self._id_map)
        )
        if self._dst_chunks:
            dst = np.concatenate(self._dst_chunks)
            src = np.concatenate(self._src_chunks)
        else:
            dst = np.empty(0, dtype=VERTEX_DTYPE)
            src = np.empty(0, dtype=VERTEX_DTYPE)
        weights = (
            np.concatenate(self._weight_chunks) if self._has_weights else None
        )

        if symmetrize and dst.size:
            dst, src = (
                np.concatenate([dst, src]),
                np.concatenate([src, dst]),
            )
            if weights is not None:
                weights = np.concatenate([weights, weights])

        if drop_self_loops and dst.size:
            keep = dst != src
            dst, src = dst[keep], src[keep]
            if weights is not None:
                weights = weights[keep]

        if dst.size:
            # Sort by (dst, src); stable so weight aggregation is exact.
            order = np.lexsort((src, dst)) if sort_neighbors else np.argsort(
                dst, kind="stable"
            )
            dst, src = dst[order], src[order]
            if weights is not None:
                weights = weights[order]
            if dedup:
                new_edge = np.empty(dst.size, dtype=bool)
                new_edge[0] = True
                np.logical_or(
                    dst[1:] != dst[:-1], src[1:] != src[:-1], out=new_edge[1:]
                )
                if weights is not None:
                    group = np.cumsum(new_edge) - 1
                    weights = np.bincount(
                        group, weights=weights, minlength=int(group[-1]) + 1
                    ).astype(WEIGHT_DTYPE)
                dst, src = dst[new_edge], src[new_edge]

        counts = np.bincount(dst, minlength=n) if n else np.empty(0, dtype=np.int64)
        offsets = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        if n:
            np.cumsum(counts, out=offsets[1:])
        return CSRGraph(
            offsets=offsets, indices=src, weights=weights, name=name
        )

    def id_mapping(self) -> Optional[Dict[object, int]]:
        """Original-id → compact-id mapping (``None`` in fixed-size mode)."""
        return dict(self._id_map) if self._id_map is not None else None


def from_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    weights: Optional[np.ndarray] = None,
    symmetrize: bool = False,
    name: str = "graph",
) -> CSRGraph:
    """One-shot CSR construction from parallel edge arrays."""
    builder = GraphBuilder(num_vertices=num_vertices)
    builder.add_edges(src, dst, weights=weights)
    return builder.build(symmetrize=symmetrize, name=name)
