"""R-MAT power-law graph generator.

R-MAT (recursive matrix) is the standard generator for power-law graphs in
GPU graph-processing papers: each edge picks one of four adjacency-matrix
quadrants per recursion level with probabilities ``(a, b, c, d)``, producing
a skewed degree distribution whose tail steepness grows with ``a``.

The defaults ``a=0.57, b=0.19, c=0.19, d=0.05`` are the Graph500 parameters
and produce degree skew comparable to the social graphs in Table 2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE


def rmat_edges(
    scale: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate R-MAT edge endpoints over ``2**scale`` vertices.

    Returns ``(src, dst)`` arrays of length ``num_edges``.  Endpoints are
    *not* deduplicated here; CSR construction handles that.
    """
    if scale <= 0 or scale > 30:
        raise GraphError(f"scale must be in [1, 30], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("R-MAT quadrant probabilities must be non-negative")
    if num_edges < 0:
        raise GraphError("num_edges must be non-negative")
    rng = rng if rng is not None else np.random.default_rng(0)

    src = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    dst = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    # Per level, draw a quadrant for every edge simultaneously.  Adding a
    # little per-level noise to the quadrant probabilities (the "smoothing"
    # of Graph500) avoids the artificial staircase degree distribution.
    for level in range(scale):
        bit = np.int64(1) << np.int64(scale - 1 - level)
        noise = 1.0 + 0.1 * (rng.random(4) - 0.5)
        probs = np.array([a, b, c, d]) * noise
        probs /= probs.sum()
        quadrant = rng.choice(4, size=num_edges, p=probs)
        src |= np.where((quadrant == 2) | (quadrant == 3), bit, 0)
        dst |= np.where((quadrant == 1) | (quadrant == 3), bit, 0)
    return src, dst


def rmat_graph(
    scale: int,
    edge_factor: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    symmetrize: bool = True,
    seed: int = 0,
    name: str = "rmat",
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    edge_factor:
        Target directed edges per vertex before dedup/symmetrization.
    symmetrize:
        Make the graph undirected (the Table 2 datasets are processed as
        undirected by LP).
    """
    num_vertices = 1 << scale
    num_edges = int(round(edge_factor * num_vertices))
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(scale, num_edges, a=a, b=b, c=c, rng=rng)
    return from_edge_arrays(
        src, dst, num_vertices, symmetrize=symmetrize, name=name
    )
