"""LFR-style benchmark graphs (Lancichinetti-Fortunato-Radicchi).

The community-detection literature the paper builds on (its survey
reference [36]) evaluates algorithms on LFR benchmarks: graphs with

* power-law *degree* distribution (exponent ``tau1``),
* power-law *community-size* distribution (exponent ``tau2``), and
* a *mixing parameter* ``mu`` — the fraction of each vertex's edges that
  leave its community.  ``mu`` is the difficulty dial: LP variants recover
  communities cleanly at low ``mu`` and disintegrate as ``mu`` approaches
  0.5+.

This is a faithful simplification of the reference generator: degrees and
community sizes are sampled from truncated power-laws, vertices are packed
into communities that can host their internal degree, and edges are formed
by configuration-model pairing of internal and external half-edges
(self-loops and duplicates dropped, as usual for CSR construction).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE


def _truncated_powerlaw(
    rng: np.random.Generator,
    exponent: float,
    low: int,
    high: int,
    size: int,
) -> np.ndarray:
    """Sample integers in ``[low, high]`` with ``P(x) ~ x^-exponent``."""
    values = np.arange(low, high + 1, dtype=np.float64)
    weights = values**-exponent
    weights /= weights.sum()
    return rng.choice(
        np.arange(low, high + 1), size=size, p=weights
    ).astype(np.int64)


def _pair_half_edges(
    rng: np.random.Generator, owners: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Configuration-model pairing of a half-edge multiset."""
    owners = owners.copy()
    rng.shuffle(owners)
    if owners.size % 2:
        owners = owners[:-1]
    half = owners.size // 2
    return owners[:half], owners[half:]


def lfr_graph(
    num_vertices: int,
    *,
    mu: float = 0.2,
    tau1: float = 2.5,
    tau2: float = 1.5,
    avg_degree: float = 10.0,
    max_degree: int = None,
    min_community: int = 10,
    max_community: int = None,
    seed: int = 0,
    name: str = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Generate an LFR-style benchmark graph.

    Returns ``(graph, membership)`` where ``membership[v]`` is the planted
    community of vertex ``v``.

    Parameters
    ----------
    mu:
        Mixing parameter: expected fraction of each vertex's edges leaving
        its community (0 = perfectly separated, 1 = no structure).
    tau1, tau2:
        Power-law exponents of the degree and community-size distributions.
    """
    if num_vertices < 2:
        raise GraphError("num_vertices must be at least 2")
    if not 0.0 <= mu <= 1.0:
        raise GraphError(f"mu must be in [0, 1], got {mu}")
    if avg_degree <= 1:
        raise GraphError("avg_degree must exceed 1")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(4, int(num_vertices**0.6))
    if max_community is None:
        max_community = max(min_community + 1, num_vertices // 4)
    if min_community < 2 or min_community > num_vertices:
        raise GraphError("invalid min_community")

    # Degrees: truncated power-law rescaled toward the target average.
    min_degree = max(
        1, int(round(avg_degree * (tau1 - 2) / (tau1 - 1)))
    )
    degrees = _truncated_powerlaw(
        rng, tau1, min_degree, max_degree, num_vertices
    )

    # Community sizes: power-law partition of the vertex set.
    sizes = []
    remaining = num_vertices
    while remaining > 0:
        size = int(
            _truncated_powerlaw(
                rng, tau2, min_community,
                min(max_community, max(min_community, remaining)), 1
            )[0]
        )
        size = min(size, remaining)
        if remaining - size < min_community and remaining - size > 0:
            size = remaining  # absorb the tail into the last community
        sizes.append(size)
        remaining -= size
    sizes = np.array(sizes, dtype=np.int64)
    num_communities = sizes.size

    # Assign vertices: heaviest internal degrees to the largest communities
    # so (1-mu)*d fits inside size-1.
    membership = np.empty(num_vertices, dtype=VERTEX_DTYPE)
    order = np.argsort(-degrees)  # heavy first
    community_order = np.argsort(-sizes)
    slots = np.repeat(community_order, sizes[community_order])
    membership[order] = slots

    internal_degree = np.minimum(
        np.round((1.0 - mu) * degrees).astype(np.int64),
        sizes[membership] - 1,
    )
    external_degree = degrees - internal_degree

    sources = []
    targets = []
    # Internal pairing per community.
    for community in range(num_communities):
        members = np.flatnonzero(membership == community)
        owners = np.repeat(members, internal_degree[members])
        if owners.size >= 2:
            a, b = _pair_half_edges(rng, owners)
            sources.append(a)
            targets.append(b)
    # External pairing across the whole graph.
    owners = np.repeat(
        np.arange(num_vertices, dtype=np.int64), external_degree
    )
    if owners.size >= 2:
        a, b = _pair_half_edges(rng, owners)
        sources.append(a)
        targets.append(b)

    src = (
        np.concatenate(sources) if sources else np.empty(0, dtype=np.int64)
    )
    dst = (
        np.concatenate(targets) if targets else np.empty(0, dtype=np.int64)
    )
    graph_name = name if name is not None else f"lfr(mu={mu:g})"
    graph = from_edge_arrays(
        src, dst, num_vertices, symmetrize=True, name=graph_name
    )
    return graph, membership
