"""Planted-partition community graphs.

The CMS+HT optimization of Section 4.1 relies on labels *concentrating*
inside neighborhoods as communities form.  The planted-partition model gives
direct control over that concentration: vertices are split into ``k`` ground
truth communities and each vertex draws ``p_in``-fraction of its edges inside
its community and the rest uniformly outside.

These graphs are used by correctness tests (LP should recover strong planted
communities), by the theory-validation experiment (distinct-label count ``m``
vs HT capacity ``h``), and as building blocks for fraud rings.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE


def planted_partition_graph(
    num_vertices: int,
    num_communities: int,
    avg_degree: float,
    p_in: float,
    *,
    seed: int = 0,
    name: str = "planted",
) -> Tuple[CSRGraph, np.ndarray]:
    """Generate a planted-partition graph.

    Parameters
    ----------
    num_vertices:
        Total vertex count; communities get near-equal sizes.
    num_communities:
        Number of planted communities ``k``.
    avg_degree:
        Expected undirected degree per vertex.
    p_in:
        Probability that an edge endpoint stays inside the community.
        ``p_in=1`` gives disconnected cliques-ish clusters; ``p_in=1/k``
        erases structure.

    Returns
    -------
    (graph, membership):
        The undirected CSR graph and the ground-truth community id of every
        vertex.
    """
    if num_communities <= 0 or num_communities > num_vertices:
        raise GraphError(
            "num_communities must be in [1, num_vertices]; "
            f"got {num_communities} for {num_vertices} vertices"
        )
    if not 0.0 <= p_in <= 1.0:
        raise GraphError(f"p_in must be in [0, 1], got {p_in}")
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")

    rng = np.random.default_rng(seed)
    membership = np.arange(num_vertices, dtype=VERTEX_DTYPE) % num_communities
    rng.shuffle(membership)

    # Half the expected degree per endpoint since edges are symmetrized.
    num_edges = int(round(avg_degree * num_vertices / 2))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=VERTEX_DTYPE)
    inside = rng.random(num_edges) < p_in

    dst = np.empty(num_edges, dtype=VERTEX_DTYPE)
    # Outside edges: uniform over all vertices (a vanishing fraction lands
    # inside by chance, which only strengthens communities slightly).
    n_out = int((~inside).sum())
    dst[~inside] = rng.integers(0, num_vertices, size=n_out, dtype=VERTEX_DTYPE)

    # Inside edges: pick a random member of the same community.  Group the
    # vertex ids by community once, then sample positions inside each group.
    order = np.argsort(membership, kind="stable")
    sorted_ids = np.arange(num_vertices, dtype=VERTEX_DTYPE)[order]
    community_sizes = np.bincount(membership, minlength=num_communities)
    community_starts = np.zeros(num_communities + 1, dtype=VERTEX_DTYPE)
    np.cumsum(community_sizes, out=community_starts[1:])

    in_src = src[inside]
    comm = membership[in_src]
    sizes = community_sizes[comm]
    pos = (rng.random(in_src.size) * sizes).astype(VERTEX_DTYPE)
    dst[inside] = sorted_ids[community_starts[comm] + pos]

    graph = from_edge_arrays(
        src, dst, num_vertices, symmetrize=True, name=name
    )
    return graph, membership


def fraud_ring_graph(
    num_background: int,
    num_rings: int,
    ring_size: int,
    *,
    background_degree: float = 4.0,
    ring_density: float = 0.8,
    attachment_degree: float = 1.0,
    seed: int = 0,
    name: str = "fraud-rings",
) -> Tuple[CSRGraph, np.ndarray]:
    """A background graph with dense planted fraud rings.

    Fraud rings in e-commerce interaction graphs look like small, unusually
    dense clusters loosely attached to normal traffic.  This generator plants
    ``num_rings`` such clusters on top of a sparse random background.

    Returns
    -------
    (graph, ring_id):
        ``ring_id[v]`` is ``-1`` for background vertices, otherwise the index
        of the ring ``v`` belongs to.
    """
    if ring_size < 2:
        raise GraphError("ring_size must be at least 2")
    rng = np.random.default_rng(seed)
    num_ring_vertices = num_rings * ring_size
    num_vertices = num_background + num_ring_vertices

    srcs = []
    dsts = []

    # Sparse background.
    n_bg_edges = int(round(background_degree * num_background / 2))
    if n_bg_edges and num_background > 1:
        srcs.append(rng.integers(0, num_background, n_bg_edges, dtype=VERTEX_DTYPE))
        dsts.append(rng.integers(0, num_background, n_bg_edges, dtype=VERTEX_DTYPE))

    ring_id = np.full(num_vertices, -1, dtype=VERTEX_DTYPE)
    for ring in range(num_rings):
        base = num_background + ring * ring_size
        members = np.arange(base, base + ring_size, dtype=VERTEX_DTYPE)
        ring_id[members] = ring
        # Dense intra-ring edges: sample ring_density of all pairs.
        iu, ju = np.triu_indices(ring_size, k=1)
        keep = rng.random(iu.size) < ring_density
        srcs.append(members[iu[keep]])
        dsts.append(members[ju[keep]])
        # Loose attachment into the background.
        n_attach = max(1, int(round(attachment_degree * ring_size)))
        if num_background:
            srcs.append(rng.choice(members, size=n_attach).astype(VERTEX_DTYPE))
            dsts.append(
                rng.integers(0, num_background, n_attach, dtype=VERTEX_DTYPE)
            )

    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE)
    graph = from_edge_arrays(
        src, dst, num_vertices, symmetrize=True, name=name
    )
    return graph, ring_id
