"""Road-network-like graph generator.

roadNet (Table 2) is the outlier among the paper's datasets: a planar
network where *every* vertex has a tiny, near-constant degree (average 2.8).
That shape is what makes the warp-centric low-degree optimization shine
(Table 3: 13.2x on roadNet) — a one-warp-one-vertex scheme leaves ~29 of 32
lanes idle on every single vertex.

We reproduce the shape with a 2-D grid where a fraction of the lattice edges
is removed and a few diagonal "shortcut" edges are added, matching road
networks' degree histogram (mass on 2-4) without needing real map data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE


def road_network_graph(
    rows: int,
    cols: int,
    *,
    keep_prob: float = 0.72,
    shortcut_prob: float = 0.02,
    seed: int = 0,
    name: str = "road",
) -> CSRGraph:
    """Generate a sparse lattice resembling a road network.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the graph has ``rows * cols`` vertices.
    keep_prob:
        Fraction of lattice edges retained.  0.72 with a small shortcut
        probability lands the average degree near roadNet's 2.8.
    shortcut_prob:
        Per-vertex probability of an extra diagonal edge (overpasses/ramps).
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("rows and cols must be positive")
    if not 0.0 <= keep_prob <= 1.0:
        raise GraphError(f"keep_prob must be in [0, 1], got {keep_prob}")
    rng = np.random.default_rng(seed)
    num_vertices = rows * cols

    def vid(r: np.ndarray, c: np.ndarray) -> np.ndarray:
        return (r * cols + c).astype(VERTEX_DTYPE)

    srcs = []
    dsts = []

    # Horizontal lattice edges.
    r, c = np.meshgrid(
        np.arange(rows), np.arange(cols - 1), indexing="ij"
    )
    keep = rng.random(r.size) < keep_prob
    srcs.append(vid(r.ravel()[keep], c.ravel()[keep]))
    dsts.append(vid(r.ravel()[keep], c.ravel()[keep] + 1))

    # Vertical lattice edges.
    r, c = np.meshgrid(
        np.arange(rows - 1), np.arange(cols), indexing="ij"
    )
    keep = rng.random(r.size) < keep_prob
    srcs.append(vid(r.ravel()[keep], c.ravel()[keep]))
    dsts.append(vid(r.ravel()[keep] + 1, c.ravel()[keep]))

    # Diagonal shortcuts.
    if rows > 1 and cols > 1 and shortcut_prob > 0:
        r, c = np.meshgrid(
            np.arange(rows - 1), np.arange(cols - 1), indexing="ij"
        )
        keep = rng.random(r.size) < shortcut_prob
        srcs.append(vid(r.ravel()[keep], c.ravel()[keep]))
        dsts.append(vid(r.ravel()[keep] + 1, c.ravel()[keep] + 1))

    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    return from_edge_arrays(
        src, dst, num_vertices, symmetrize=True, name=name
    )
