"""Table 2 dataset registry (synthetic stand-ins).

The paper evaluates on eight public graphs (Table 2).  Those graphs range up
to 1.5 billion edges — far beyond what a pure-Python simulator can execute —
so this module provides ~1000x-scaled synthetic stand-ins that preserve the
*structural signatures* the GLP optimizations exploit:

* average degree (drives the high/low-degree kernel mix),
* degree-distribution shape (power-law for the social/web graphs,
  near-constant for roadNet, extreme density for aligraph),
* community structure (drives label concentration, hence CMS/HT hit rates).

Every stand-in records the paper's original V/E so reports can show the
correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators.bipartite import dense_interaction_core
from repro.graph.generators.community import planted_partition_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.road import road_network_graph


@dataclass(frozen=True)
class DatasetSpec:
    """A Table 2 dataset and the generator for its scaled stand-in."""

    name: str
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    factory: Callable[[], CSRGraph]
    description: str


def _dblp() -> CSRGraph:
    # Co-authorship network: modest degree, strong communities.
    graph, _ = planted_partition_graph(
        num_vertices=3000,
        num_communities=150,
        avg_degree=6.6,
        p_in=0.85,
        seed=11,
        name="dblp",
    )
    return graph


def _road_net() -> CSRGraph:
    return road_network_graph(45, 44, seed=12, name="roadNet")


def _youtube() -> CSRGraph:
    return rmat_graph(11, 2.6, seed=13, name="youtube")


def _aligraph() -> CSRGraph:
    # Tiny vertex set, enormous average degree: nearly every vertex takes
    # the high-degree (CMS+HT) kernel path, like the paper's aligraph.
    return dense_interaction_core(512, 200.0, seed=14, name="aligraph")


def _ljournal() -> CSRGraph:
    return rmat_graph(12, 8.7, seed=15, name="ljournal")


def _uk2002() -> CSRGraph:
    return rmat_graph(13, 8.1, seed=16, name="uk-2002")


def _wiki_en() -> CSRGraph:
    return rmat_graph(13, 12.5, seed=17, name="wiki-en")


def _twitter() -> CSRGraph:
    return rmat_graph(14, 17.7, seed=18, name="twitter")


#: All Table 2 datasets in the paper's row order.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "dblp", 317_080, 1_049_866, 6.6, _dblp,
            "co-authorship network; strong communities",
        ),
        DatasetSpec(
            "roadNet", 1_965_206, 2_766_607, 2.8, _road_net,
            "road network; tiny constant degree",
        ),
        DatasetSpec(
            "youtube", 1_134_890, 2_987_624, 5.2, _youtube,
            "social network; power-law",
        ),
        DatasetSpec(
            "aligraph", 14_933, 29_804_566, 3991.8, _aligraph,
            "user-product interactions; extreme average degree",
        ),
        DatasetSpec(
            "ljournal", 3_997_962, 34_681_189, 17.3, _ljournal,
            "social network; power-law",
        ),
        DatasetSpec(
            "uk-2002", 18_520_486, 298_113_762, 16.1, _uk2002,
            "web crawl; power-law",
        ),
        DatasetSpec(
            "wiki-en", 15_150_976, 378_142_420, 24.9, _wiki_en,
            "hyperlink network; power-law",
        ),
        DatasetSpec(
            "twitter", 41_652_230, 1_468_365_182, 35.3, _twitter,
            "follower network; heavy power-law tail",
        ),
    ]
}

_CACHE: Dict[str, CSRGraph] = {}


def dataset_names() -> List[str]:
    """Dataset names in Table 2 row order."""
    return list(DATASETS)


def load_dataset(name: str) -> CSRGraph:
    """Generate (or return the cached) stand-in graph for ``name``."""
    spec = DATASETS.get(name)
    if spec is None:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = spec.factory()
    return _CACHE[name]


def table2_rows() -> List[Tuple[str, int, int, float, int, int, float]]:
    """Rows for the Table 2 report.

    Each row is ``(name, paper_V, paper_E, paper_avg, ours_V, ours_E,
    ours_avg)``.
    """
    rows = []
    for spec in DATASETS.values():
        graph = load_dataset(spec.name)
        rows.append(
            (
                spec.name,
                spec.paper_vertices,
                spec.paper_edges,
                spec.paper_avg_degree,
                graph.num_vertices,
                graph.num_edges,
                graph.average_degree,
            )
        )
    return rows


def clear_cache() -> None:
    """Drop all cached dataset graphs (tests use this to bound memory)."""
    _CACHE.clear()
