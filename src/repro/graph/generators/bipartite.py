"""Bipartite user-product interaction graphs.

TaoBao's fraud pipeline builds graphs from transactions connecting users to
products (Figure 1); the aligraph dataset (Table 2) is such an interaction
graph and is extreme: only ~15 k vertices but an *average* degree near 4000.
That density is why the `smem` (CMS+HT) optimization wins biggest there —
nearly every vertex is "high degree".

The generator produces an undirected bipartite graph over
``num_users + num_products`` vertices where product popularity follows a
Zipf distribution and each user draws a Poisson-ish number of interactions.
Users occupy ids ``[0, num_users)`` and products
``[num_users, num_users + num_products)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE


def zipf_popularity(
    num_items: int, exponent: float = 1.1
) -> np.ndarray:
    """Normalized Zipf popularity vector over ``num_items`` items."""
    if num_items <= 0:
        raise GraphError("num_items must be positive")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def bipartite_interaction_graph(
    num_users: int,
    num_products: int,
    interactions_per_user: float,
    *,
    zipf_exponent: float = 1.1,
    seed: int = 0,
    name: str = "bipartite",
) -> Tuple[CSRGraph, int]:
    """Generate a user-product interaction graph.

    Parameters
    ----------
    interactions_per_user:
        Expected number of product interactions per user.  High values with
        small ``num_products`` reproduce the aligraph density regime.

    Returns
    -------
    (graph, num_users):
        The undirected CSR graph and the user/product id boundary.
    """
    if num_users <= 0 or num_products <= 0:
        raise GraphError("num_users and num_products must be positive")
    if interactions_per_user < 0:
        raise GraphError("interactions_per_user must be non-negative")
    rng = np.random.default_rng(seed)

    counts = rng.poisson(interactions_per_user, size=num_users)
    total = int(counts.sum())
    users = np.repeat(
        np.arange(num_users, dtype=VERTEX_DTYPE), counts
    )
    popularity = zipf_popularity(num_products, zipf_exponent)
    products = rng.choice(
        num_products, size=total, p=popularity
    ).astype(VERTEX_DTYPE)
    products += num_users

    graph = from_edge_arrays(
        users,
        products,
        num_users + num_products,
        symmetrize=True,
        name=name,
    )
    return graph, num_users


def dense_interaction_core(
    num_vertices: int,
    avg_degree: float,
    *,
    seed: int = 0,
    name: str = "dense-core",
) -> CSRGraph:
    """A small graph with an extremely high average degree (aligraph regime).

    Every vertex connects to ``~avg_degree`` uniformly random partners.  With
    ``avg_degree`` a large fraction of ``num_vertices`` this saturates the
    high-degree kernel path: every vertex exceeds the degree-128 threshold.
    """
    if num_vertices <= 1:
        raise GraphError("num_vertices must be at least 2")
    max_degree = num_vertices - 1
    if avg_degree > max_degree:
        raise GraphError(
            f"avg_degree {avg_degree} exceeds maximum {max_degree}"
        )
    rng = np.random.default_rng(seed)
    num_edges = int(round(avg_degree * num_vertices / 2))
    src = rng.integers(0, num_vertices, num_edges, dtype=VERTEX_DTYPE)
    # Draw dst != src by offsetting within [1, n) modulo n.
    offset = rng.integers(1, num_vertices, num_edges, dtype=VERTEX_DTYPE)
    dst = (src + offset) % num_vertices
    return from_edge_arrays(
        src, dst, num_vertices, symmetrize=True, name=name
    )
