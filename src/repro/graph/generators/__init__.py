"""Synthetic graph generators.

These produce the structural signatures the GLP optimizations key on:

* :mod:`~repro.graph.generators.rmat` — power-law social/web graphs
  (dblp/youtube/ljournal/uk-2002/wiki-en/twitter stand-ins).
* :mod:`~repro.graph.generators.community` — planted-partition graphs with
  controllable community strength (used by correctness tests and theory
  validation, where label concentration matters).
* :mod:`~repro.graph.generators.road` — near-constant-degree lattices
  (roadNet stand-in).
* :mod:`~repro.graph.generators.bipartite` — user-product interaction graphs
  (aligraph and TaoBao-window stand-ins).
* :mod:`~repro.graph.generators.datasets` — the Table 2 dataset registry.
"""

from repro.graph.generators.community import planted_partition_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.road import road_network_graph
from repro.graph.generators.bipartite import bipartite_interaction_graph
from repro.graph.generators.lfr import lfr_graph

__all__ = [
    "planted_partition_graph",
    "rmat_graph",
    "road_network_graph",
    "bipartite_interaction_graph",
    "lfr_graph",
]
