"""Community-quality metrics.

The paper treats LP as a clustering component inside a detection pipeline;
assessing a reproduction therefore needs the standard clustering metrics:

* :func:`modularity` — Newman modularity of a labeling (no ground truth
  needed);
* :func:`normalized_mutual_information` — agreement with a ground-truth
  partition (planted communities, fraud rings);
* :func:`conductance` — per-community boundary sharpness (fraud rings are
  low-conductance clusters, which is why LP finds them).

All metrics treat the CSR graph as undirected-by-construction (the
generators symmetrize), counting each stored directed edge once.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def _check_labels(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.shape != (graph.num_vertices,):
        raise GraphError(
            f"labels shape {labels.shape} does not match "
            f"{graph.num_vertices} vertices"
        )
    return labels


def modularity(graph: CSRGraph, labels: np.ndarray) -> float:
    """Newman modularity ``Q`` of the labeling.

    ``Q = (1/2m) * sum_ij (A_ij - k_i k_j / 2m) * [c_i == c_j]`` computed
    over the stored directed edges (for a symmetrized graph this is the
    standard undirected definition).  Returns 0.0 for edgeless graphs.
    """
    labels = _check_labels(graph, labels)
    m2 = graph.num_edges  # = 2m for symmetrized graphs
    if m2 == 0:
        return 0.0
    sources = graph.edge_sources()
    internal = (labels[sources] == labels[graph.indices]).sum() / m2

    degrees = graph.degrees.astype(np.float64)
    unique = np.unique(labels)
    compact = np.searchsorted(unique, labels)
    community_degree = np.bincount(
        compact, weights=degrees, minlength=unique.size
    )
    expected = ((community_degree / m2) ** 2).sum()
    return float(internal - expected)


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI between two labelings (arithmetic-mean normalization).

    1.0 for identical partitions (up to relabeling), ~0.0 for independent
    ones.  Degenerate all-in-one/all-singleton pairs return 0.0 unless both
    sides are degenerate identically (then 1.0).
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise GraphError("labelings must have equal length")
    n = labels_a.size
    if n == 0:
        return 1.0
    _, a = np.unique(labels_a, return_inverse=True)
    _, b = np.unique(labels_b, return_inverse=True)
    na, nb = a.max() + 1, b.max() + 1
    joint = np.zeros((na, nb), dtype=np.float64)
    np.add.at(joint, (a, b), 1.0)
    joint /= n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    ha, hb = entropy(pa), entropy(pb)
    nz = joint > 0
    mi = float(
        (joint[nz] * np.log(joint[nz] / np.outer(pa, pb)[nz])).sum()
    )
    denominator = (ha + hb) / 2.0
    if denominator == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return mi / denominator


def conductance(graph: CSRGraph, labels: np.ndarray) -> Dict[int, float]:
    """Per-community conductance: ``cut(S) / min(vol(S), vol(V-S))``.

    Lower is better (sharper community boundary).  Communities with zero
    volume get conductance 1.0.
    """
    labels = _check_labels(graph, labels)
    total_volume = float(graph.num_edges)
    sources = graph.edge_sources()
    crossing = labels[sources] != labels[graph.indices]

    result: Dict[int, float] = {}
    for label in np.unique(labels):
        members = labels == label
        volume = float(graph.degrees[members].sum())
        cut = float(crossing[members[sources]].sum())
        denominator = min(volume, total_volume - volume)
        if denominator <= 0:
            result[int(label)] = 1.0
        else:
            result[int(label)] = cut / denominator
    return result


def coverage(graph: CSRGraph, labels: np.ndarray) -> float:
    """Fraction of edges internal to communities (1.0 = no cut edges)."""
    labels = _check_labels(graph, labels)
    if graph.num_edges == 0:
        return 1.0
    sources = graph.edge_sources()
    return float((labels[sources] == labels[graph.indices]).mean())
