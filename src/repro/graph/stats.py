"""Degree statistics and power-law diagnostics.

The kernel scheduler (Section 4) splits vertices into degree classes; the
evaluation narrative leans on the power-law principle ("the number of
low-degree vertices is massive").  This module provides the measurements the
scheduler, reports and tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a graph's (in-)degree distribution."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    #: Fraction of vertices with degree < 32 (the paper's low-degree cut).
    low_degree_fraction: float
    #: Fraction of vertices with degree > 128 (the paper's high-degree cut).
    high_degree_fraction: float
    #: Fraction of *edges* incident (incoming) to high-degree vertices.
    high_degree_edge_fraction: float


def degree_summary(
    graph: CSRGraph, *, low_threshold: int = 32, high_threshold: int = 128
) -> DegreeSummary:
    """Compute a :class:`DegreeSummary` for ``graph``."""
    degrees = graph.degrees
    n = graph.num_vertices
    if n == 0:
        return DegreeSummary(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    high_mask = degrees > high_threshold
    high_edges = int(degrees[high_mask].sum())
    return DegreeSummary(
        num_vertices=n,
        num_edges=graph.num_edges,
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        low_degree_fraction=float((degrees < low_threshold).mean()),
        high_degree_fraction=float(high_mask.mean()),
        high_degree_edge_fraction=(
            high_edges / graph.num_edges if graph.num_edges else 0.0
        ),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    if graph.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees)


def power_law_exponent(graph: CSRGraph, *, d_min: int = 2) -> float:
    """Maximum-likelihood power-law exponent of the degree tail.

    Uses the discrete Hill/Clauset estimator
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees >= ``d_min``.
    Returns ``nan`` when fewer than two vertices qualify.
    """
    degrees = graph.degrees[graph.degrees >= d_min].astype(np.float64)
    if degrees.size < 2:
        return float("nan")
    return float(1.0 + degrees.size / np.log(degrees / (d_min - 0.5)).sum())


def label_distribution_stats(labels: np.ndarray) -> Dict[str, float]:
    """Statistics of a label assignment: community count and skew.

    Returns a dict with ``num_labels`` (distinct labels),
    ``largest_fraction`` (share of vertices in the biggest community) and
    ``entropy`` (Shannon entropy of the community-size distribution, nats).
    """
    labels = np.asarray(labels)
    if labels.size == 0:
        return {"num_labels": 0.0, "largest_fraction": 0.0, "entropy": 0.0}
    _, counts = np.unique(labels, return_counts=True)
    probs = counts / labels.size
    entropy = float(-(probs * np.log(probs)).sum())
    return {
        "num_labels": float(counts.size),
        "largest_fraction": float(counts.max() / labels.size),
        "entropy": entropy,
    }


def neighborhood_label_concentration(
    graph: CSRGraph, labels: np.ndarray, *, sample: int = 0, seed: int = 0
) -> Tuple[float, float]:
    """Measure how concentrated labels are inside neighborhoods.

    Returns ``(mean_distinct_ratio, mean_mfl_share)`` where for each vertex
    ``v`` with degree ``d > 0``, ``distinct_ratio = m / d`` (``m`` distinct
    labels among neighbors) and ``mfl_share = f_max / d``.  The CMS+HT
    strategy of Section 4.1 is effective exactly when ``distinct_ratio`` is
    small and ``mfl_share`` is large.

    ``sample > 0`` measures a random vertex subset of that size.
    """
    labels = np.asarray(labels)
    vertices = np.flatnonzero(graph.degrees > 0)
    if vertices.size == 0:
        return 0.0, 0.0
    if sample and sample < vertices.size:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(vertices, size=sample, replace=False)
    distinct_ratios = np.empty(vertices.size, dtype=np.float64)
    mfl_shares = np.empty(vertices.size, dtype=np.float64)
    for i, v in enumerate(vertices):
        neighbor_labels = labels[graph.neighbors(int(v))]
        _, counts = np.unique(neighbor_labels, return_counts=True)
        degree = neighbor_labels.size
        distinct_ratios[i] = counts.size / degree
        mfl_shares[i] = counts.max() / degree
    return float(distinct_ratios.mean()), float(mfl_shares.mean())
