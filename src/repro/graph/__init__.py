"""Graph substrate: CSR storage, builders, IO, generators and statistics.

The public surface of this subpackage:

* :class:`~repro.graph.csr.CSRGraph` — immutable compressed-sparse-row graph.
* :class:`~repro.graph.builder.GraphBuilder` — incremental edge accumulation.
* :mod:`~repro.graph.io` — edge-list / npz persistence.
* :mod:`~repro.graph.generators` — synthetic workload generators, including
  the Table 2 dataset stand-ins.
* :mod:`~repro.graph.stats` — degree statistics and power-law diagnostics.
* :mod:`~repro.graph.partition` — vertex/edge partitioners used by the
  hybrid, multi-GPU and distributed engines.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["CSRGraph", "GraphBuilder"]
