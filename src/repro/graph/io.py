"""Graph persistence: edge-list text files and binary npz snapshots.

Two formats are supported:

* **Edge list** (``.txt`` / ``.tsv``): one ``src dst [weight]`` per line,
  ``#``-prefixed comment lines ignored — the format used by SNAP and KONECT,
  the paper's dataset sources.
* **npz snapshot**: the raw CSR arrays, loadable without re-sorting.  Used to
  cache generated benchmark datasets between runs.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, os.PathLike]


def load_edge_list(
    path: PathLike,
    *,
    num_vertices: Optional[int] = None,
    symmetrize: bool = False,
    comment: str = "#",
    name: Optional[str] = None,
) -> CSRGraph:
    """Load an edge-list text file into a CSR graph.

    Lines must contain ``src dst`` or ``src dst weight`` separated by
    whitespace.  Vertex ids are compacted unless ``num_vertices`` is given.
    """
    srcs: list = []
    dsts: list = []
    weights: list = []
    saw_weight = False
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id"
                ) from exc
            if len(parts) == 3:
                saw_weight = True
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-numeric weight"
                    ) from exc
            else:
                weights.append(1.0)

    builder = GraphBuilder(num_vertices=num_vertices)
    if srcs:
        builder.add_edges(
            np.asarray(srcs, dtype=VERTEX_DTYPE),
            np.asarray(dsts, dtype=VERTEX_DTYPE),
            weights=np.asarray(weights, dtype=WEIGHT_DTYPE) if saw_weight else None,
        )
    graph_name = name if name is not None else os.path.basename(str(path))
    return builder.build(symmetrize=symmetrize, name=graph_name)


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``graph`` as ``src dst [weight]`` lines.

    Edges are emitted in CSR order, as ``(in-neighbor, vertex)`` pairs so that
    a round-trip through :func:`load_edge_list` reproduces the adjacency.
    """
    sources = graph.edge_sources()
    with open(path, "w") as handle:
        handle.write(f"# {graph.name}: V={graph.num_vertices} E={graph.num_edges}\n")
        if graph.weights is None:
            for dst, src in zip(sources, graph.indices):
                handle.write(f"{src} {dst}\n")
        else:
            for dst, src, w in zip(sources, graph.indices, graph.weights):
                handle.write(f"{src} {dst} {w:g}\n")


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Persist the raw CSR arrays to a compressed npz file."""
    payload = {
        "offsets": graph.offsets,
        "indices": graph.indices,
        "name": np.array(graph.name),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a CSR graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            offsets = data["offsets"]
            indices = data["indices"]
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: missing CSR array {exc}"
            ) from exc
        weights = data["weights"] if "weights" in data else None
        name = str(data["name"]) if "name" in data else "graph"
    return CSRGraph(offsets=offsets, indices=indices, weights=weights, name=name)
