"""Frequency-sketch data structures used by the MFL kernels.

* :class:`~repro.sketch.countmin.CountMinSketch` — the CMS of Section 4.1.
* :class:`~repro.sketch.hashtable.FixedCapacityHashTable` — the shared-memory
  HT the CMS is paired with.
* :class:`~repro.sketch.globalhash.GlobalHashTable` — the global-memory
  fallback table (and the core of the ``global``/G-Hash baseline).
* :mod:`~repro.sketch.theory` — Lemma 1 / Lemma 2 / Theorem 1 bound
  calculators and Monte-Carlo validators.
"""

from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashtable import FixedCapacityHashTable
from repro.sketch.globalhash import GlobalHashTable

__all__ = [
    "CountMinSketch",
    "FixedCapacityHashTable",
    "GlobalHashTable",
]
