"""Fixed-capacity open-addressing hash table (the shared-memory HT).

``SharedMemBigNodes`` pairs this table with a CMS: every arriving label is
first offered to the HT (``atomicAdd(HT, l, weight)``); if the label is
absent and no free slot remains on its probe path, the insertion fails and
the label falls through to the CMS.

The table uses linear probing with a full-table probe bound, so an insertion
fails only when the table is genuinely full — this makes the set of resident
labels exactly "the first ``capacity`` distinct labels in arrival order",
matching the random-order analysis of Lemma 1.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GLPError

_EMPTY = np.int64(-1)
_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _slot_hash(label: int, capacity: int) -> int:
    mixed = (int(label) * _HASH_MULT) & _MASK64
    mixed ^= mixed >> 29
    return mixed % capacity


class FixedCapacityHashTable:
    """Open-addressing label→count table with a hard capacity.

    Parameters
    ----------
    capacity:
        Number of slots ``h``.  The shared-memory footprint is
        ``capacity * 8`` bytes on the device (4-byte label + 4-byte count).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise GLPError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._labels = np.full(capacity, _EMPTY, dtype=np.int64)
        self._counts = np.zeros(capacity, dtype=np.float64)
        self._size = 0

    @property
    def nbytes(self) -> int:
        """Shared-memory footprint on the device."""
        return self.capacity * 8

    @property
    def size(self) -> int:
        """Number of distinct labels currently stored."""
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def clear(self) -> None:
        self._labels.fill(_EMPTY)
        self._counts.fill(0.0)
        self._size = 0

    def insert(self, label: int, weight: float = 1.0) -> Tuple[bool, float, int]:
        """Offer ``(label, weight)`` to the table.

        Returns ``(success, count_after, probes)``.  ``success`` is ``False``
        only when the label is absent and the table is full; ``probes`` is
        the number of slots inspected (the shared-memory ops the kernel
        accounts).
        """
        if label < 0:
            raise GLPError("labels must be non-negative")
        start = _slot_hash(label, self.capacity)
        for probe in range(self.capacity):
            slot = (start + probe) % self.capacity
            resident = self._labels[slot]
            if resident == label:
                self._counts[slot] += weight
                return True, float(self._counts[slot]), probe + 1
            if resident == _EMPTY:
                self._labels[slot] = label
                self._counts[slot] = weight
                self._size += 1
                return True, float(weight), probe + 1
        return False, 0.0, self.capacity

    def get(self, label: int) -> float:
        """Current count of ``label`` (0.0 when absent)."""
        start = _slot_hash(label, self.capacity)
        for probe in range(self.capacity):
            slot = (start + probe) % self.capacity
            resident = self._labels[slot]
            if resident == label:
                return float(self._counts[slot])
            if resident == _EMPTY:
                return 0.0
        return 0.0

    def __contains__(self, label: int) -> bool:
        return self.get(int(label)) > 0.0

    def items(self) -> Tuple[np.ndarray, np.ndarray]:
        """All resident ``(labels, counts)`` as parallel arrays."""
        mask = self._labels != _EMPTY
        return self._labels[mask].copy(), self._counts[mask].copy()

    def max_count(self) -> float:
        """Largest stored count (0.0 when empty)."""
        if self._size == 0:
            return 0.0
        mask = self._labels != _EMPTY
        return float(self._counts[mask].max())


def resident_prefix(
    distinct_labels_in_arrival_order: np.ndarray, capacity: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split distinct labels into (HT-resident, overflow) sets.

    With full-table probing, the HT holds exactly the first ``capacity``
    distinct labels by arrival order; the rest overflow to the CMS.  This is
    the closed form the vectorized kernel uses; its equivalence to the real
    :class:`FixedCapacityHashTable` is asserted by property tests.
    """
    distinct = np.asarray(distinct_labels_in_arrival_order)
    return distinct[:capacity], distinct[capacity:]
