"""Count-Min Sketch (Cormode & Muthukrishnan, 2005).

The CMS estimates label frequencies with ``d`` rows of ``w`` counters each.
Every arriving ``(label, weight)`` increments one counter per row; the
estimate is the minimum over rows.  Estimates only ever *over*-count
(collisions add, never subtract), which is exactly the property the
``SharedMemBigNodes`` procedure relies on: if the best HT score beats the
best CMS estimate, no overflow label can possibly win and the global-memory
fallback is skipped (paper, Section 4.1).

Hashing is multiply-shift with per-row odd multipliers — cheap enough to be
realistic for a GPU shared-memory kernel and good enough for the pairwise-
independence arguments in the paper's analysis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GLPError

# 64-bit odd constants for multiply-shift hashing (splitmix64 outputs).
_ROW_MULTIPLIERS = np.array(
    [
        0x9E3779B97F4A7C15,
        0xBF58476D1CE4E5B9,
        0x94D049BB133111EB,
        0xD6E8FEB86659FD93,
        0xA5A5A5A5A5A5A5A5,
        0xC2B2AE3D27D4EB4F,
        0x165667B19E3779F9,
        0x27D4EB2F165667C5,
    ],
    dtype=np.uint64,
)


def _row_hash(labels: np.ndarray, row: int, width: int) -> np.ndarray:
    """Multiply-shift hash of ``labels`` into ``[0, width)`` for ``row``."""
    mixed = labels.astype(np.uint64) * _ROW_MULTIPLIERS[row % len(_ROW_MULTIPLIERS)]
    mixed ^= mixed >> np.uint64(31)
    mixed *= _ROW_MULTIPLIERS[(row + 3) % len(_ROW_MULTIPLIERS)]
    return (mixed % np.uint64(width)).astype(np.int64)


class CountMinSketch:
    """A ``d x w`` Count-Min Sketch over integer labels.

    Parameters
    ----------
    depth:
        Number of hash rows ``d``.  Lemma 2's failure probability is
        ``2**-d`` per label.
    width:
        Buckets per row ``w``.  Lemma 2 assumes ``w = 2s`` for ``s``
        insertions.
    """

    def __init__(self, depth: int, width: int) -> None:
        if depth <= 0 or depth > len(_ROW_MULTIPLIERS):
            raise GLPError(
                f"depth must be in [1, {len(_ROW_MULTIPLIERS)}], got {depth}"
            )
        if width <= 0:
            raise GLPError(f"width must be positive, got {width}")
        self.depth = depth
        self.width = width
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._total_insertions = 0

    @property
    def nbytes(self) -> int:
        """Shared-memory footprint (4-byte counters on the device)."""
        return self.depth * self.width * 4

    @property
    def total_insertions(self) -> int:
        """Number of ``add`` item-occurrences so far."""
        return self._total_insertions

    def clear(self) -> None:
        self._table.fill(0.0)
        self._total_insertions = 0

    def add(self, labels: np.ndarray, weights=None) -> np.ndarray:
        """Insert a batch of labels; returns the post-insert estimates.

        ``weights`` defaults to 1 per occurrence.  Duplicate labels in one
        batch accumulate correctly (counter updates use unbuffered adds).
        The return value matches the paper's ``atomicAdd``-then-read pattern:
        each occurrence observes the estimate including itself.
        """
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        if weights is None:
            weights = np.ones(labels.size, dtype=np.float64)
        else:
            weights = np.atleast_1d(np.asarray(weights, dtype=np.float64))
            if weights.shape != labels.shape:
                raise GLPError("weights must match labels length")
        for row in range(self.depth):
            buckets = _row_hash(labels, row, self.width)
            np.add.at(self._table[row], buckets, weights)
        self._total_insertions += labels.size
        return self.estimate(labels)

    def estimate(self, labels: np.ndarray) -> np.ndarray:
        """Point-query estimates (min over rows); always >= true frequency."""
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        estimates = np.full(labels.size, np.inf)
        for row in range(self.depth):
            buckets = _row_hash(labels, row, self.width)
            np.minimum(estimates, self._table[row, buckets], out=estimates)
        if labels.size == 0:
            return np.zeros(0, dtype=np.float64)
        return estimates

    def bucket_addresses(self, labels: np.ndarray) -> np.ndarray:
        """Shared-memory word addresses touched by inserting ``labels``.

        Shape ``(depth, len(labels))``; used by the kernel's bank-conflict
        accounting.  Row ``r`` occupies words ``[r*width, (r+1)*width)``.
        """
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        addresses = np.empty((self.depth, labels.size), dtype=np.int64)
        for row in range(self.depth):
            addresses[row] = _row_hash(labels, row, self.width) + row * self.width
        return addresses
