"""Global-memory hash table for label counting.

Two consumers:

* the ``global`` / G-Hash baseline strategy counts every ``(vertex, label)``
  pair of the whole graph in one big device-memory table, and
* the ``SharedMemBigNodes`` fallback path (Lines 16-24 of the paper's
  procedure) inserts a vertex's overflow labels when the CMS cannot rule out
  an overflow winner.

The table is open-addressing with linear probing over combined
``(vertex, label)`` keys.  Insertions are executed *for real* in vectorized
rounds, so probe counts — which become uncoalesced global transactions in
the accounting — reflect actual collision behaviour at the configured load
factor.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GLPError

_EMPTY = np.int64(-1)
_MIX_A = np.uint64(0xFF51AFD7ED558CCD)
_MIX_B = np.uint64(0xC4CEB9FE1A85EC53)


def combine_keys(vertices: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Pack ``(vertex, label)`` pairs into single int64 keys.

    Vertex ids and labels both fit in 31 bits for every simulated workload
    (checked), so the packing is collision-free.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if vertices.size and (vertices.max(initial=0) >= (1 << 31) or labels.max(initial=0) >= (1 << 31)):
        raise GLPError("vertex/label ids exceed 31-bit packing range")
    return (vertices << np.int64(31)) | labels


def _hash_keys(keys: np.ndarray, capacity: int) -> np.ndarray:
    mixed = keys.astype(np.uint64)
    mixed ^= mixed >> np.uint64(33)
    mixed *= _MIX_A
    mixed ^= mixed >> np.uint64(33)
    mixed *= _MIX_B
    return (mixed % np.uint64(capacity)).astype(np.int64)


class GlobalHashTable:
    """A device-global open-addressing count table over int64 keys."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise GLPError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._counts = np.zeros(capacity, dtype=np.float64)
        self._size = 0

    @classmethod
    def for_expected_keys(cls, num_keys: int, load_factor: float = 0.5) -> "GlobalHashTable":
        """Size a table for ``num_keys`` distinct keys at ``load_factor``."""
        if not 0.0 < load_factor < 1.0:
            raise GLPError("load_factor must be in (0, 1)")
        capacity = max(8, int(num_keys / load_factor) + 1)
        return cls(capacity)

    @property
    def nbytes(self) -> int:
        """Device-memory footprint (8-byte key + 4-byte count per slot)."""
        return self.capacity * 12

    @property
    def size(self) -> int:
        return self._size

    def add_batch(
        self, keys: np.ndarray, weights=None
    ) -> Tuple[np.ndarray, int]:
        """Insert-or-increment a batch of keys.

        Returns ``(slots, total_probes)`` where ``slots[i]`` is the slot key
        ``i`` landed in and ``total_probes`` the number of slot inspections
        across the batch — each inspection is one (potentially uncoalesced)
        global-memory access in the caller's accounting.

        Raises :class:`GLPError` when distinct keys exceed capacity.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if weights is None:
            weights = np.ones(keys.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != keys.shape:
                raise GLPError("weights must match keys length")
        slots = np.full(keys.size, -1, dtype=np.int64)
        probe_offset = np.zeros(keys.size, dtype=np.int64)
        pending = np.arange(keys.size, dtype=np.int64)
        base = _hash_keys(keys, self.capacity)
        total_probes = 0

        while pending.size:
            idx = pending
            slot = (base[idx] + probe_offset[idx]) % self.capacity
            total_probes += idx.size
            resident = self._keys[slot]

            hit = resident == keys[idx]
            empty = resident == _EMPTY
            # Claim empty slots; duplicate claims within the round resolve
            # by first-wins, matching atomicCAS semantics.
            claim_idx = idx[empty]
            claim_slot = slot[empty]
            if claim_idx.size:
                first = np.full(self.capacity, -1, dtype=np.int64)
                # Reverse order so lower batch index wins, like CAS arrival.
                first[claim_slot[::-1]] = claim_idx[::-1]
                winners = first[claim_slot] == claim_idx
                won_idx = claim_idx[winners]
                won_slot = claim_slot[winners]
                self._keys[won_slot] = keys[won_idx]
                self._size += won_idx.size
                hit = hit | (self._keys[slot] == keys[idx])

            resolved = hit
            slots[idx[resolved]] = slot[resolved]
            unresolved = idx[~resolved]
            probe_offset[unresolved] += 1
            if unresolved.size and probe_offset[unresolved].max() >= self.capacity:
                raise GLPError("GlobalHashTable is full")
            pending = unresolved

        np.add.at(self._counts, slots, weights)
        return slots, total_probes

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        """Exact counts of ``keys`` (0.0 for absent keys)."""
        keys = np.asarray(keys, dtype=np.int64)
        result = np.zeros(keys.size, dtype=np.float64)
        base = _hash_keys(keys, self.capacity)
        for i in range(keys.size):
            for probe in range(self.capacity):
                slot = int((base[i] + probe) % self.capacity)
                resident = self._keys[slot]
                if resident == keys[i]:
                    result[i] = self._counts[slot]
                    break
                if resident == _EMPTY:
                    break
        return result

    def items(self) -> Tuple[np.ndarray, np.ndarray]:
        """All resident ``(keys, counts)`` pairs."""
        mask = self._keys != _EMPTY
        return self._keys[mask].copy(), self._counts[mask].copy()
