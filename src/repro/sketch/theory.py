"""Analytical bounds of Section 4.1 and their Monte-Carlo validators.

The paper bounds the probability that ``SharedMemBigNodes`` must fall back
to global memory for a vertex ``v``:

* **Lemma 1** — the MFL ``l*`` misses the HT with probability at most
  ``(1 - h/(m+k))^(2k)`` with ``k = (f_max - 1)/2`` (``m`` distinct labels,
  ``h`` HT slots), under random arrival order with all non-MFL labels
  appearing once.
* **Lemma 2** — the CMS (depth ``d``, width ``w = 2s``) overestimates some
  label past ``f_max`` with probability at most ``m * 2^-d``.
* **Theorem 1** — global access probability is bounded by
  ``m * 2^-d + e^-h`` as ``f_max -> inf`` and ``m <= (f_max - 1)/2``.

The validators replay the exact random process of the proofs so the
benchmark harness can plot bound-vs-measured curves.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GLPError
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashtable import FixedCapacityHashTable


def lemma1_bound(m: int, h: int, f_max: int) -> float:
    """Upper bound on ``P[l* not in HT]`` from Lemma 1.

    Parameters
    ----------
    m:
        Number of distinct labels in ``N(v)``.
    h:
        HT capacity (buckets).
    f_max:
        Frequency of the most frequent label.
    """
    if m <= 0 or h <= 0 or f_max <= 0:
        raise GLPError("m, h and f_max must be positive")
    if m <= h:
        return 0.0  # every distinct label fits in the HT
    k = (f_max - 1) / 2.0
    if k <= 0:
        # f_max == 1: the MFL occupies one random position among m labels.
        return (m - h) / m if m > h else 0.0
    return float((1.0 - h / (m + k)) ** (2.0 * k))


def lemma1_exact(m: int, h: int, f_max: int) -> float:
    """Exact ``P[l* not in HT]`` for the proof's random process.

    The product form from the proof:
    ``prod_{i=0}^{f_max-1} (m+i-h)/(m+i)`` (0 when ``m <= h``).
    """
    if m <= h:
        return 0.0
    i = np.arange(f_max, dtype=np.float64)
    factors = (m + i - h) / (m + i)
    return float(np.clip(factors, 0.0, 1.0).prod())


def lemma2_bound(m: int, d: int) -> float:
    """Upper bound on ``P[max_l g(l) > f_max]`` from Lemma 2 (``m * 2^-d``)."""
    if m <= 0 or d <= 0:
        raise GLPError("m and d must be positive")
    return float(min(1.0, m * 2.0 ** (-d)))


def theorem1_bound(m: int, h: int, d: int) -> float:
    """Theorem 1: bound on the global-memory-access probability."""
    if m <= 0 or h <= 0 or d <= 0:
        raise GLPError("m, h and d must be positive")
    return float(min(1.0, m * 2.0 ** (-d) + np.exp(-h)))


def simulate_mfl_misses_ht(
    m: int,
    h: int,
    f_max: int,
    *,
    trials: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo estimate of ``P[l* not in HT]`` for Lemma 1's process.

    Builds the arrival sequence of the proof — ``m - 1`` singleton labels
    plus ``f_max`` copies of the MFL, randomly ordered — and feeds it to the
    real :class:`FixedCapacityHashTable`.
    """
    if trials <= 0:
        raise GLPError("trials must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    misses = 0
    mfl = 0
    singletons = np.arange(1, m, dtype=np.int64)
    for _ in range(trials):
        sequence = np.concatenate(
            [np.full(f_max, mfl, dtype=np.int64), singletons]
        )
        rng.shuffle(sequence)
        table = FixedCapacityHashTable(h)
        for label in sequence:
            table.insert(int(label))
        if mfl not in table:
            misses += 1
    return misses / trials


def simulate_cms_overestimates(
    m: int,
    d: int,
    f_max: int,
    *,
    trials: int = 200,
    width: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo estimate of ``P[max_l g(l) > f_max]`` (Lemma 2's event).

    ``m`` singleton labels are inserted into a CMS of depth ``d`` and width
    ``w`` (defaulting to Lemma 2's ``w = 2s = 2m``); the event fires when
    some label's estimate exceeds ``f_max``.  Labels are drawn fresh each
    trial so hash randomness is exercised through input randomness.
    """
    if trials <= 0:
        raise GLPError("trials must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    w = width if width is not None else max(1, 2 * m)
    hits = 0
    for _ in range(trials):
        labels = rng.integers(0, 2**31, size=m, dtype=np.int64)
        sketch = CountMinSketch(d, w)
        estimates = sketch.add(labels)
        # Each label's true frequency is 1; overestimation past f_max means
        # collisions inflated some estimate beyond the HT's best count.
        if estimates.max(initial=0.0) > f_max:
            hits += 1
    return hits / trials
