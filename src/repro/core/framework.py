"""The GLP engine: bulk-synchronous iteration over a device-resident graph.

Each iteration runs the three components of Figure 2:

1. **PickLabel** — ``program.pick_labels`` decides the label every vertex
   exposes this round (a trivial map kernel on the device);
2. **LabelPropagation** — the degree-binned MFL kernels of Section 4;
3. **UpdateVertex** — ``program.update_vertices`` folds the winners into
   vertex state and emits next labels (another map kernel).

The engine owns the device residency of the CSR arrays and both label
arrays; construction fails with
:class:`~repro.errors.OutOfDeviceMemoryError` when they do not fit — that is
the signal to use :class:`~repro.core.hybrid.HybridEngine` instead.

**Frontier execution.**  With ``frontier="frontier"`` or ``"auto"`` and a
``frontier_safe`` program, the engine tracks the set of vertices whose label
changed, advances the active frontier through the reversed CSR (uploaded
next to the forward CSR, together with the frontier bitmap), and runs the
LabelPropagation pass over only that subset.  ``"auto"`` adds the
Beamer-style direction-optimizing fallback: once the frontier fraction
exceeds ``FrontierConfig.dense_threshold`` the degree-binned dense pass is
already the better schedule, so the engine switches back to it for that
iteration.  Iteration 1 is dense (every vertex must see its neighborhood
once) — unless the caller seeds an ``initial_frontier`` of the only
vertices that can change, in which case iteration 1 runs sparse over that
set and the run re-converges in O(changes) (incremental window slides;
see ``docs/incremental_lp.md``).  Programs that are not ``frontier_safe``
silently run dense — label trajectories are bitwise identical across all
three modes.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

import numpy as np

from repro import obs
from repro.core.api import LPProgram, validate_program
from repro.core.instrument import observe_iteration, observe_run
from repro.core.results import IterationStats, LPResult
from repro.errors import ConvergenceError, DeviceFault
from repro.graph.csr import CSRGraph
from repro.gpusim import hooks
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.device import Device
from repro.kernels.base import ELEM_BYTES, GLP_DEFAULT, KernelContext, StrategyConfig
from repro.kernels.frontier import (
    FrontierConfig,
    coerce_initial_frontier,
    next_frontier,
    prune_pinned,
    resolve_frontier,
    use_sparse_pass,
)
from repro.kernels.propagate import propagate_pass, segmented_sort_pass
from repro.kernels.scheduler import bin_vertices_by_degree


def _resolve_pinned(
    program: LPProgram, graph: CSRGraph
) -> Optional[np.ndarray]:
    """The program's pinned-vertex set as sorted unique int64 (or None)."""
    pinned = program.pinned_vertices(graph)
    if pinned is None:
        return None
    return np.unique(np.asarray(pinned, dtype=np.int64))


def _coerce_warm_labels(
    warm_labels: np.ndarray, graph: CSRGraph, init_labels: np.ndarray
) -> np.ndarray:
    """Validate an engine's ``warm_labels=`` argument."""
    warm = np.asarray(warm_labels)
    if warm.shape != (graph.num_vertices,):
        raise ConvergenceError(
            f"warm_labels must carry one label per vertex "
            f"({graph.num_vertices}), got shape {warm.shape}"
        )
    return warm.astype(init_labels.dtype, copy=True)


class GLPEngine:
    """Run LP programs on one simulated GPU.

    Parameters
    ----------
    device:
        A :class:`~repro.gpusim.device.Device`; a fresh Titan V is created
        when omitted.
    config:
        Kernel strategy selection (defaults to the full GLP configuration).
    pass_kind:
        "binned" for GLP's degree-dispatched kernels, "gsort" to force the
        segmented-sort strategy over all vertices (the G-Sort baseline).
    frontier:
        Frontier execution policy: a mode string (``"dense"``,
        ``"frontier"``, ``"auto"``) or a full
        :class:`~repro.kernels.frontier.FrontierConfig`.
    """

    name = "GLP"
    #: Accepts ``initial_frontier``/``warm_labels`` for incremental
    #: re-convergence (see ``docs/incremental_lp.md``).
    supports_incremental = True
    #: Accepts ``retry_policy``/``checkpoint_dir``/``resume_from``
    #: (see ``docs/resilience.md``); CPU baselines do not.
    supports_recovery = True

    def __init__(
        self,
        device: Optional[Device] = None,
        *,
        config: StrategyConfig = GLP_DEFAULT,
        pass_kind: str = "binned",
        spec: DeviceSpec = TITAN_V,
        frontier: "FrontierConfig | str" = "dense",
    ) -> None:
        if pass_kind not in ("binned", "gsort"):
            raise ConvergenceError(f"unknown pass_kind {pass_kind!r}")
        self.device = device if device is not None else Device(spec)
        self.config = config
        self.pass_kind = pass_kind
        self.frontier = resolve_frontier(frontier)

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        program: LPProgram,
        *,
        max_iterations: int = 20,
        record_history: bool = False,
        stop_on_convergence: bool = True,
        retry_policy: "Optional[object]" = None,
        checkpoint_dir: Optional[str] = None,
        resume_from: Union[object, str, None] = None,
        initial_frontier: Optional[np.ndarray] = None,
        warm_labels: Optional[np.ndarray] = None,
    ) -> LPResult:
        """Execute ``program`` on ``graph`` for up to ``max_iterations``.

        Incremental re-convergence (see ``docs/incremental_lp.md``):

        ``initial_frontier``
            Vertex ids iteration 1 processes *sparsely* instead of the
            mandatory dense pass — the affected set of a window slide.
            Requires frontier mode and a ``frontier_safe`` program;
            silently ignored otherwise (the dense run is a correct
            superset).  Only the frontier's edges are charged.
        ``warm_labels``
            Prior label state to resume from in place of
            ``program.init_labels``'s output (the program still
            initializes its own state and may pin seeds on top).

        Resilience (all off by default — the fault-free path is bitwise
        identical to an engine without the recovery layer):

        ``retry_policy``
            A :class:`~repro.resilience.RetryPolicy`; device faults are
            recovered by restoring the BSP-boundary checkpoint and
            re-running (bounded retries for transient faults, bounded
            resumes for fatal ones).  OOM always propagates — stepping
            down engines is ``run_auto``'s job.
        ``checkpoint_dir``
            Persist the per-iteration :class:`~repro.resilience.
            RunCheckpoint` here so a killed run can be resumed.
        ``resume_from``
            A ``RunCheckpoint``, a checkpoint file, or a directory to
            resume from; the resumed run's final labels are bitwise
            identical to an uninterrupted run's.
        """
        if max_iterations <= 0:
            raise ConvergenceError("max_iterations must be positive")
        from repro.resilience.recovery import RecoveryContext

        device = self.device
        device.reset_timing()

        labels = program.init_labels(graph)
        if warm_labels is not None:
            labels = _coerce_warm_labels(warm_labels, graph, labels)
        program.init_state(graph, labels)
        validate_program(program, graph, labels)

        initial = None
        if (
            initial_frontier is not None
            and self.frontier.enabled
            and program.frontier_safe
        ):
            initial = coerce_initial_frontier(
                initial_frontier, graph.num_vertices
            )
        recovery = RecoveryContext.for_run(
            self.name,
            retry_policy=retry_policy,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )
        state: Dict[str, object] = {
            "labels": labels,
            "frontier_vertices": initial,
            "iteration": 1,
        }
        iterations: list = []
        history: Optional[list] = [] if record_history else None
        if recovery is not None:
            ckpt = recovery.resume_checkpoint(graph=graph, program=program)
            if ckpt is not None:
                self._restore(state, program, ckpt)
            else:
                # Cover faults during residency setup: the pre-run state
                # is itself a consistent BSP boundary.
                recovery.checkpoint(
                    graph=graph,
                    program=program,
                    iteration=1,
                    labels=labels,
                    engine_state={"frontier_vertices": initial},
                )
        attempts = 0
        while True:
            attempts += 1
            with obs.correlate(attempt_id=obs.mint_id("attempt")):
                obs.emit(
                    "engine.attempt.start",
                    engine=self.name,
                    attempt=attempts,
                    start_iteration=int(state["iteration"]),
                )
                try:
                    result = self._attempt(
                        graph,
                        program,
                        state,
                        iterations,
                        history,
                        recovery,
                        max_iterations=max_iterations,
                        stop_on_convergence=stop_on_convergence,
                    )
                except DeviceFault as fault:
                    obs.emit(
                        "engine.attempt.fault",
                        engine=self.name,
                        attempt=attempts,
                        kind=fault.kind,
                        transient=fault.transient,
                        iteration=int(state["iteration"]),
                    )
                    if recovery is None:
                        raise
                    ckpt = recovery.on_fault(fault)
                    with recovery.recovery_span(
                        fault, int(state["iteration"])
                    ):
                        self._restore(state, program, ckpt)
                    obs.emit(
                        "recovery.restore",
                        engine=self.name,
                        iteration=int(ckpt.iteration),
                        kind=fault.kind,
                    )
                    continue
                obs.emit(
                    "engine.attempt.end",
                    engine=self.name,
                    attempt=attempts,
                    outcome="ok",
                    iterations=result.num_iterations,
                )
                return result

    @staticmethod
    def _restore(state: Dict[str, object], program: LPProgram, ckpt) -> None:
        """Reset the mutable run state to a checkpoint."""
        ckpt.restore_program(program)
        state["labels"] = ckpt.restored_labels()
        state["frontier_vertices"] = ckpt.restored_engine_state().get(
            "frontier_vertices"
        )
        state["iteration"] = ckpt.iteration

    def _attempt(
        self,
        graph: CSRGraph,
        program: LPProgram,
        state: Dict[str, object],
        iterations: list,
        history: Optional[list],
        recovery,
        *,
        max_iterations: int,
        stop_on_convergence: bool,
    ) -> LPResult:
        """One execution attempt from the current run state to the end."""
        device = self.device
        labels = state["labels"]
        track_frontier = self.frontier.enabled and program.frontier_safe
        reversed_graph = graph.reversed() if track_frontier else None

        # Device residency: CSR arrays + the double-buffered label arrays,
        # plus — in frontier mode — the reversed CSR and the frontier bitmap.
        # Each upload is tagged with its semantic category so the memory
        # tracker (when installed) attributes the watermark correctly.
        tracker = hooks.memory()
        if tracker is not None:
            from repro.core.hybrid import device_footprint

            tracker.note_prediction(
                self.name,
                device,
                device_footprint(graph, program, frontier=self.frontier),
            )
        with obs.alloc_scope("csr", "glp.residency"):
            resident = [
                device.h2d(graph.offsets),
                device.h2d(graph.indices),
            ]
        with obs.alloc_scope("labels", "glp.residency"):
            resident.append(device.h2d(labels))
            resident.append(device.alloc(labels.shape, labels.dtype))
        if graph.weights is not None:
            with obs.alloc_scope("csr", "glp.residency"):
                resident.append(device.h2d(graph.weights))
        if track_frontier:
            with obs.alloc_scope("reversed-csr", "glp.residency"):
                resident.append(device.h2d(reversed_graph.offsets))
                resident.append(device.h2d(reversed_graph.indices))
            with obs.alloc_scope("frontier", "glp.residency"):
                resident.append(
                    device.alloc((graph.num_vertices,), np.uint8)
                )

        # Degrees are static, so the dense pass's degree bins are memoized
        # across iterations (frontier passes bin their subset per round).
        full_bins = None
        pinned = _resolve_pinned(program, graph) if track_frontier else None
        frontier_vertices: Optional[np.ndarray] = state["frontier_vertices"]
        if frontier_vertices is not None:
            frontier_vertices = prune_pinned(frontier_vertices, pinned)

        start_iteration = int(state["iteration"])
        # A fault can fire after an iteration's history append but before
        # its stats append (frontier advance launches kernels); drop any
        # records at or past the restore point so re-runs never duplicate.
        del iterations[start_iteration - 1 :]
        if history is not None:
            del history[start_iteration - 1 :]
        converged = False
        active_tracer = obs.tracer()
        run_started = time.perf_counter() if active_tracer else 0.0
        try:
            for iteration in range(start_iteration, max_iterations + 1):
                state["iteration"] = iteration
                if recovery is not None:
                    recovery.checkpoint(
                        graph=graph,
                        program=program,
                        iteration=iteration,
                        labels=labels,
                        engine_state={
                            "frontier_vertices": frontier_vertices,
                        },
                    )
                iter_started = (
                    time.perf_counter() if active_tracer else 0.0
                )
                kernel_before = device.kernel_seconds
                transfer_before = device.transfer_seconds
                counters_before = device.counters.copy()

                # PickLabel: a map over the vertex array.
                with device.launch("pick-label"):
                    picked = program.pick_labels(graph, labels, iteration)
                    self._account_map_kernel(graph.num_vertices)

                sparse = (
                    track_frontier
                    and frontier_vertices is not None
                    and use_sparse_pass(
                        self.frontier,
                        frontier_vertices.size,
                        graph.num_vertices,
                    )
                )

                ctx = KernelContext(
                    device=device,
                    graph=graph,
                    current_labels=picked,
                    program=program,
                    config=self.config,
                )
                if sparse:
                    processed = frontier_vertices
                    if self.pass_kind == "gsort":
                        result = segmented_sort_pass(ctx, processed)
                    else:
                        result = propagate_pass(ctx, processed)
                else:
                    processed = None
                    if full_bins is None:
                        full_bins = bin_vertices_by_degree(
                            graph,
                            low_threshold=self.config.low_threshold,
                            high_threshold=self.config.high_threshold,
                        )
                    if self.pass_kind == "gsort":
                        result = segmented_sort_pass(ctx, bins=full_bins)
                    else:
                        result = propagate_pass(ctx, bins=full_bins)

                # UpdateVertex: another map kernel over the processed set.
                with device.launch("update-vertex"):
                    new_labels = program.update_vertices(
                        result.vertices,
                        result.best_labels,
                        result.best_scores,
                        labels,
                    )
                    self._account_map_kernel(result.vertices.size)

                program.on_iteration_end(graph, labels, new_labels, iteration)
                changed_mask = new_labels != labels
                changed = int(np.count_nonzero(changed_mask))
                iteration_converged = program.converged(
                    labels, new_labels, iteration
                )
                labels = new_labels
                if history is not None:
                    history.append(labels.copy())

                kernel_stats = dict(result.stats)
                kernel_stats["pass_mode"] = "sparse" if sparse else "dense"
                if track_frontier:
                    kernel_stats["frontier_fraction"] = (
                        result.vertices.size / graph.num_vertices
                        if graph.num_vertices
                        else 0.0
                    )
                    # Advance the frontier for the next round (the expand +
                    # compact kernels are timed on the device).  Pinned
                    # vertices are pruned — their update is a no-op, so
                    # skipping them changes no label and no trajectory.
                    frontier_vertices = prune_pinned(
                        next_frontier(
                            device,
                            reversed_graph,
                            np.flatnonzero(changed_mask),
                        ),
                        pinned,
                    )

                stats = IterationStats(
                    iteration=iteration,
                    seconds=(
                        device.kernel_seconds
                        - kernel_before
                        + device.transfer_seconds
                        - transfer_before
                    ),
                    kernel_seconds=device.kernel_seconds - kernel_before,
                    transfer_seconds=(
                        device.transfer_seconds - transfer_before
                    ),
                    changed_vertices=changed,
                    counters=device.counters.delta_since(counters_before),
                    kernel_stats=kernel_stats,
                    frontier_size=int(result.vertices.size),
                    processed_edges=int(
                        graph.degrees[result.vertices].sum()
                        if result.vertices.size
                        else 0
                    ),
                )
                iterations.append(stats)
                observe_iteration(
                    self.name, stats, graph.num_vertices, track_frontier
                )
                if active_tracer is not None:
                    active_tracer.host_event(
                        f"iteration {iteration}",
                        iter_started,
                        cat="engine",
                        args={
                            "modeled_seconds": stats.seconds,
                            "changed_vertices": changed,
                            "pass_mode": kernel_stats["pass_mode"],
                        },
                    )
                if iteration_converged and stop_on_convergence:
                    converged = True
                    break
        finally:
            for handle in resident:
                device.free(handle)
            if active_tracer is not None:
                active_tracer.host_event(
                    "glp-run",
                    run_started,
                    cat="engine",
                    args={
                        "engine": self.name,
                        "graph": graph.name,
                        "program": program.name,
                    },
                )

        result = LPResult(
            labels=program.final_labels(labels),
            iterations=iterations,
            converged=converged,
            engine=self.name if self.pass_kind == "binned" else "G-Sort",
            history=history,
            final_frontier=frontier_vertices if track_frontier else None,
        )
        observe_run(result.engine, result)
        return result

    # ------------------------------------------------------------------
    def _account_map_kernel(self, num_vertices: int) -> None:
        """Cost of a trivial per-vertex map (PickLabel / UpdateVertex)."""
        device = self.device
        # Same offset read and written by the same (synthetic) lane, which
        # the sanitizer recognizes as a thread updating its own slot.
        device.memory.load_sequential(num_vertices, ELEM_BYTES, array="labels")
        device.memory.store_sequential(num_vertices, ELEM_BYTES, array="labels")
        warps = -(-num_vertices // device.spec.warp_size)
        device.counters.warp_instructions += warps * 2
        device.counters.active_lane_sum += num_vertices * 2
        device.counters.warps_launched += warps
