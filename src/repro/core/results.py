"""Result containers for LP runs."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.gpusim.counters import PerfCounters


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration measurements of an engine run."""

    iteration: int
    seconds: float
    kernel_seconds: float
    transfer_seconds: float
    changed_vertices: int
    counters: PerfCounters
    kernel_stats: Dict[str, object] = field(default_factory=dict)
    #: Vertices the LabelPropagation pass processed this iteration — the
    #: active frontier for sparse passes, ``|V|`` for dense ones.
    frontier_size: int = 0
    #: Sum of in-degrees of the processed vertices (edges actually read).
    processed_edges: int = 0


@dataclass
class LPResult:
    """Outcome of a complete LP run.

    Attributes
    ----------
    labels:
        Final label of every vertex (after ``program.final_labels``).
    iterations:
        Per-iteration stats, in order.
    converged:
        Whether the program's convergence predicate fired before the
        iteration budget ran out.
    engine:
        Name of the engine/approach that produced the result (for reports).
    history:
        Optional list of label arrays per iteration (``record_history``).
    final_frontier:
        The residual frontier at the end of the run — the vertices whose
        in-neighbors changed in the last iteration (sorted unique ids).
        Frontier-tracking engines populate it so incremental window
        slides can re-converge from exactly the vertices a longer run
        would have processed next; ``None`` for dense runs.
    """

    labels: np.ndarray
    iterations: List[IterationStats]
    converged: bool
    engine: str = "glp"
    history: Optional[List[np.ndarray]] = None
    final_frontier: Optional[np.ndarray] = None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_seconds(self) -> float:
        """Total modeled elapsed time across iterations."""
        return sum(stats.seconds for stats in self.iterations)

    @property
    def seconds_per_iteration(self) -> float:
        """Mean per-iteration elapsed time (the Figure 7 metric)."""
        if not self.iterations:
            return 0.0
        return self.total_seconds / len(self.iterations)

    @property
    def total_counters(self) -> PerfCounters:
        """Sum of hardware counters across iterations."""
        total = PerfCounters()
        for stats in self.iterations:
            total.add(stats.counters)
        return total

    def communities(self) -> Dict[int, np.ndarray]:
        """Group vertices by final label: ``{label: vertex_ids}``."""
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_labels[1:] != sorted_labels[:-1]))
        )
        result: Dict[int, np.ndarray] = {}
        for i, start in enumerate(boundaries):
            stop = (
                boundaries[i + 1] if i + 1 < boundaries.size else order.size
            )
            result[int(sorted_labels[start])] = order[start:stop]
        return result

    def community_sizes(self) -> np.ndarray:
        """Sizes of all communities, descending."""
        _, counts = np.unique(self.labels, return_counts=True)
        return np.sort(counts)[::-1]

    # ------------------------------------------------------------------
    def labels_hash(self) -> str:
        """Content hash of the final label array.

        Two runs producing bitwise-identical labels hash identically —
        the cheap way for differential tests and CI to compare outcomes
        without shipping whole arrays.
        """
        data = np.ascontiguousarray(self.labels)
        digest = hashlib.sha256()
        digest.update(str(data.dtype).encode())
        digest.update(data.tobytes())
        return digest.hexdigest()

    def summary(self) -> dict:
        """Machine-readable run summary (the ``--json`` CLI output)."""
        return {
            "engine": self.engine,
            "num_vertices": int(self.labels.size),
            "iterations": self.num_iterations,
            "converged": self.converged,
            "labels_hash": self.labels_hash(),
            "num_communities": int(np.unique(self.labels).size),
            "total_seconds": self.total_seconds,
            "seconds_per_iteration": self.seconds_per_iteration,
            "counters": self.total_counters.as_dict(include_derived=True),
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """JSON dump: the summary plus per-iteration stats."""
        doc = self.summary()
        doc["per_iteration"] = [
            {
                "iteration": stats.iteration,
                "seconds": stats.seconds,
                "kernel_seconds": stats.kernel_seconds,
                "transfer_seconds": stats.transfer_seconds,
                "changed_vertices": stats.changed_vertices,
                "frontier_size": stats.frontier_size,
                "processed_edges": stats.processed_edges,
                "pass_mode": stats.kernel_stats.get("pass_mode", "dense"),
            }
            for stats in self.iterations
        ]
        return json.dumps(doc, indent=indent)
