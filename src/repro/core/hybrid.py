"""CPU-GPU hybrid execution for graphs exceeding device memory.

Section 3.1: "In the case of large graphs that cannot fit into the GPU
memory, the CPUs can coordinate the CPU-GPU graph data movement as well as
handle PickLabel and UpdateVertex.  The heavy lifting of processing
LabelPropagation is then handled by one or multiple GPUs."

Design — persistent residency + CPU co-processing:

* The CSR is split into contiguous vertex chunks; as many as fit stay
  **resident** on the device for the whole run (the CSR is read-only, so
  they upload exactly once).
* The overflow chunks are **not** streamed every iteration — PCIe at
  12 GB/s can never keep up with HBM2 kernels, so re-shipping gigabytes per
  iteration would drown the GPU.  Instead the host CPU co-processes the
  overflow vertices with the same MFL semantics, in parallel with the GPU's
  kernels (the "CPU-GPU heterogeneous mode").
* For ``frontier_safe`` programs (classic and seeded LP) the CPU share is
  frontier-sparsified: an overflow vertex is recomputed only when one of
  its in-neighbors changed label, which after the first iterations shrinks
  the CPU share to a trickle.
* Per iteration only *label deltas* cross PCIe (changed ``(id, label)``
  pairs in both directions) — which is how the visible memory-transfer
  overhead stays below 10 % of elapsed time, the paper's Section 5.4 claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.baselines.cpumodel import CPUSpec, XEON_W2133
from repro.core.api import LPProgram, validate_program
from repro.core.instrument import observe_iteration, observe_run
from repro.core.results import IterationStats, LPResult
from repro.errors import (
    ConvergenceError,
    DeviceFault,
    OutOfDeviceMemoryError,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition, partition_by_edge_count
from repro.gpusim import hooks
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.device import Device
from repro.kernels import mfl
from repro.kernels.base import ELEM_BYTES, GLP_DEFAULT, KernelContext, StrategyConfig
from repro.kernels.frontier import (
    FrontierConfig,
    coerce_initial_frontier,
    prune_pinned,
    resolve_frontier,
    use_sparse_pass,
)
from repro.kernels.mfl import NO_SCORE
from repro.kernels.propagate import propagate_pass
from repro.kernels.scheduler import bin_vertices_by_degree
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


@dataclass(frozen=True)
class HybridStats:
    """Aggregate hybrid-mode measurements over a run.

    ``elapsed_seconds`` is the modeled wall clock: per iteration the GPU
    kernels and the CPU share run *concurrently*, so the iteration costs
    ``max(kernel, cpu) + transfer`` — summing the three shares would count
    overlapped work twice.
    """

    num_chunks: int
    num_resident_chunks: int
    resident_edge_fraction: float
    h2d_bytes: int
    visible_transfer_seconds: float
    kernel_seconds: float
    cpu_seconds: float
    elapsed_seconds: float = 0.0

    @property
    def transfer_fraction(self) -> float:
        """Visible transfer share of elapsed time (paper: < 10 %).

        The denominator is the modeled elapsed time (``max(kernel, cpu)
        + transfer`` per iteration), not ``kernel + cpu + transfer`` —
        the GPU and CPU shares overlap, so the serial sum overstates the
        run time and understated this fraction.
        """
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.visible_transfer_seconds / self.elapsed_seconds


class HybridEngine:
    """CPU-GPU hybrid GLP engine (resident chunks + CPU overflow).

    Parameters
    ----------
    device:
        Simulated GPU (fresh Titan V by default).  The graph is expected
        *not* to fit its memory — otherwise prefer
        :class:`~repro.core.framework.GLPEngine`.
    cpu_spec:
        The host CPU that co-processes overflow vertices.
    memory_safety:
        Fraction of device memory the residency planner may use.
    frontier:
        Frontier execution policy for the *GPU resident range* (the CPU
        overflow share is always frontier-sparsified for safe programs).
        The reversed CSR stays host-side — the CPU coordinates hybrid mode,
        so it computes the frontier and ships the resident slice's ids over
        PCIe each iteration (counted as transfer time).
    """

    name = "GLP-Hybrid"
    #: Accepts ``initial_frontier``/``warm_labels`` for incremental
    #: re-convergence (see ``docs/incremental_lp.md``).
    supports_incremental = True
    #: Accepts ``retry_policy``/``checkpoint_dir``/``resume_from``
    #: (see ``docs/resilience.md``); CPU baselines do not.
    supports_recovery = True

    def __init__(
        self,
        device: Optional[Device] = None,
        *,
        config: StrategyConfig = GLP_DEFAULT,
        spec: DeviceSpec = TITAN_V,
        cpu_spec: CPUSpec = XEON_W2133,
        memory_safety: float = 0.9,
        frontier: "FrontierConfig | str" = "dense",
    ) -> None:
        if not 0.0 < memory_safety <= 1.0:
            raise ConvergenceError("memory_safety must be in (0, 1]")
        self.device = device if device is not None else Device(spec)
        self.config = config
        self.cpu_spec = cpu_spec
        self.memory_safety = memory_safety
        self.frontier = resolve_frontier(frontier)
        self.last_stats: Optional[HybridStats] = None

    # ------------------------------------------------------------------
    def _chunk_bytes(self, graph: CSRGraph, chunk: VertexPartition) -> int:
        per_edge = ELEM_BYTES * (2 if graph.weights is not None else 1)
        return chunk.num_edges * per_edge

    def _plan(self, graph: CSRGraph):
        """Split into chunks; the resident prefix fills the device."""
        label_bytes = (graph.num_vertices + 1) * ELEM_BYTES
        # offsets + labels + out + scores, plus a transient slot for the
        # per-iteration delta-label buffers.
        always_resident = 5 * label_bytes
        budget = (
            int(self.device.spec.global_mem_bytes * self.memory_safety)
            - always_resident
        )
        if budget <= 0:
            raise OutOfDeviceMemoryError(
                "device too small to hold even the label arrays"
            )
        per_edge = ELEM_BYTES * (2 if graph.weights is not None else 1)
        max_edges = max(1, budget // (64 * per_edge))
        chunks = partition_by_edge_count(graph, max_edges)

        resident: List[VertexPartition] = []
        overflow: List[VertexPartition] = []
        used = 0
        for chunk in chunks:
            nbytes = self._chunk_bytes(graph, chunk)
            if not overflow and used + nbytes <= budget:
                resident.append(chunk)
                used += nbytes
            else:
                overflow.append(chunk)
        return chunks, resident, overflow

    def _cpu_rate(self) -> float:
        """Host edge-processing rate for the co-processed share."""
        return (
            self.cpu_spec.edges_per_core_per_second
            * self.cpu_spec.num_cores
            * 1.3
        )

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        program: LPProgram,
        *,
        max_iterations: int = 20,
        record_history: bool = False,
        stop_on_convergence: bool = True,
        retry_policy: "Optional[object]" = None,
        checkpoint_dir: Optional[str] = None,
        resume_from: Union[object, str, None] = None,
        initial_frontier: Optional[np.ndarray] = None,
        warm_labels: Optional[np.ndarray] = None,
    ) -> LPResult:
        """Execute ``program`` on a graph larger than device memory.

        ``initial_frontier``/``warm_labels`` mirror
        :meth:`GLPEngine.run`'s incremental re-convergence options: with a
        frontier mode and a ``frontier_safe`` program, iteration 1 runs
        sparse over the given vertex set on *both* execution shares (the
        resident GPU slice and the CPU overflow slice) instead of the
        mandatory dense pass.

        The resilience options mirror :meth:`GLPEngine.run`: checkpoints
        are captured at the top of every BSP iteration (labels + program
        state + last round's changed set), device faults are recovered by
        restoring the checkpoint under the ``retry_policy``'s budget, and
        ``resume_from`` restarts a killed run bitwise identically.
        """
        if max_iterations <= 0:
            raise ConvergenceError("max_iterations must be positive")
        from repro.resilience.recovery import RecoveryContext

        device = self.device
        device.reset_timing()

        labels = program.init_labels(graph)
        if warm_labels is not None:
            from repro.core.framework import _coerce_warm_labels

            labels = _coerce_warm_labels(warm_labels, graph, labels)
        program.init_state(graph, labels)
        validate_program(program, graph, labels)

        initial = None
        if (
            initial_frontier is not None
            and self.frontier.enabled
            and program.frontier_safe
        ):
            initial = coerce_initial_frontier(
                initial_frontier, graph.num_vertices
            )
        recovery = RecoveryContext.for_run(
            self.name,
            retry_policy=retry_policy,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )
        state: Dict[str, object] = {
            "labels": labels,
            "prev_changed": None,
            "initial_frontier": initial,
            "iteration": 1,
        }
        iterations: List[IterationStats] = []
        history: Optional[list] = [] if record_history else None
        if recovery is not None:
            ckpt = recovery.resume_checkpoint(graph=graph, program=program)
            if ckpt is not None:
                self._restore(state, program, ckpt)
            else:
                recovery.checkpoint(
                    graph=graph,
                    program=program,
                    iteration=1,
                    labels=labels,
                    engine_state={
                        "prev_changed": None,
                        "initial_frontier": initial,
                    },
                )
        attempts = 0
        while True:
            attempts += 1
            with obs.correlate(attempt_id=obs.mint_id("attempt")):
                obs.emit(
                    "engine.attempt.start",
                    engine=self.name,
                    attempt=attempts,
                    start_iteration=int(state["iteration"]),
                )
                try:
                    result = self._attempt(
                        graph,
                        program,
                        state,
                        iterations,
                        history,
                        recovery,
                        max_iterations=max_iterations,
                        stop_on_convergence=stop_on_convergence,
                    )
                except DeviceFault as fault:
                    obs.emit(
                        "engine.attempt.fault",
                        engine=self.name,
                        attempt=attempts,
                        kind=fault.kind,
                        transient=fault.transient,
                        iteration=int(state["iteration"]),
                    )
                    if recovery is None:
                        raise
                    ckpt = recovery.on_fault(fault)
                    with recovery.recovery_span(
                        fault, int(state["iteration"])
                    ):
                        self._restore(state, program, ckpt)
                    obs.emit(
                        "recovery.restore",
                        engine=self.name,
                        iteration=int(ckpt.iteration),
                        kind=fault.kind,
                    )
                    continue
                obs.emit(
                    "engine.attempt.end",
                    engine=self.name,
                    attempt=attempts,
                    outcome="ok",
                    iterations=result.num_iterations,
                )
                return result

    @staticmethod
    def _restore(state: Dict[str, object], program: LPProgram, ckpt) -> None:
        """Reset the mutable run state to a checkpoint."""
        ckpt.restore_program(program)
        engine_state = ckpt.restored_engine_state()
        state["labels"] = ckpt.restored_labels()
        state["prev_changed"] = engine_state.get("prev_changed")
        state["initial_frontier"] = engine_state.get("initial_frontier")
        state["iteration"] = ckpt.iteration

    def _attempt(
        self,
        graph: CSRGraph,
        program: LPProgram,
        state: Dict[str, object],
        iterations: List[IterationStats],
        history: Optional[list],
        recovery,
        *,
        max_iterations: int,
        stop_on_convergence: bool,
    ) -> LPResult:
        """One execution attempt from the current run state to the end."""
        from repro.core.framework import _resolve_pinned

        device = self.device
        labels = state["labels"]
        # Pinned vertices are pruned from every sparse worklist (their
        # update is a no-op); relevant whenever the program is
        # frontier-safe, since the CPU overflow share sparsifies even in
        # dense GPU mode.
        pinned = (
            _resolve_pinned(program, graph)
            if program.frontier_safe
            else None
        )
        chunks, resident, overflow = self._plan(graph)
        resident_edges = sum(c.num_edges for c in resident)
        overflow_start = overflow[0].start if overflow else graph.num_vertices

        track_frontier = self.frontier.enabled and program.frontier_safe
        resident_vertices = (
            np.arange(resident[0].start, resident[-1].stop, dtype=np.int64)
            if resident
            else np.empty(0, dtype=np.int64)
        )
        # Degrees are static: bin the resident range once for dense rounds.
        resident_bins = (
            bin_vertices_by_degree(
                graph,
                low_threshold=self.config.low_threshold,
                high_threshold=self.config.high_threshold,
                vertices=resident_vertices,
            )
            if resident_vertices.size
            else None
        )

        # One-time residency uploads (window setup, not per-iteration time).
        # The planner's own estimate — the always-resident label arrays
        # plus the chunk bytes it admitted — is noted to the memory
        # tracker so the watermark report can grade it against the
        # measured peak.
        tracker = hooks.memory()
        if tracker is not None:
            label_bytes = (graph.num_vertices + 1) * ELEM_BYTES
            tracker.note_prediction(
                self.name,
                device,
                5 * label_bytes
                + sum(self._chunk_bytes(graph, c) for c in resident),
                source="hybrid.plan",
            )
        with obs.alloc_scope("csr", "hybrid.residency"):
            persistent = [device.h2d(graph.offsets)]
        with obs.alloc_scope("labels", "hybrid.residency"):
            persistent.append(device.h2d(labels))
            persistent.append(device.alloc(labels.shape, labels.dtype))
        with obs.alloc_scope("scratch", "hybrid.scores"):
            persistent.append(device.alloc(labels.shape, np.float64))
        with obs.alloc_scope("csr", "hybrid.residency"):
            for chunk in resident:
                persistent.append(
                    device.h2d(
                        graph.indices[chunk.edge_start : chunk.edge_stop]
                    )
                )
                if graph.weights is not None:
                    persistent.append(
                        device.h2d(
                            graph.weights[chunk.edge_start : chunk.edge_stop]
                        )
                    )
        converged = False
        prev_changed: Optional[np.ndarray] = state["prev_changed"]
        # The affected set seeding a sparse iteration 1 (already coerced;
        # None past iteration 1 or for plain cold/warm-dense runs).
        initial: Optional[np.ndarray] = state.get("initial_frontier")
        start_iteration = int(state["iteration"])
        del iterations[start_iteration - 1 :]
        if history is not None:
            del history[start_iteration - 1 :]

        active_tracer = obs.tracer()
        run_started = time.perf_counter() if active_tracer else 0.0
        try:
            for iteration in range(start_iteration, max_iterations + 1):
                state["iteration"] = iteration
                if recovery is not None:
                    recovery.checkpoint(
                        graph=graph,
                        program=program,
                        iteration=iteration,
                        labels=labels,
                        engine_state={
                            "prev_changed": prev_changed,
                            "initial_frontier": (
                                initial if iteration == 1 else None
                            ),
                        },
                    )
                iter_started = (
                    time.perf_counter() if active_tracer else 0.0
                )
                kernel_before = device.kernel_seconds
                transfer_before = device.transfer_seconds
                counters_before = device.counters.copy()

                picked = program.pick_labels(graph, labels, iteration)

                # Host -> device: ship the labels that changed last round
                # ((id, label) int32 pairs — a stream, not an allocation).
                # An incremental start only ships the affected set's labels.
                if iteration == 1:
                    up_count = (
                        int(initial.size)
                        if initial is not None
                        else graph.num_vertices
                    )
                else:
                    up_count = int(prev_changed.size)
                if up_count:
                    with obs.alloc_scope("exchange", "hybrid.label-deltas"):
                        device.stream_to_device(2 * up_count * 4)

                best_labels = picked.astype(LABEL_DTYPE, copy=True)
                best_scores = np.full(
                    graph.num_vertices, NO_SCORE, dtype=WEIGHT_DTYPE
                )

                # The active frontier (sorted unique out-neighbors of last
                # round's changed vertices — or the caller's affected set
                # at an incremental iteration 1), computed once per
                # iteration on the host and sliced by both execution shares.
                frontier_candidates = None
                incremental_start = initial is not None and iteration == 1
                if program.frontier_safe and iteration > 1:
                    frontier_candidates = self._changed_out_neighbors(
                        graph, prev_changed
                    )
                elif incremental_start:
                    frontier_candidates = initial
                if frontier_candidates is not None:
                    frontier_candidates = prune_pinned(
                        frontier_candidates, pinned
                    )

                # GPU: resident vertex ranges through the normal kernels —
                # sparsified to the active frontier when tracking is on.
                processed_vertices = 0
                processed_edges = 0
                sparse = False
                if resident:
                    vertices = resident_vertices
                    if track_frontier and frontier_candidates is not None:
                        frontier_slice = self._resident_frontier(
                            frontier_candidates, resident_vertices
                        )
                        sparse = use_sparse_pass(
                            self.frontier,
                            frontier_slice.size,
                            resident_vertices.size,
                        )
                        if sparse:
                            vertices = frontier_slice
                            # The host computed the frontier; ship the ids
                            # of the resident slice to the device.
                            if vertices.size:
                                with obs.alloc_scope(
                                    "exchange", "hybrid.frontier-ids"
                                ):
                                    device.stream_to_device(
                                        vertices.size * 8
                                    )
                    if vertices.size:
                        ctx = KernelContext(
                            device=device,
                            graph=graph,
                            current_labels=picked,
                            program=program,
                            config=self.config,
                        )
                        if sparse:
                            result = propagate_pass(ctx, vertices)
                        else:
                            result = propagate_pass(
                                ctx, vertices, bins=resident_bins
                            )
                        best_labels[result.vertices] = result.best_labels
                        best_scores[result.vertices] = result.best_scores
                        processed_vertices += int(result.vertices.size)
                        processed_edges += int(
                            graph.degrees[result.vertices].sum()
                        )

                # CPU: overflow ranges, frontier-sparsified when safe.
                cpu_seconds = 0.0
                if overflow:
                    active = self._overflow_active(
                        graph,
                        program,
                        frontier_candidates,
                        overflow_start,
                        iteration,
                        incremental=incremental_start,
                    )
                    if active.size:
                        batch = mfl.expand_edges(graph, active)
                        groups = mfl.aggregate_label_frequencies(
                            program, batch, picked
                        )
                        o_labels, o_scores = mfl.select_best_labels(
                            program, groups, active, picked
                        )
                        best_labels[active] = o_labels
                        best_scores[active] = o_scores
                        cpu_seconds = (
                            batch.num_edges / self._cpu_rate()
                            + self.cpu_spec.sync_seconds
                        )
                        processed_vertices += int(active.size)
                        processed_edges += int(batch.num_edges)

                all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
                new_labels = program.update_vertices(
                    all_vertices, best_labels, best_scores, labels
                )
                program.on_iteration_end(graph, labels, new_labels, iteration)
                changed_mask = new_labels != labels
                changed = int(np.count_nonzero(changed_mask))
                prev_changed = np.flatnonzero(changed_mask)

                # Device -> host: the winners that moved.
                if changed:
                    with obs.alloc_scope("exchange", "hybrid.label-deltas"):
                        device.stream_to_host(2 * changed * 4)

                iteration_converged = program.converged(
                    labels, new_labels, iteration
                )
                labels = new_labels
                if history is not None:
                    history.append(labels.copy())

                kernel_delta = device.kernel_seconds - kernel_before
                transfer_delta = device.transfer_seconds - transfer_before
                stats = IterationStats(
                    iteration=iteration,
                    # GPU and CPU shares run concurrently.
                    seconds=max(kernel_delta, cpu_seconds) + transfer_delta,
                    kernel_seconds=kernel_delta,
                    transfer_seconds=transfer_delta,
                    changed_vertices=changed,
                    counters=device.counters.delta_since(counters_before),
                    kernel_stats={
                        "pass_mode": "sparse" if sparse else "dense",
                        # Kept per-iteration (not a running total) so a
                        # fault-retried iteration never double-counts.
                        "cpu_seconds": cpu_seconds,
                    },
                    frontier_size=processed_vertices,
                    processed_edges=processed_edges,
                )
                iterations.append(stats)
                observe_iteration(
                    self.name, stats, graph.num_vertices, track_frontier
                )
                m = obs.metrics()
                if m is not None:
                    m.observe(
                        "hybrid_cpu_seconds", cpu_seconds, engine=self.name
                    )
                if active_tracer is not None:
                    active_tracer.host_event(
                        f"iteration {iteration}",
                        iter_started,
                        cat="engine",
                        args={
                            "modeled_seconds": stats.seconds,
                            "cpu_seconds": cpu_seconds,
                            "changed_vertices": changed,
                        },
                    )
                if iteration_converged and stop_on_convergence:
                    converged = True
                    break
        finally:
            for handle in persistent:
                device.free(handle)
            if active_tracer is not None:
                active_tracer.host_event(
                    "hybrid-run",
                    run_started,
                    cat="engine",
                    args={"engine": self.name, "graph": graph.name},
                )

        self.last_stats = HybridStats(
            num_chunks=len(chunks),
            num_resident_chunks=len(resident),
            resident_edge_fraction=(
                resident_edges / graph.num_edges if graph.num_edges else 1.0
            ),
            h2d_bytes=device.counters.h2d_bytes,
            visible_transfer_seconds=sum(
                stats.transfer_seconds for stats in iterations
            ),
            kernel_seconds=sum(
                stats.kernel_seconds for stats in iterations
            ),
            cpu_seconds=sum(
                stats.kernel_stats.get("cpu_seconds", 0.0)
                for stats in iterations
            ),
            elapsed_seconds=sum(stats.seconds for stats in iterations),
        )
        m = obs.metrics()
        if m is not None:
            m.set_gauge(
                "hybrid_resident_edge_fraction",
                self.last_stats.resident_edge_fraction,
                engine=self.name,
            )
            m.set_gauge(
                "hybrid_transfer_fraction",
                self.last_stats.transfer_fraction,
                engine=self.name,
            )
        result = LPResult(
            labels=program.final_labels(labels),
            iterations=iterations,
            converged=converged,
            engine=self.name,
            history=history,
            # The residual frontier: out-neighbors of the final round's
            # changed vertices (host-side, like every hybrid frontier).
            final_frontier=(
                prune_pinned(
                    self._changed_out_neighbors(graph, prev_changed),
                    pinned,
                )
                if track_frontier
                else None
            ),
        )
        observe_run(self.name, result)
        return result

    # ------------------------------------------------------------------
    def _overflow_active(
        self,
        graph: CSRGraph,
        program: LPProgram,
        frontier_candidates: Optional[np.ndarray],
        overflow_start: int,
        iteration: int,
        *,
        incremental: bool = False,
    ) -> np.ndarray:
        """Overflow vertices the CPU must recompute this iteration.

        ``incremental`` marks a seeded sparse iteration 1: the caller's
        affected set replaces the mandatory dense first pass, so the CPU
        share sparsifies from the start instead of sweeping the whole
        overflow range.
        """
        if (iteration == 1 and not incremental) or not program.frontier_safe:
            return np.arange(
                overflow_start, graph.num_vertices, dtype=np.int64
            )
        if frontier_candidates is None:
            return np.empty(0, dtype=np.int64)
        return frontier_candidates[frontier_candidates >= overflow_start]

    # ------------------------------------------------------------------
    @staticmethod
    def _changed_out_neighbors(
        graph: CSRGraph, changed: Optional[np.ndarray]
    ) -> np.ndarray:
        """Sorted unique out-neighbors of ``changed`` (the next frontier)."""
        if changed is None or changed.size == 0:
            return np.empty(0, dtype=np.int64)
        batch = mfl.expand_edges(graph.reversed(), changed)
        return np.unique(batch.neighbor_ids.astype(np.int64, copy=False))

    @staticmethod
    def _resident_frontier(
        frontier_candidates: Optional[np.ndarray],
        resident_vertices: np.ndarray,
    ) -> np.ndarray:
        """Resident-range slice of the active frontier."""
        if frontier_candidates is None or frontier_candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        lo = np.searchsorted(
            frontier_candidates, resident_vertices[0], side="left"
        )
        hi = np.searchsorted(
            frontier_candidates, resident_vertices[-1], side="right"
        )
        return frontier_candidates[lo:hi]


def device_footprint(
    graph: CSRGraph,
    program: Optional[LPProgram] = None,
    *,
    frontier: "FrontierConfig | str" = "dense",
) -> int:
    """Bytes :class:`GLPEngine` actually makes device-resident for ``graph``.

    Mirrors the engine's residency list: the CSR arrays plus *both*
    double-buffered label arrays, and — when frontier execution applies
    (mode enabled and the program ``frontier_safe``) — the reversed CSR
    and the one-byte-per-vertex frontier bitmap.
    """
    mode = resolve_frontier(frontier)
    needed = graph.nbytes + 2 * graph.num_vertices * ELEM_BYTES
    if mode.enabled and (program is None or program.frontier_safe):
        # The reversed CSR has the same offsets/indices volume as the
        # forward CSR (weights are not uploaded for it).
        needed += graph.offsets.nbytes + graph.indices.nbytes
        needed += graph.num_vertices  # uint8 frontier bitmap
    return needed


def _record_degradation(source: str, target: str, fault: Exception) -> None:
    kind = getattr(fault, "kind", "oom")
    m = obs.metrics()
    if m is not None:
        m.inc(
            "resilience_degradations_total",
            source=source,
            target=target,
            kind=kind,
        )
    obs.emit(
        "resilience.degradation",
        source=source,
        target=target,
        kind=kind,
        error=type(fault).__name__,
    )
    # A ladder step means the configured engine could not hold the run —
    # capture the post-mortem while the causal chain is still in the ring.
    obs.flight_dump("degradation", source=source, target=target, kind=kind)


#: run kwargs understood by the CPU engines (the resilience options and
#: anything device-specific are GPU-engine-only and must not be forwarded).
_CPU_RUN_KWARGS = ("max_iterations", "record_history", "stop_on_convergence")


def run_auto(
    graph: CSRGraph,
    program: LPProgram,
    *,
    spec: DeviceSpec = TITAN_V,
    config: StrategyConfig = GLP_DEFAULT,
    frontier: "FrontierConfig | str" = "dense",
    degrade: bool = True,
    **run_kwargs,
):
    """Pick an engine by device footprint, degrading on device failure.

    The ladder is GPU -> hybrid -> CPU: the all-resident
    :class:`~repro.core.framework.GLPEngine` is chosen when the graph's
    *actual* residency (see :func:`device_footprint`) fits, the
    :class:`HybridEngine` when it does not, and on device OOM or an
    unrecovered :class:`~repro.errors.DeviceFault` the run steps down to
    the next rung (ultimately ``baselines.cpu_serial.SerialEngine``,
    which needs no device at all).  Set ``degrade=False`` to restore the
    raise-on-failure behavior.

    Returns ``(result, engine)`` — the engine exposes mode-specific stats
    (e.g. ``HybridEngine.last_stats``).
    """
    from repro.baselines.cpu_serial import SerialEngine
    from repro.core.framework import GLPEngine

    needed = device_footprint(graph, program, frontier=frontier)
    if needed <= spec.global_mem_bytes * 0.9:
        engine = GLPEngine(spec=spec, config=config, frontier=frontier)
        try:
            return engine.run(graph, program, **run_kwargs), engine
        except (OutOfDeviceMemoryError, DeviceFault) as fault:
            if not degrade:
                raise
            _record_degradation(engine.name, HybridEngine.name, fault)

    engine = HybridEngine(spec=spec, config=config, frontier=frontier)
    try:
        return engine.run(graph, program, **run_kwargs), engine
    except (OutOfDeviceMemoryError, DeviceFault) as fault:
        if not degrade:
            raise
        _record_degradation(engine.name, SerialEngine.name, fault)

    engine = SerialEngine()
    cpu_kwargs = {
        key: value
        for key, value in run_kwargs.items()
        if key in _CPU_RUN_KWARGS
    }
    return engine.run(graph, program, **cpu_kwargs), engine
