"""Shared metric emission for the engines.

All three engines (GLP, hybrid, multi-GPU) publish the same metric
families per iteration and per run so dashboards and the CLI metrics dump
can compare them on equal terms; the ``engine`` label carries the engine
name.  Every helper is a no-op when no observability session is active —
the engines call them unconditionally.

Metric families (full table in ``docs/observability.md``):

* ``engine_iteration_seconds`` (histogram) — modeled elapsed per iteration
* ``engine_iterations_total`` / ``engine_runs_total`` (counters)
* ``engine_pass_total`` (counter, ``mode="dense"|"sparse"``) — the
  direction-optimizing dispatch decisions
* ``engine_frontier_fraction`` (histogram) — ``|frontier| / |V|``
* ``engine_changed_vertices`` (histogram)
* ``engine_run_seconds`` (histogram) — modeled elapsed per run
"""

from __future__ import annotations

from repro import obs
from repro.core.results import IterationStats, LPResult


def observe_iteration(
    engine_name: str,
    stats: IterationStats,
    num_vertices: int,
    track_frontier: bool,
) -> None:
    """Publish one iteration's metrics (no-op without an active session)."""
    m = obs.metrics()
    if m is None:
        return
    m.observe("engine_iteration_seconds", stats.seconds, engine=engine_name)
    m.inc("engine_iterations_total", engine=engine_name)
    mode = stats.kernel_stats.get("pass_mode", "dense")
    m.inc("engine_pass_total", engine=engine_name, mode=mode)
    m.observe(
        "engine_changed_vertices", stats.changed_vertices, engine=engine_name
    )
    if track_frontier and num_vertices:
        m.observe(
            "engine_frontier_fraction",
            stats.frontier_size / num_vertices,
            engine=engine_name,
        )


def observe_run(engine_name: str, result: LPResult) -> None:
    """Publish run-level metrics (no-op without an active session)."""
    m = obs.metrics()
    if m is None:
        return
    m.inc("engine_runs_total", engine=engine_name)
    m.observe("engine_run_seconds", result.total_seconds, engine=engine_name)
