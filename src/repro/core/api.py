"""The GLP user-defined API (paper, Table 1).

Data engineers customize four hooks; the framework supplies everything else
(kernel selection, degree scheduling, memory management):

=================  ==========================================================
Hook               Role
=================  ==========================================================
``pick_labels``    *PickLabel* — decide each vertex's current label from the
                   program's internal state (identity for classic LP; a
                   sampled "spoken" label for SLP).
``load_neighbor``  *LoadNeighbor* — map an edge to the (label, frequency
                   contribution) pair that enters MFL counting.
``score``          *LabelScore* — score a label given its aggregated
                   frequency among a vertex's neighbors.
``update_vertices``*UpdateVertex* — fold the winning (label, score) back
                   into each vertex's state and emit its next label.
=================  ==========================================================

**Vectorized contract.** The paper's hooks are scalar CUDA device functions;
calling a scalar Python hook per edge would bury the simulation in
interpreter overhead, so every hook here receives/returns numpy arrays (a
batch of edges or candidate labels).  :func:`elementwise_program` adapts a
scalar implementation to the vectorized contract for pedagogy and testing.

**Monotonicity requirement.** ``score(v, l, f)`` must be non-decreasing in
``f`` for fixed ``(v, l)``.  The CMS pruning step compares HT scores against
scores of CMS *over*-estimates; monotonicity is exactly what makes that
comparison safe (paper, Section 4.1 "Special Note").  Classic LP
(``score = f``) and LLP (``score = f*(1+gamma) - gamma*volume``) both
satisfy it.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


class LPProgram:
    """Base class for user-defined LP algorithms.

    Subclasses override the hooks they need; the defaults implement the
    classic LP algorithm of Raghavan et al. [28].
    """

    #: Program name used in reports.
    name: str = "lp"

    #: Whether a vertex's update depends only on its neighbors' labels.
    #: When ``True``, frontier-based engines (Ligra) may skip vertices whose
    #: neighborhoods did not change.  Programs with *global* state in their
    #: score (LLP's label volumes) or randomized picks (SLP) must leave this
    #: ``False``.
    frontier_safe: bool = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def init_labels(self, graph: CSRGraph) -> np.ndarray:
        """Initial label array: every vertex gets its own id (classic LP)."""
        return np.arange(graph.num_vertices, dtype=LABEL_DTYPE)

    def init_state(self, graph: CSRGraph, labels: np.ndarray) -> None:
        """Allocate per-program state (label volumes, SLP memories, ...)."""

    # ------------------------------------------------------------------
    # The four Table 1 hooks (vectorized)
    # ------------------------------------------------------------------
    def pick_labels(
        self, graph: CSRGraph, labels: np.ndarray, iteration: int
    ) -> np.ndarray:
        """*PickLabel*: label each vertex exposes to its neighbors now."""
        return labels

    def load_neighbor(
        self,
        vertex_ids: np.ndarray,
        neighbor_ids: np.ndarray,
        neighbor_labels: np.ndarray,
        edge_weights: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """*LoadNeighbor*: per-edge (label, frequency contribution).

        Default: the neighbor's label with the edge weight as contribution.
        """
        return neighbor_labels, edge_weights

    def score(
        self,
        vertex_ids: np.ndarray,
        labels: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        """*LabelScore*: score of ``labels[i]`` for ``vertex_ids[i]``.

        Must be monotone non-decreasing in ``frequencies`` (see module
        docstring).  Default: the frequency itself.
        """
        return frequencies.astype(WEIGHT_DTYPE, copy=False)

    def update_vertices(
        self,
        vertex_ids: np.ndarray,
        best_labels: np.ndarray,
        best_scores: np.ndarray,
        current_labels: np.ndarray,
    ) -> np.ndarray:
        """*UpdateVertex*: produce the next full label array.

        ``vertex_ids`` is the subset the kernels processed this iteration
        (usually all vertices); ``best_labels``/``best_scores`` align with
        it.  ``current_labels`` is the *full* current label array, and the
        return value must be a full array too.  Vertices with no incoming
        neighbors arrive with score ``-inf`` and keep their current label
        by default.
        """
        result = current_labels.astype(LABEL_DTYPE, copy=True)
        adopt = np.isfinite(best_scores)
        result[vertex_ids[adopt]] = best_labels[adopt]
        return result

    def pinned_vertices(self, graph: CSRGraph) -> Optional[np.ndarray]:
        """Vertices whose labels this program guarantees never to change.

        Frontier-tracking engines prune these from every sparse pass:
        a pinned vertex's update is a no-op by contract, so skipping it
        cannot alter any label or the frontier trajectory — but it can
        avoid streaming a pinned hub's entire neighbor list each round
        (seeded fraud detection pins black-list and carried seeds, and
        carried hub products dominate the warm-window frontiers' edge
        volume).  Return ``None`` (default) when no such guarantee
        exists; otherwise an array of vertex ids.
        """
        return None

    # ------------------------------------------------------------------
    # Iteration control
    # ------------------------------------------------------------------
    def on_iteration_end(
        self,
        graph: CSRGraph,
        old_labels: np.ndarray,
        new_labels: np.ndarray,
        iteration: int,
    ) -> None:
        """Per-iteration state maintenance (LLP volumes, SLP memories)."""

    def converged(
        self, old_labels: np.ndarray, new_labels: np.ndarray, iteration: int
    ) -> bool:
        """Stop when no label changed (classic LP termination)."""
        return bool(np.array_equal(old_labels, new_labels))

    def final_labels(self, labels: np.ndarray) -> np.ndarray:
        """Map the internal label array to the reported communities."""
        return labels


class ElementwiseProgram(LPProgram):
    """Adapter turning scalar per-edge/per-label hooks into an LPProgram.

    This mirrors the paper's scalar API one-to-one — useful for teaching and
    for differential tests against vectorized programs, but slow (Python
    call per element).
    """

    name = "elementwise"

    def __init__(
        self,
        *,
        load_neighbor: Optional[Callable[[int, int, int, float], Tuple[int, float]]] = None,
        label_score: Optional[Callable[[int, int, float], float]] = None,
        update_vertex: Optional[Callable[[int, int, float, int], int]] = None,
        pick_label: Optional[Callable[[int, int], int]] = None,
        name: str = "elementwise",
    ) -> None:
        self._load_neighbor = load_neighbor
        self._label_score = label_score
        self._update_vertex = update_vertex
        self._pick_label = pick_label
        self.name = name

    def pick_labels(
        self, graph: CSRGraph, labels: np.ndarray, iteration: int
    ) -> np.ndarray:
        if self._pick_label is None:
            return labels
        return np.fromiter(
            (self._pick_label(v, int(labels[v])) for v in range(labels.size)),
            dtype=LABEL_DTYPE,
            count=labels.size,
        )

    def load_neighbor(self, vertex_ids, neighbor_ids, neighbor_labels, edge_weights):
        if self._load_neighbor is None:
            return neighbor_labels, edge_weights
        labels = np.empty(vertex_ids.size, dtype=LABEL_DTYPE)
        freqs = np.empty(vertex_ids.size, dtype=WEIGHT_DTYPE)
        for i in range(vertex_ids.size):
            labels[i], freqs[i] = self._load_neighbor(
                int(vertex_ids[i]),
                int(neighbor_ids[i]),
                int(neighbor_labels[i]),
                float(edge_weights[i]),
            )
        return labels, freqs

    def score(self, vertex_ids, labels, frequencies):
        if self._label_score is None:
            return frequencies.astype(WEIGHT_DTYPE, copy=False)
        return np.fromiter(
            (
                self._label_score(int(v), int(l), float(f))
                for v, l, f in zip(vertex_ids, labels, frequencies)
            ),
            dtype=WEIGHT_DTYPE,
            count=vertex_ids.size,
        )

    def update_vertices(self, vertex_ids, best_labels, best_scores, current_labels):
        if self._update_vertex is None:
            return super().update_vertices(
                vertex_ids, best_labels, best_scores, current_labels
            )
        return np.fromiter(
            (
                self._update_vertex(
                    int(v), int(l), float(s), int(c)
                )
                for v, l, s, c in zip(
                    vertex_ids, best_labels, best_scores, current_labels
                )
            ),
            dtype=LABEL_DTYPE,
            count=vertex_ids.size,
        )


def elementwise_program(**kwargs) -> ElementwiseProgram:
    """Build an :class:`ElementwiseProgram` from scalar hooks (see class)."""
    return ElementwiseProgram(**kwargs)


def validate_program(
    program: LPProgram, graph: CSRGraph, labels: Optional[np.ndarray] = None
) -> None:
    """Cheap contract checks run once before an engine starts.

    Verifies the initial label array shape/dtype and spot-checks score
    monotonicity on a few (vertex, label) pairs.  ``labels`` lets engines
    pass an already-initialized array; the program's state must be
    initialized before calling (score hooks may read it).
    """
    if labels is None:
        labels = program.init_labels(graph)
        program.init_state(graph, labels)
    if labels.shape != (graph.num_vertices,):
        raise ProgramError(
            f"init_labels returned shape {labels.shape}, expected "
            f"({graph.num_vertices},)"
        )
    if labels.dtype != LABEL_DTYPE:
        raise ProgramError(
            f"init_labels must return dtype {LABEL_DTYPE}, got {labels.dtype}"
        )
    if graph.num_vertices == 0:
        return
    probe_vertices = np.zeros(3, dtype=np.int64)
    probe_labels = np.full(3, int(labels[0]), dtype=LABEL_DTYPE)
    probe_freqs = np.array([1.0, 2.0, 4.0])
    scores = np.asarray(
        program.score(probe_vertices, probe_labels, probe_freqs), dtype=float
    )
    if scores.shape != (3,):
        raise ProgramError("score must return one value per input element")
    if not (scores[0] <= scores[1] <= scores[2]):
        raise ProgramError(
            "score must be monotone non-decreasing in frequency "
            "(required for CMS pruning correctness)"
        )
