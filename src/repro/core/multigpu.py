"""Multi-GPU execution (Section 5.4's two-GPU experiment).

Vertices are split into near-equal-edge contiguous ranges, one per device.
Each iteration every device runs the degree-binned kernels over its own
range in parallel; the iteration's kernel time is the *maximum* over
devices (bulk-synchronous).  Afterwards the devices exchange the labels
their partitions updated (peer-to-peer over PCIe), which is the scaling tax
that turns 2 GPUs into ~1.8x rather than 2x.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.api import LPProgram, validate_program
from repro.core.results import IterationStats, LPResult
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.graph.partition import balanced_edge_partition
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import Device
from repro.gpusim.timing import transfer_time
from repro.kernels.base import GLP_DEFAULT, KernelContext, StrategyConfig
from repro.kernels.mfl import NO_SCORE
from repro.kernels.propagate import propagate_pass
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


class MultiGPUEngine:
    """Bulk-synchronous LP over several simulated GPUs."""

    def __init__(
        self,
        num_gpus: int = 2,
        *,
        config: StrategyConfig = GLP_DEFAULT,
        spec: DeviceSpec = TITAN_V,
    ) -> None:
        if num_gpus <= 0:
            raise ConvergenceError("num_gpus must be positive")
        self.devices = [Device(spec, index=i) for i in range(num_gpus)]
        self.config = config
        self.name = f"GLP-{num_gpus}GPU"

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        program: LPProgram,
        *,
        max_iterations: int = 20,
        record_history: bool = False,
        stop_on_convergence: bool = True,
    ) -> LPResult:
        if max_iterations <= 0:
            raise ConvergenceError("max_iterations must be positive")
        for device in self.devices:
            device.reset_timing()

        labels = program.init_labels(graph)
        program.init_state(graph, labels)
        validate_program(program, graph, labels)

        parts = balanced_edge_partition(graph, self.num_gpus)
        iterations: List[IterationStats] = []
        history = [] if record_history else None
        converged = False

        for iteration in range(1, max_iterations + 1):
            picked = program.pick_labels(graph, labels, iteration)
            best_labels = picked.astype(LABEL_DTYPE, copy=True)
            best_scores = np.full(
                graph.num_vertices, NO_SCORE, dtype=WEIGHT_DTYPE
            )
            device_seconds = []
            counters_total = PerfCounters()

            for device, part in zip(self.devices, parts):
                kernel_before = device.kernel_seconds
                counters_before = device.counters.copy()
                if part.num_vertices:
                    ctx = KernelContext(
                        device=device,
                        graph=graph,
                        current_labels=picked,
                        program=program,
                        config=self.config,
                    )
                    vertices = np.arange(
                        part.start, part.stop, dtype=np.int64
                    )
                    result = propagate_pass(ctx, vertices=vertices)
                    best_labels[result.vertices] = result.best_labels
                    best_scores[result.vertices] = result.best_scores
                device_seconds.append(device.kernel_seconds - kernel_before)
                counters_total.add(
                    device.counters.delta_since(counters_before)
                )

            all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
            new_labels = program.update_vertices(
                all_vertices, best_labels, best_scores, labels
            )

            # Label exchange: each device broadcasts the *changed* labels of
            # its partition to the peers ((id, label) pairs over PCIe peer
            # copies; peers upload concurrently, so the per-iteration cost
            # is the busiest device's share).
            exchange_seconds = 0.0
            if self.num_gpus > 1:
                changed_mask = new_labels != labels
                per_part_changed = [
                    int(np.count_nonzero(changed_mask[part.start : part.stop]))
                    for part in parts
                ]
                max_changed = max(per_part_changed) if per_part_changed else 0
                exchange_seconds = transfer_time(
                    max_changed * 8, self.devices[0].spec
                ) * (self.num_gpus - 1)
            program.on_iteration_end(graph, labels, new_labels, iteration)
            changed = int(np.count_nonzero(new_labels != labels))
            iteration_converged = program.converged(labels, new_labels, iteration)
            labels = new_labels
            if history is not None:
                history.append(labels.copy())

            seconds = max(device_seconds) + exchange_seconds
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    seconds=seconds,
                    kernel_seconds=max(device_seconds),
                    transfer_seconds=exchange_seconds,
                    changed_vertices=changed,
                    counters=counters_total,
                )
            )
            if iteration_converged and stop_on_convergence:
                converged = True
                break

        return LPResult(
            labels=program.final_labels(labels),
            iterations=iterations,
            converged=converged,
            engine=self.name,
            history=history,
        )
