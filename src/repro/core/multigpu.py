"""Multi-GPU execution (Section 5.4's two-GPU experiment).

Vertices are split into near-equal-edge contiguous ranges, one per device.
Each iteration every device runs the degree-binned kernels over its own
range in parallel; the iteration's kernel time is the *maximum* over
devices (bulk-synchronous).  Afterwards the devices exchange the labels
their partitions updated (peer-to-peer over PCIe), which is the scaling tax
that turns 2 GPUs into ~1.8x rather than 2x.

**Frontier execution.**  With ``frontier="frontier"``/``"auto"`` and a
``frontier_safe`` program, each device tracks its *own partition's* active
frontier: it expands its local changed vertices through the reversed CSR,
keeps the frontier candidates that fall inside its range, and ships the
remote candidates to the owning peers — that frontier exchange is counted
as inter-GPU traffic on top of the label exchange.  The direction-
optimizing switch is made globally (bulk-synchronous rounds must agree on
the pass shape), using the total frontier fraction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.core.api import LPProgram, validate_program
from repro.core.instrument import observe_iteration, observe_run
from repro.core.results import IterationStats, LPResult
from repro.errors import ConvergenceError, DeviceFault
from repro.graph.csr import CSRGraph
from repro.graph.partition import balanced_edge_partition
from repro.gpusim import hooks
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import Device
from repro.gpusim.timing import transfer_time
from repro.kernels.base import ELEM_BYTES, GLP_DEFAULT, KernelContext, StrategyConfig
from repro.kernels.frontier import (
    FrontierConfig,
    coerce_initial_frontier,
    expand_frontier,
    compact_frontier,
    prune_pinned,
    resolve_frontier,
    use_sparse_pass,
)
from repro.kernels.mfl import NO_SCORE
from repro.kernels.propagate import propagate_pass
from repro.kernels.scheduler import bin_vertices_by_degree
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


class MultiGPUEngine:
    """Bulk-synchronous LP over several simulated GPUs."""

    #: Accepts ``initial_frontier=``/``warm_labels=`` for incremental
    #: window slides (see :mod:`repro.pipeline.dynlp`).
    supports_incremental = True
    #: Accepts ``retry_policy``/``checkpoint_dir``/``resume_from``
    #: (see ``docs/resilience.md``); CPU baselines do not.
    supports_recovery = True

    def __init__(
        self,
        num_gpus: int = 2,
        *,
        config: StrategyConfig = GLP_DEFAULT,
        spec: DeviceSpec = TITAN_V,
        frontier: "FrontierConfig | str" = "dense",
    ) -> None:
        if num_gpus <= 0:
            raise ConvergenceError("num_gpus must be positive")
        self.devices = [Device(spec, index=i) for i in range(num_gpus)]
        self.config = config
        self.frontier = resolve_frontier(frontier)
        self.name = f"GLP-{num_gpus}GPU"

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        program: LPProgram,
        *,
        max_iterations: int = 20,
        record_history: bool = False,
        stop_on_convergence: bool = True,
        retry_policy: "Optional[object]" = None,
        checkpoint_dir: Optional[str] = None,
        resume_from: Union[object, str, None] = None,
        initial_frontier: Optional[np.ndarray] = None,
        warm_labels: Optional[np.ndarray] = None,
    ) -> LPResult:
        """Run ``program``; resilience options mirror :meth:`GLPEngine.run`.

        Checkpoints additionally carry the per-partition frontier lists,
        so a resumed sparse round re-executes on every device exactly as
        the uninterrupted run would have.

        ``initial_frontier``/``warm_labels`` mirror :meth:`GLPEngine.run`:
        when the program is frontier-safe and frontier machinery is on,
        iteration 1 runs sparse over the given affected set (split across
        partitions by vertex ownership) instead of the dense full pass.
        """
        if max_iterations <= 0:
            raise ConvergenceError("max_iterations must be positive")
        from repro.core.framework import _coerce_warm_labels
        from repro.resilience.recovery import RecoveryContext

        for device in self.devices:
            device.reset_timing()

        labels = program.init_labels(graph)
        if warm_labels is not None:
            labels = _coerce_warm_labels(warm_labels, graph, labels)
        program.init_state(graph, labels)
        validate_program(program, graph, labels)

        initial: Optional[np.ndarray] = None
        if (
            initial_frontier is not None
            and self.frontier.enabled
            and program.frontier_safe
        ):
            initial = coerce_initial_frontier(
                initial_frontier, graph.num_vertices
            )

        recovery = RecoveryContext.for_run(
            self.name,
            retry_policy=retry_policy,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )
        state: Dict[str, object] = {
            "labels": labels,
            "part_frontiers": None,
            "initial_frontier": initial,
            "iteration": 1,
        }
        iterations: List[IterationStats] = []
        history: Optional[list] = [] if record_history else None
        if recovery is not None:
            ckpt = recovery.resume_checkpoint(graph=graph, program=program)
            if ckpt is not None:
                self._restore(state, program, ckpt)
            else:
                recovery.checkpoint(
                    graph=graph,
                    program=program,
                    iteration=1,
                    labels=labels,
                    engine_state={
                        "part_frontiers": None,
                        "initial_frontier": initial,
                    },
                )
        attempts = 0
        while True:
            attempts += 1
            with obs.correlate(attempt_id=obs.mint_id("attempt")):
                obs.emit(
                    "engine.attempt.start",
                    engine=self.name,
                    attempt=attempts,
                    start_iteration=int(state["iteration"]),
                )
                try:
                    result = self._attempt(
                        graph,
                        program,
                        state,
                        iterations,
                        history,
                        recovery,
                        max_iterations=max_iterations,
                        stop_on_convergence=stop_on_convergence,
                    )
                except DeviceFault as fault:
                    obs.emit(
                        "engine.attempt.fault",
                        engine=self.name,
                        attempt=attempts,
                        kind=fault.kind,
                        transient=fault.transient,
                        iteration=int(state["iteration"]),
                    )
                    if recovery is None:
                        raise
                    ckpt = recovery.on_fault(fault)
                    with recovery.recovery_span(
                        fault, int(state["iteration"])
                    ):
                        self._restore(state, program, ckpt)
                    obs.emit(
                        "recovery.restore",
                        engine=self.name,
                        iteration=int(ckpt.iteration),
                        kind=fault.kind,
                    )
                    continue
                obs.emit(
                    "engine.attempt.end",
                    engine=self.name,
                    attempt=attempts,
                    outcome="ok",
                    iterations=result.num_iterations,
                )
                return result

    @staticmethod
    def _restore(state: Dict[str, object], program: LPProgram, ckpt) -> None:
        """Reset the mutable run state to a checkpoint."""
        ckpt.restore_program(program)
        state["labels"] = ckpt.restored_labels()
        engine_state = ckpt.restored_engine_state()
        state["part_frontiers"] = engine_state.get("part_frontiers")
        state["initial_frontier"] = engine_state.get("initial_frontier")
        state["iteration"] = ckpt.iteration

    def _attempt(
        self,
        graph: CSRGraph,
        program: LPProgram,
        state: Dict[str, object],
        iterations: List[IterationStats],
        history: Optional[list],
        recovery,
        *,
        max_iterations: int,
        stop_on_convergence: bool,
    ) -> LPResult:
        """One execution attempt from the current run state to the end."""
        from repro.core.framework import _resolve_pinned

        labels = state["labels"]
        parts = balanced_edge_partition(graph, self.num_gpus)
        track_frontier = self.frontier.enabled and program.frontier_safe
        reversed_graph = graph.reversed() if track_frontier else None
        # Pinned vertices never change; prune them from sparse frontiers.
        pinned = _resolve_pinned(program, graph) if track_frontier else None

        # Per-partition vertex ranges and their memoized degree bins
        # (degrees are static, so dense rounds never re-bin).
        part_vertices = [
            np.arange(part.start, part.stop, dtype=np.int64) for part in parts
        ]
        part_bins = [
            bin_vertices_by_degree(
                graph,
                low_threshold=self.config.low_threshold,
                high_threshold=self.config.high_threshold,
                vertices=vertices,
            )
            if vertices.size
            else None
            for vertices in part_vertices
        ]
        # Per-partition active frontier; None means "dense round".
        part_frontiers: Optional[List[np.ndarray]] = state["part_frontiers"]

        start_iteration = int(state["iteration"])
        # Incremental start: split the caller's affected set by vertex
        # ownership so iteration 1 runs sparse on every device.  Once the
        # loop checkpoints, ``part_frontiers`` carries the split and a
        # restore re-seeds it without consulting ``initial_frontier``.
        initial: Optional[np.ndarray] = state.get("initial_frontier")
        if (
            track_frontier
            and part_frontiers is None
            and initial is not None
            and start_iteration == 1
        ):
            initial = prune_pinned(initial, pinned)
            part_frontiers = [
                initial[(initial >= part.start) & (initial < part.stop)]
                for part in parts
            ]
        del iterations[start_iteration - 1 :]
        if history is not None:
            del history[start_iteration - 1 :]
        converged = False
        active_tracer = obs.tracer()
        run_started = time.perf_counter() if active_tracer else 0.0

        for iteration in range(start_iteration, max_iterations + 1):
            state["iteration"] = iteration
            if recovery is not None:
                recovery.checkpoint(
                    graph=graph,
                    program=program,
                    iteration=iteration,
                    labels=labels,
                    engine_state={"part_frontiers": part_frontiers},
                )
            iter_started = time.perf_counter() if active_tracer else 0.0
            picked = program.pick_labels(graph, labels, iteration)
            best_labels = picked.astype(LABEL_DTYPE, copy=True)
            best_scores = np.full(
                graph.num_vertices, NO_SCORE, dtype=WEIGHT_DTYPE
            )
            device_seconds = []
            counters_total = PerfCounters()

            sparse = (
                track_frontier
                and part_frontiers is not None
                and use_sparse_pass(
                    self.frontier,
                    sum(f.size for f in part_frontiers),
                    graph.num_vertices,
                )
            )

            processed_vertices = 0
            processed_edges = 0
            for i, (device, part) in enumerate(zip(self.devices, parts)):
                kernel_before = device.kernel_seconds
                counters_before = device.counters.copy()
                vertices = (
                    part_frontiers[i] if sparse else part_vertices[i]
                )
                if vertices.size:
                    ctx = KernelContext(
                        device=device,
                        graph=graph,
                        current_labels=picked,
                        program=program,
                        config=self.config,
                    )
                    if sparse:
                        result = propagate_pass(ctx, vertices)
                    else:
                        result = propagate_pass(
                            ctx, vertices, bins=part_bins[i]
                        )
                    best_labels[result.vertices] = result.best_labels
                    best_scores[result.vertices] = result.best_scores
                    processed_vertices += int(result.vertices.size)
                    processed_edges += int(
                        graph.degrees[result.vertices].sum()
                    )
                device_seconds.append(device.kernel_seconds - kernel_before)
                counters_total.add(
                    device.counters.delta_since(counters_before)
                )

            processed = (
                np.concatenate(part_frontiers)
                if sparse
                else np.arange(graph.num_vertices, dtype=np.int64)
            )
            new_labels = program.update_vertices(
                processed, best_labels[processed], best_scores[processed], labels
            )

            # Label exchange: each device broadcasts the *changed* labels of
            # its partition to the peers ((id, label) pairs over PCIe peer
            # copies; peers upload concurrently, so the per-iteration cost
            # is the busiest device's share).
            changed_mask = new_labels != labels
            exchange_seconds = 0.0
            exchange_bytes = 0
            if self.num_gpus > 1:
                per_part_changed = [
                    int(np.count_nonzero(changed_mask[part.start : part.stop]))
                    for part in parts
                ]
                max_changed = max(per_part_changed) if per_part_changed else 0
                exchange_seconds = transfer_time(
                    max_changed * 8, self.devices[0].spec
                ) * (self.num_gpus - 1)
                exchange_bytes += (
                    sum(per_part_changed) * 8 * (self.num_gpus - 1)
                )

            # Frontier advance: each device expands its own changed range
            # and ships remote frontier candidates to the owning peer —
            # counted as additional inter-GPU traffic.
            if track_frontier:
                part_frontiers = []
                remote_candidate_counts = []
                boundaries = np.array(
                    [part.start for part in parts] + [graph.num_vertices],
                    dtype=np.int64,
                )
                incoming: List[List[np.ndarray]] = [
                    [] for _ in range(self.num_gpus)
                ]
                for i, (device, part) in enumerate(zip(self.devices, parts)):
                    local_changed = np.flatnonzero(
                        changed_mask[part.start : part.stop]
                    ) + part.start
                    candidates = expand_frontier(
                        device, reversed_graph, local_changed
                    )
                    owners = (
                        np.searchsorted(
                            boundaries, candidates, side="right"
                        )
                        - 1
                    )
                    remote = candidates[owners != i]
                    remote_candidate_counts.append(int(remote.size))
                    for j in range(self.num_gpus):
                        chunk = candidates[owners == j]
                        if chunk.size:
                            incoming[j].append(chunk)
                if self.num_gpus > 1 and remote_candidate_counts:
                    exchange_seconds += transfer_time(
                        max(remote_candidate_counts) * ELEM_BYTES,
                        self.devices[0].spec,
                    ) * (self.num_gpus - 1)
                    exchange_bytes += (
                        sum(remote_candidate_counts) * ELEM_BYTES
                    )
                for i, device in enumerate(self.devices):
                    merged = (
                        np.unique(np.concatenate(incoming[i]))
                        if incoming[i]
                        else np.empty(0, dtype=np.int64)
                    )
                    part_frontiers.append(
                        prune_pinned(
                            compact_frontier(
                                device, graph.num_vertices, merged
                            ),
                            pinned,
                        )
                    )

            program.on_iteration_end(graph, labels, new_labels, iteration)
            changed = int(np.count_nonzero(changed_mask))
            iteration_converged = program.converged(labels, new_labels, iteration)
            labels = new_labels
            if history is not None:
                history.append(labels.copy())

            seconds = max(device_seconds) + exchange_seconds
            stats = IterationStats(
                iteration=iteration,
                seconds=seconds,
                kernel_seconds=max(device_seconds),
                transfer_seconds=exchange_seconds,
                changed_vertices=changed,
                counters=counters_total,
                kernel_stats={
                    "pass_mode": "sparse" if sparse else "dense"
                },
                frontier_size=processed_vertices,
                processed_edges=processed_edges,
            )
            iterations.append(stats)
            observe_iteration(
                self.name, stats, graph.num_vertices, track_frontier
            )
            # The exchange is modeled straight on the transfer clock (no
            # DeviceArray ever exists), so the memory tracker is told
            # about the traffic explicitly.
            tracker = hooks.memory()
            if tracker is not None and exchange_bytes:
                tracker.on_exchange(
                    self.devices[0], exchange_bytes, exchange_seconds
                )
            m = obs.metrics()
            if m is not None:
                m.inc(
                    "multigpu_exchange_bytes_total",
                    exchange_bytes,
                    engine=self.name,
                )
                m.observe(
                    "multigpu_exchange_seconds",
                    exchange_seconds,
                    engine=self.name,
                )
            if active_tracer is not None:
                active_tracer.host_event(
                    f"iteration {iteration}",
                    iter_started,
                    cat="engine",
                    args={
                        "modeled_seconds": seconds,
                        "exchange_bytes": exchange_bytes,
                        "changed_vertices": changed,
                    },
                )
            if iteration_converged and stop_on_convergence:
                converged = True
                break

        if active_tracer is not None:
            active_tracer.host_event(
                "multigpu-run",
                run_started,
                cat="engine",
                args={"engine": self.name, "graph": graph.name},
            )
        result = LPResult(
            labels=program.final_labels(labels),
            iterations=iterations,
            converged=converged,
            engine=self.name,
            history=history,
            # Partition frontiers are disjoint (owner-assigned), so the
            # residual frontier is just their sorted union.
            final_frontier=(
                np.unique(np.concatenate(part_frontiers))
                if track_frontier and part_frontiers is not None
                else None
            ),
        )
        observe_run(self.name, result)
        return result
