"""The GLP framework: programmable LP engine and execution modes.

* :mod:`~repro.core.api` — the user-defined hook API of Table 1
  (``PickLabel`` / ``LoadNeighbor`` / ``LabelScore`` / ``UpdateVertex``).
* :mod:`~repro.core.framework` — the bulk-synchronous GLP engine.
* :mod:`~repro.core.hybrid` — CPU-GPU hybrid mode for graphs exceeding
  device memory.
* :mod:`~repro.core.multigpu` — multi-GPU execution.
* :mod:`~repro.core.results` — result containers with timing breakdowns.
"""

from repro.core.api import LPProgram
from repro.core.framework import GLPEngine
from repro.core.results import IterationStats, LPResult

__all__ = ["LPProgram", "GLPEngine", "LPResult", "IterationStats"]
