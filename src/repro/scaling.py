"""Time-scale conventions for the scaled-down reproduction.

The paper's experiments run on graphs of 1e6..1e10 edges, where fixed
per-operation latencies (kernel launches, PCIe round trips, BSP barriers)
are negligible against the bandwidth-bound work.  Our synthetic stand-ins
are ~1000x smaller, so the *same* fixed latencies would dominate every
measurement and bury the bandwidth effects the paper is about.

To keep the modeled regime faithful to the paper's, every fixed latency in
the default specs is multiplied by :data:`TIME_SCALE` (matching the dataset
scale).  Throughput-proportional terms (bytes/bandwidth, edges/rate) need no
scaling — they shrink with the data automatically.

Experiments that want unscaled hardware constants can build specs with
``fixed_latency_scale=1.0``.
"""

#: Dataset scale factor: stand-ins are ~1000x smaller than the paper's
#: graphs, so fixed latencies scale down by the same factor.
TIME_SCALE: float = 1e-3


def scaled_latency(seconds: float, scale: float = TIME_SCALE) -> float:
    """Scale a fixed hardware latency to the reproduction's time scale."""
    return seconds * scale
