"""Exception hierarchy for the GLP reproduction.

Every error raised by the library derives from :class:`GLPError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the failure domain (graph construction, simulated device,
framework configuration, ...).
"""

from __future__ import annotations


class GLPError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(GLPError):
    """Invalid graph input or malformed CSR structure."""


class GraphFormatError(GraphError):
    """A graph file or edge stream could not be parsed."""


class DeviceError(GLPError):
    """Misuse of the simulated GPU device (bad launch, bad handle, ...)."""


class OutOfDeviceMemoryError(DeviceError):
    """An allocation exceeded the simulated device memory capacity."""


class KernelError(DeviceError):
    """A kernel was launched with inconsistent configuration or inputs."""


class SharedMemoryError(KernelError):
    """A thread block requested more shared memory than the device offers."""


class ProgramError(GLPError):
    """An :class:`~repro.core.api.LPProgram` hook violated its contract."""


class ConvergenceError(GLPError):
    """An iterative engine failed to make progress within its budget."""


class PipelineError(GLPError):
    """A fraud-detection pipeline stage received inconsistent inputs."""


class BenchmarkError(GLPError):
    """An experiment definition or sweep configuration is invalid."""


class ObservabilityError(GLPError):
    """Misuse of the tracing / metrics / profiling layer."""
