"""Exception hierarchy for the GLP reproduction.

Every error raised by the library derives from :class:`GLPError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the failure domain (graph construction, simulated device,
framework configuration, ...).
"""

from __future__ import annotations


class GLPError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(GLPError):
    """Invalid graph input or malformed CSR structure."""


class GraphFormatError(GraphError):
    """A graph file or edge stream could not be parsed."""


class DeviceError(GLPError):
    """Misuse of the simulated GPU device (bad launch, bad handle, ...)."""


class OutOfDeviceMemoryError(DeviceError):
    """An allocation exceeded the simulated device memory capacity."""


class DeviceFault(DeviceError):
    """A runtime device fault (injected or detected mid-run).

    ``transient`` faults (PCIe transfer glitches, aborted kernel launches)
    are expected to succeed on re-execution, so engines retry the current
    BSP iteration under their :class:`~repro.resilience.RetryPolicy`.
    Non-transient faults corrupt device-resident state (the injected "ECC"
    label corruption), so recovery must restore the last
    :class:`~repro.resilience.RunCheckpoint` instead of merely retrying.
    """

    #: Whether plain re-execution (no state restore) can succeed.
    transient = False
    #: Short fault-kind tag used by fault plans, metrics and reports.
    kind = "fault"


class TransferFault(DeviceFault):
    """A PCIe transfer (H2D/D2H) failed; the copy can be re-issued."""

    transient = True
    kind = "transfer"


class KernelAbortFault(DeviceFault):
    """A kernel launch aborted; the launch can be re-issued."""

    transient = True
    kind = "kernel"


class EccCorruptionFault(DeviceFault):
    """Detected uncorrectable "ECC" corruption of device-resident labels.

    Device state is suspect: recovery must restore host-side state from
    the last checkpoint rather than retry in place.
    """

    transient = False
    kind = "ecc"


class InjectedOOMFault(OutOfDeviceMemoryError, DeviceFault):
    """An injected device OOM (fault plans: ``oom`` on the nth alloc).

    Derives from :class:`OutOfDeviceMemoryError` so the graceful-
    degradation ladder (``run_auto``, ``SlidingWindowDetector``) treats it
    exactly like a genuine capacity failure: step down GPU -> hybrid ->
    CPU instead of retrying on the same device.
    """

    transient = False
    kind = "oom"


class KernelError(DeviceError):
    """A kernel was launched with inconsistent configuration or inputs."""


class SharedMemoryError(KernelError):
    """A thread block requested more shared memory than the device offers."""


class ProgramError(GLPError):
    """An :class:`~repro.core.api.LPProgram` hook violated its contract."""


class ConvergenceError(GLPError):
    """An iterative engine failed to make progress within its budget."""


class PipelineError(GLPError):
    """A fraud-detection pipeline stage received inconsistent inputs."""


class BenchmarkError(GLPError):
    """An experiment definition or sweep configuration is invalid."""


class ServingError(GLPError):
    """Misuse or misconfiguration of the streaming scoring service."""


class ObservabilityError(GLPError):
    """Misuse of the tracing / metrics / profiling layer."""


class ResilienceError(GLPError):
    """Invalid fault plan, retry policy or recovery configuration."""


class CheckpointError(ResilienceError):
    """A run checkpoint is missing, malformed or does not match the run."""
