"""Streaming scoring service: online serving over the sliding window.

The batch pipeline (:mod:`repro.pipeline`) answers "which users look
fraudulent in this window?"; this package answers it *per transaction,
under a latency SLO, while the window keeps moving*:

* :mod:`repro.serving.loadgen` — deterministic bursty load: seeded
  Poisson score-request arrivals over a millions-of-users universe,
  interleaved with the transaction stream's micro-batches and day-end
  slide markers.
* :mod:`repro.serving.service` — the asyncio :class:`ScoringService`:
  bounded-queue admission control (shed / deadline-expire), window slides
  off the event loop via :class:`~repro.pipeline.incremental.SlidingWindowDetector`
  (DynLP incremental re-convergence plus the degradation ladder), and
  bitwise ``labels_hash`` identity probes against a from-scratch batch
  replay.

``repro serve`` drives the whole thing from the CLI, gated by the SLO
objectives in ``benchmarks/serving_slo.toml``.  See ``docs/serving.md``.
"""

from repro.serving.loadgen import (
    DayEnd,
    Event,
    LoadGenConfig,
    LoadGenerator,
    ScoreRequest,
    TxnBatch,
)
from repro.serving.service import (
    ScoreResponse,
    ScoringService,
    ServeReport,
    batch_labels_hash,
    score_user,
)

__all__ = [
    "DayEnd",
    "Event",
    "LoadGenConfig",
    "LoadGenerator",
    "ScoreRequest",
    "ScoreResponse",
    "ScoringService",
    "ServeReport",
    "TxnBatch",
    "batch_labels_hash",
    "score_user",
]
