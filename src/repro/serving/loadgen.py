"""Deterministic bursty load generation for the scoring service.

The serving layer needs traffic that looks like production — a transaction
stream arriving in micro-batches plus a flood of per-transaction score
requests with diurnal bursts — but is *replayable*: the same seed must
produce the same arrival schedule so soak tests and CI smoke runs are
deterministic.  This module compiles a :class:`~repro.pipeline.transactions.TransactionStream`
plus a :class:`LoadGenConfig` into an explicit event schedule on a virtual
clock:

* each stream day spans ``day_seconds`` of virtual time;
* the day's transactions arrive as ``batches_per_day`` micro-batches
  (:class:`TxnBatch`), closed by a :class:`DayEnd` marker that tells the
  service the window may slide;
* score requests (:class:`ScoreRequest`) arrive as a piecewise-constant
  Poisson process — ``qps * burst_factor`` during the leading
  ``burst_fraction`` of every day, ``qps`` otherwise — sampled with a
  seeded generator;
* requested user ids mix the stream's own users (``hot_fraction``) with a
  much larger synthetic universe (``num_users``, millions by default), so
  the service constantly scores users it has never seen.

The schedule is a plain sorted list; the service replays it either paced
(sleeping to each event's virtual timestamp) or as fast as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.errors import ServingError
from repro.pipeline.transactions import TransactionStream


@dataclass(frozen=True)
class ScoreRequest:
    """One per-transaction score request arriving at virtual time ``t``."""

    t: float
    user: int


@dataclass(frozen=True)
class TxnBatch:
    """A micro-batch of ``count`` transactions of ``day`` hitting ingest."""

    t: float
    day: int
    count: int


@dataclass(frozen=True)
class DayEnd:
    """All of ``day``'s transactions have arrived; the window may slide."""

    t: float
    day: int


Event = Union[ScoreRequest, TxnBatch, DayEnd]

#: Same-timestamp tie-break: transactions land before the day closes, and
#: the day closes before any later score request at the same instant.
_EVENT_ORDER = {TxnBatch: 0, DayEnd: 1, ScoreRequest: 2}


@dataclass(frozen=True)
class LoadGenConfig:
    """Parameters of the synthetic serving load."""

    #: Size of the score-request user universe (not the stream's — the
    #: point is that most requests name users outside any window).
    num_users: int = 2_000_000
    #: Mean score-request rate outside bursts, per virtual second.
    qps: float = 200.0
    #: Virtual seconds spanned by one stream day.
    day_seconds: float = 1.0
    #: Request-rate multiplier inside the burst interval.
    burst_factor: float = 4.0
    #: Leading fraction of each day spent bursting.
    burst_fraction: float = 0.2
    #: Fraction of requests aimed at the stream's (scoreable) users.
    hot_fraction: float = 0.5
    #: Transaction micro-batches per day.
    batches_per_day: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ServingError("load universe must be non-empty")
        if self.qps <= 0 or self.day_seconds <= 0:
            raise ServingError("qps and day_seconds must be positive")
        if self.burst_factor < 1.0:
            raise ServingError("burst_factor must be >= 1")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ServingError("burst_fraction must be in [0, 1)")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ServingError("hot_fraction must be in [0, 1]")
        if self.batches_per_day < 1:
            raise ServingError("batches_per_day must be >= 1")


class LoadGenerator:
    """Compile a deterministic serving-load schedule from a stream."""

    def __init__(
        self,
        stream: TransactionStream,
        config: LoadGenConfig = LoadGenConfig(),
    ) -> None:
        self.stream = stream
        self.config = config

    # ------------------------------------------------------------------
    def expected_qps(self) -> float:
        """Mean request rate over a full day (burst included)."""
        cfg = self.config
        return cfg.qps * (
            cfg.burst_fraction * cfg.burst_factor + (1.0 - cfg.burst_fraction)
        )

    def schedule(self, first_day: int, num_days: int) -> List[Event]:
        """The sorted event schedule of ``num_days`` served days.

        ``first_day`` is the first day the service *ingests* (the day the
        first slide adds); the initial window is built before serving
        starts and does not appear in the schedule.
        """
        cfg = self.config
        if num_days < 1:
            raise ServingError("schedule needs at least one day")
        if first_day + num_days > self.stream.config.num_days:
            raise ServingError(
                f"schedule of days [{first_day}, {first_day + num_days}) "
                f"exceeds the stream ({self.stream.config.num_days} days)"
            )
        rng = np.random.default_rng(cfg.seed)
        events: List[Event] = []
        for i, day in enumerate(range(first_day, first_day + num_days)):
            day_start = i * cfg.day_seconds
            events.extend(self._txn_events(day, day_start))
            events.extend(self._request_events(rng, day_start))
        events.sort(key=lambda e: (e.t, _EVENT_ORDER[type(e)]))
        return events

    # ------------------------------------------------------------------
    def _txn_events(self, day: int, day_start: float) -> List[Event]:
        """Micro-batches spread through the day plus the closing marker."""
        cfg = self.config
        count = int(self.stream.window_transactions(day, 1).size)
        batches = cfg.batches_per_day
        base, extra = divmod(count, batches)
        out: List[Event] = []
        for b in range(batches):
            t = day_start + (b + 1) / (batches + 1) * cfg.day_seconds
            out.append(
                TxnBatch(t=t, day=day, count=base + (1 if b < extra else 0))
            )
        out.append(DayEnd(t=day_start + cfg.day_seconds, day=day))
        return out

    def _request_events(
        self, rng: np.random.Generator, day_start: float
    ) -> List[Event]:
        """Piecewise-constant Poisson arrivals across one day."""
        cfg = self.config
        burst_end = day_start + cfg.burst_fraction * cfg.day_seconds
        day_end = day_start + cfg.day_seconds
        out: List[Event] = []
        t = day_start
        while True:
            rate = cfg.qps * (cfg.burst_factor if t < burst_end else 1.0)
            gap = rng.exponential(1.0 / rate)
            # A gap that jumps the burst boundary is re-drawn at the slow
            # rate from the boundary — the standard piecewise thinning.
            if t < burst_end < t + gap:
                t = burst_end
                continue
            t += gap
            if t >= day_end:
                return out
            if rng.random() < cfg.hot_fraction:
                user = int(rng.integers(0, self.stream.config.num_users))
            else:
                user = int(rng.integers(0, cfg.num_users))
            out.append(ScoreRequest(t=t, user=user))
