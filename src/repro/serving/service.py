"""Asyncio streaming scoring service over the sliding-window detector.

The service turns the batch pipeline into an online system with explicit
latency/consistency semantics:

* **Ingest path** — transaction micro-batches and day-end markers arrive
  through a bounded queue (an awaited ``put``: a slow consumer exerts
  backpressure on the producer instead of buffering unboundedly).  A
  :class:`~repro.serving.loadgen.DayEnd` triggers a window slide through
  :class:`~repro.pipeline.incremental.SlidingWindowDetector` — DynLP
  incremental re-convergence, warm starts and the PR-5 degradation ladder
  all come along for free.  Slides run in a worker thread
  (``overlap_slides=True``) so scoring keeps answering against the
  previous window state mid-slide; the new state is swapped in atomically
  afterwards.

* **Scoring path** — per-transaction score requests are admitted through
  a second bounded queue with ``put_nowait``: when the queue is full the
  request is **shed** immediately (fail fast beats queueing into a blown
  deadline).  Under ``policy="deadline"`` each admitted request also
  carries a deadline checked at dequeue time — requests that aged out in
  the queue are answered ``expired`` without paying for a lookup.  A
  scored response reports the user's window label, whether the user is in
  a flagged cluster, and which window version answered.

* **Consistency probes** — every ``probe_every``-th slide the service
  re-runs the whole history from scratch (cold, non-incremental detector)
  and compares ``labels_hash`` bitwise.  The served incremental state is
  required to be *identical* to the batch recompute, faults and ladder
  degradations included.

Everything is observable through :mod:`repro.obs`: ``serving_*`` metric
families, ``serve.*`` journal events, and the SLO objectives in
``benchmarks/serving_slo.toml``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ServingError
from repro.obs.metrics import Histogram
from repro.pipeline.detector import ClusterDetector, DetectionResult
from repro.pipeline.incremental import SlidingWindowDetector
from repro.pipeline.transactions import TransactionStream
from repro.pipeline.window import WindowGraph
from repro.serving.loadgen import DayEnd, Event, ScoreRequest, TxnBatch
from repro.types import NO_LABEL


@dataclass(frozen=True)
class _LabelState:
    """One immutable served snapshot: the window plus its detection."""

    window: WindowGraph
    labels: np.ndarray
    flagged: frozenset
    start_day: int
    labels_hash: str
    version: int


def score_user(
    window: WindowGraph,
    labels: np.ndarray,
    flagged: frozenset,
    user: int,
) -> Tuple[int, bool]:
    """Pure lookup: a user's window label and flagged verdict.

    Users absent from the window (the overwhelmingly common case — the
    load generator's universe is millions of users, the window holds tens
    of thousands) answer ``(NO_LABEL, False)``.
    """
    vertex = window.window_vertex_of_user(np.asarray([user], dtype=np.int64))
    v = int(vertex[0])
    if v < 0:
        return int(NO_LABEL), False
    return int(labels[v]), int(user) in flagged


@dataclass(frozen=True)
class ScoreResponse:
    """Answer to one score request."""

    user: int
    #: ``scored`` | ``shed`` | ``expired``
    outcome: str
    label: int = int(NO_LABEL)
    flagged: bool = False
    window_start_day: int = -1
    window_version: int = -1
    latency_seconds: float = 0.0


@dataclass
class ServeReport:
    """Aggregate outcome of one :meth:`ScoringService.serve` run."""

    requests_total: int = 0
    scored: int = 0
    shed: int = 0
    expired: int = 0
    flagged_responses: int = 0
    slides: int = 0
    incremental_slides: int = 0
    probes: int = 0
    probe_mismatches: int = 0
    wall_seconds: float = 0.0
    final_labels_hash: str = ""
    final_window_start_day: int = -1
    #: Raw request latencies (bounded ring, exact count/sum).
    latency: Histogram = field(default_factory=Histogram)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests_total if self.requests_total else 0.0

    @property
    def sustained_qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_total / self.wall_seconds

    def as_dict(self) -> dict:
        snap = self.latency.snapshot()
        return {
            "requests_total": self.requests_total,
            "scored": self.scored,
            "shed": self.shed,
            "expired": self.expired,
            "shed_rate": self.shed_rate,
            "flagged_responses": self.flagged_responses,
            "slides": self.slides,
            "incremental_slides": self.incremental_slides,
            "probes": self.probes,
            "probe_mismatches": self.probe_mismatches,
            "wall_seconds": self.wall_seconds,
            "sustained_qps": self.sustained_qps,
            "latency_p50_seconds": snap["p50"],
            "latency_p95_seconds": snap["p95"],
            "latency_p99_seconds": snap["p99"],
            "final_labels_hash": self.final_labels_hash,
            "final_window_start_day": self.final_window_start_day,
        }

    def to_text(self) -> str:
        d = self.as_dict()
        lines = ["serving report", "=============="]
        for key in (
            "requests_total",
            "scored",
            "shed",
            "expired",
            "shed_rate",
            "sustained_qps",
            "latency_p50_seconds",
            "latency_p95_seconds",
            "latency_p99_seconds",
            "slides",
            "incremental_slides",
            "probes",
            "probe_mismatches",
            "final_window_start_day",
            "final_labels_hash",
        ) :
            value = d[key]
            if isinstance(value, float):
                value = f"{value:.6g}"
            lines.append(f"  {key:<24} {value}")
        return "\n".join(lines)


def batch_labels_hash(
    stream: TransactionStream,
    start_day: int,
    window_days: int,
    num_slides: int,
    *,
    max_iterations: int = 20,
    max_hops: Optional[int] = 6,
) -> str:
    """Labels hash of a from-scratch, non-incremental replay.

    The consistency oracle: a cold detector with a fresh engine replays
    ``start`` plus ``num_slides`` slides with no DynLP planning, no warm
    device state and no fault history.  The served incremental state must
    hash identically.
    """
    from repro import GLPEngine

    detector = SlidingWindowDetector(
        stream,
        ClusterDetector(
            GLPEngine(frontier="auto"),
            max_iterations=max_iterations,
            max_hops=max_hops,
        ),
        incremental=False,
    )
    _, result = detector.start(start_day, window_days)
    for _ in range(num_slides):
        _, result = detector.slide()
    return result.lp_result.labels_hash()


class ScoringService:
    """Streaming scoring over a sliding window with admission control.

    Parameters
    ----------
    stream:
        The transaction source shared with the load generator.
    window_days / start_day:
        Geometry of the initial window, built (and cold-detected) by
        :meth:`start` before any traffic is served.
    detector:
        Detection stage; defaults to a frontier-auto :class:`GLPEngine`
        wrapped in a :class:`ClusterDetector`.
    incremental / cutover_ratio / degrade:
        Forwarded to :class:`SlidingWindowDetector` — DynLP O(changes)
        re-convergence and the GPU->hybrid->CPU degradation ladder.
    queue_capacity:
        Bound of the scoring admission queue.  ``put_nowait`` on a full
        queue sheds the request.
    policy:
        ``"deadline"`` answers queued requests older than
        ``deadline_seconds`` with ``expired`` at dequeue; ``"shed"``
        relies on admission shedding alone.
    overlap_slides:
        Run slides in a worker thread so scoring continues against the
        previous window state mid-slide (the production posture).
        ``False`` blocks the loop for strictly serial tests.
    probe_every:
        Every Nth slide, verify the served ``labels_hash`` against a
        from-scratch batch replay (0 disables probing).
    """

    _POLICIES = ("shed", "deadline")
    #: Queue fill fraction above which ``serve.overload`` is journaled.
    OVERLOAD_WATERMARK = 0.8

    def __init__(
        self,
        stream: TransactionStream,
        *,
        window_days: int,
        start_day: int = 0,
        detector: Optional[ClusterDetector] = None,
        incremental: bool = True,
        cutover_ratio: float = 0.2,
        degrade: bool = True,
        queue_capacity: int = 256,
        policy: str = "deadline",
        deadline_seconds: float = 0.05,
        overlap_slides: bool = True,
        probe_every: int = 0,
        max_iterations: int = 20,
        max_hops: Optional[int] = 6,
    ) -> None:
        if window_days < 1:
            raise ServingError("window_days must be >= 1")
        if start_day < 0:
            raise ServingError("start_day must be >= 0")
        if start_day + window_days > stream.config.num_days:
            raise ServingError(
                f"initial window [{start_day}, {start_day + window_days}) "
                f"exceeds the stream ({stream.config.num_days} days)"
            )
        if queue_capacity < 1:
            raise ServingError("queue_capacity must be >= 1")
        if policy not in self._POLICIES:
            raise ServingError(
                f"unknown policy {policy!r}; expected one of {self._POLICIES}"
            )
        if deadline_seconds < 0:
            raise ServingError("deadline_seconds must be >= 0")
        if probe_every < 0:
            raise ServingError("probe_every must be >= 0")
        self.stream = stream
        self.window_days = window_days
        self.start_day = start_day
        self.max_iterations = max_iterations
        self.max_hops = max_hops
        if detector is None:
            from repro import GLPEngine

            detector = ClusterDetector(
                GLPEngine(frontier="auto"),
                max_iterations=max_iterations,
                max_hops=max_hops,
            )
        self.detector = SlidingWindowDetector(
            stream,
            detector,
            incremental=incremental,
            cutover_ratio=cutover_ratio,
            degrade=degrade,
        )
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.deadline_seconds = deadline_seconds
        self.overlap_slides = overlap_slides
        self.probe_every = probe_every
        self._state: Optional[_LabelState] = None
        self._slides_done = 0
        self._report = ServeReport()
        self._queue: asyncio.Queue = asyncio.Queue(queue_capacity)
        self._ingest_queue: asyncio.Queue = asyncio.Queue(
            max(2, queue_capacity)
        )
        self._workers: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> _LabelState:
        if self._state is None:
            raise ServingError("service not started; call start() first")
        return self._state

    def _swap_state(self, window: WindowGraph, result: DetectionResult) -> None:
        version = 0 if self._state is None else self._state.version + 1
        self._state = _LabelState(
            window=window,
            labels=result.lp_result.labels,
            flagged=frozenset(int(u) for u in result.flagged_users()),
            start_day=min(self.detector.builder.days),
            labels_hash=result.lp_result.labels_hash(),
            version=version,
        )

    async def start(self) -> _LabelState:
        """Build the initial window, run the cold detection, go live."""
        if self._state is not None:
            raise ServingError("service already started")
        loop = asyncio.get_running_loop()
        window, result = await loop.run_in_executor(
            None, self.detector.start, self.start_day, self.window_days
        )
        self._swap_state(window, result)
        self._workers = [
            asyncio.create_task(self._score_worker()),
            asyncio.create_task(self._ingest_worker()),
        ]
        obs.emit(
            "serve.start",
            start_day=self.start_day,
            window_days=self.window_days,
            queue_capacity=self.queue_capacity,
            policy=self.policy,
        )
        return self._state

    async def stop(self) -> None:
        """Cancel the background workers (idempotent)."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []

    # ------------------------------------------------------------------
    # Scoring path
    def score_now(self, user: int) -> ScoreResponse:
        """Synchronous lookup against the current state (no admission)."""
        t0 = time.perf_counter()
        state = self.state
        label, flagged = score_user(
            state.window, state.labels, state.flagged, user
        )
        return ScoreResponse(
            user=int(user),
            outcome="scored",
            label=label,
            flagged=flagged,
            window_start_day=state.start_day,
            window_version=state.version,
            latency_seconds=time.perf_counter() - t0,
        )

    def _finish(self, response: ScoreResponse) -> ScoreResponse:
        rep = self._report
        rep.requests_total += 1
        rep.latency.observe(response.latency_seconds)
        if response.outcome == "scored":
            rep.scored += 1
            if response.flagged:
                rep.flagged_responses += 1
        elif response.outcome == "shed":
            rep.shed += 1
        else:
            rep.expired += 1
        m = obs.metrics()
        if m is not None:
            m.inc("serving_requests_total", outcome=response.outcome)
            m.observe(
                "serving_request_latency_seconds", response.latency_seconds
            )
            m.set_gauge("serving_queue_depth", self._queue.qsize())
        return response

    async def score(self, user: int) -> ScoreResponse:
        """Admit one request (or shed it) and await its response."""
        state = self.state  # raises before queueing if not started
        t0 = time.perf_counter()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((t0, int(user), future))
        except asyncio.QueueFull:
            obs.emit("serve.shed", user=int(user), queue=self.queue_capacity)
            future.cancel()
            return self._finish(
                ScoreResponse(
                    user=int(user),
                    outcome="shed",
                    window_version=state.version,
                    latency_seconds=time.perf_counter() - t0,
                )
            )
        depth = self._queue.qsize()
        if depth >= self.OVERLOAD_WATERMARK * self.queue_capacity:
            obs.emit(
                "serve.overload", depth=depth, capacity=self.queue_capacity
            )
        return await future

    async def _score_worker(self) -> None:
        while True:
            t0, user, future = await self._queue.get()
            try:
                if future.cancelled():
                    continue
                waited = time.perf_counter() - t0
                if (
                    self.policy == "deadline"
                    and waited > self.deadline_seconds
                ):
                    response = ScoreResponse(
                        user=user,
                        outcome="expired",
                        window_version=self.state.version,
                        latency_seconds=waited,
                    )
                else:
                    state = self.state
                    label, flagged = score_user(
                        state.window, state.labels, state.flagged, user
                    )
                    response = ScoreResponse(
                        user=user,
                        outcome="scored",
                        label=label,
                        flagged=flagged,
                        window_start_day=state.start_day,
                        window_version=state.version,
                        latency_seconds=time.perf_counter() - t0,
                    )
                future.set_result(self._finish(response))
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # A dead worker would wedge every queued caller behind a
                # never-resolved future; surface the failure to this one
                # request and keep draining.
                if not future.done():
                    future.set_exception(error)
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Ingest path
    async def ingest(self, event: Event) -> None:
        """Feed one transaction-stream event (awaited: backpressure)."""
        await self._ingest_queue.put(event)

    def _slide_sync(self) -> Tuple[WindowGraph, DetectionResult]:
        return self.detector.slide()

    async def _do_slide(self, day: int) -> None:
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        if self.overlap_slides:
            window, result = await loop.run_in_executor(
                None, self._slide_sync
            )
        else:
            window, result = self._slide_sync()
        self._swap_state(window, result)
        self._slides_done += 1
        wall = time.perf_counter() - t0
        rep = self._report
        rep.slides += 1
        plan = self.detector.last_plan
        incremental = bool(plan is not None and plan.incremental)
        if incremental:
            rep.incremental_slides += 1
        m = obs.metrics()
        if m is not None:
            m.inc("serving_slides_total")
            m.observe("serving_slide_wall_seconds", wall)
        obs.emit(
            "serve.slide",
            day=day,
            wall_seconds=wall,
            incremental=incremental,
            labels_hash=self.state.labels_hash,
            version=self.state.version,
        )
        if self.probe_every and self._slides_done % self.probe_every == 0:
            await self._probe(loop)

    async def _probe(self, loop: asyncio.AbstractEventLoop) -> None:
        """Compare the served state to a from-scratch batch replay."""
        expected_hash = self.state.labels_hash
        reference = await loop.run_in_executor(
            None,
            lambda: batch_labels_hash(
                self.stream,
                self.start_day,
                self.window_days,
                self._slides_done,
                max_iterations=self.max_iterations,
                max_hops=self.max_hops,
            ),
        )
        match = reference == expected_hash
        rep = self._report
        rep.probes += 1
        if not match:
            rep.probe_mismatches += 1
        m = obs.metrics()
        if m is not None:
            m.inc(
                "serving_identity_probes_total",
                outcome="match" if match else "mismatch",
            )
        obs.emit(
            "serve.probe",
            slides=self._slides_done,
            served_hash=expected_hash,
            batch_hash=reference,
            match=match,
        )

    async def _ingest_worker(self) -> None:
        pending_txns = 0
        while True:
            event = await self._ingest_queue.get()
            try:
                if isinstance(event, TxnBatch):
                    pending_txns += event.count
                    m = obs.metrics()
                    if m is not None:
                        m.inc("serving_ingest_batches_total")
                elif isinstance(event, DayEnd):
                    # The builder pulls the day's transactions from the
                    # stream itself; the micro-batches are the arrival
                    # model, the marker is the commit point.
                    pending_txns = 0
                    try:
                        await self._do_slide(event.day)
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:
                        # The detector rolled the window back; keep
                        # serving the previous state rather than wedging
                        # the ingest queue behind a dead worker.
                        m = obs.metrics()
                        if m is not None:
                            m.inc("serving_slide_failures_total")
                        obs.emit(
                            "serve.slide",
                            day=event.day,
                            failed=True,
                            error=type(error).__name__,
                        )
            finally:
                self._ingest_queue.task_done()

    # ------------------------------------------------------------------
    async def serve(
        self, events: Sequence[Event], *, pace: bool = False
    ) -> ServeReport:
        """Replay a load schedule to completion and report.

        ``pace=True`` sleeps to each event's virtual timestamp (realistic
        arrival gaps, wall-clock run of roughly the schedule's span);
        ``pace=False`` replays as fast as possible — maximum pressure on
        the admission queue.
        """
        if self._state is None:
            await self.start()
        responses: List[asyncio.Task] = []
        t_start = time.perf_counter()
        try:
            origin = time.perf_counter()
            for event in events:
                if pace:
                    delay = event.t - (time.perf_counter() - origin)
                    if delay > 0:
                        await asyncio.sleep(delay)
                if isinstance(event, ScoreRequest):
                    responses.append(
                        asyncio.create_task(self.score(event.user))
                    )
                    # Yield so the score worker drains between arrivals;
                    # without this an unpaced replay floods the queue and
                    # sheds nearly everything, measuring nothing.
                    await asyncio.sleep(0)
                else:
                    await self.ingest(event)
            if responses:
                await asyncio.gather(*responses)
            await self._queue.join()
            await self._ingest_queue.join()
        finally:
            await self.stop()
        self._report.wall_seconds = time.perf_counter() - t_start
        self._report.final_labels_hash = self.state.labels_hash
        self._report.final_window_start_day = self.state.start_day
        obs.emit(
            "serve.end",
            requests=self._report.requests_total,
            shed=self._report.shed,
            expired=self._report.expired,
            slides=self._report.slides,
            labels_hash=self._report.final_labels_hash,
        )
        return self._report

    @property
    def report(self) -> ServeReport:
        return self._report
