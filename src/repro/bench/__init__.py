"""Benchmark harness: one experiment definition per paper table/figure.

The modules here hold the *logic* of each experiment; the thin
``benchmarks/bench_*.py`` files wire them into pytest-benchmark and write
the rendered reports to ``benchmarks/results/``.

* :mod:`~repro.bench.datasets` — dataset and workload registries.
* :mod:`~repro.bench.runner` — engine construction and sweep helpers.
* :mod:`~repro.bench.report` — text table / bar-series rendering.
* :mod:`~repro.bench.experiments` — ``run_table2`` ... ``run_fig7`` plus
  the theory-validation and pipeline-share experiments.
* :mod:`~repro.bench.baseline` — the standardized scenario suite behind
  ``repro bench run`` / ``repro bench compare`` and the committed
  ``BENCH_<scenario>.json`` regression baselines.
"""

from repro.bench.baseline import (
    SCENARIOS,
    compare_against_baselines,
    compare_payloads,
    run_scenario,
    scenario_names,
    write_baseline,
)
from repro.bench.experiments import (
    run_cost_efficiency,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_pipeline_share,
    run_table2,
    run_table3,
    run_table4,
    run_theory_bounds,
)

__all__ = [
    "SCENARIOS",
    "compare_against_baselines",
    "compare_payloads",
    "run_scenario",
    "scenario_names",
    "write_baseline",
    "run_cost_efficiency",
    "run_table2",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_table3",
    "run_table4",
    "run_fig7",
    "run_pipeline_share",
    "run_theory_bounds",
]
