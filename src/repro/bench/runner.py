"""Engine construction and sweep helpers for the experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines import (
    GHashEngine,
    GSortEngine,
    LigraEngine,
    OMPEngine,
    TigerGraphEngine,
)
from repro.core.api import LPProgram
from repro.core.framework import GLPEngine
from repro.core.results import LPResult
from repro.errors import BenchmarkError
from repro.graph.csr import CSRGraph

#: Factories of the Figure 4-6 comparison approaches, in the paper's order.
APPROACH_FACTORIES: Dict[str, Callable[[], object]] = {
    "TG": TigerGraphEngine,
    "Ligra": LigraEngine,
    "OMP": OMPEngine,
    "G-Sort": GSortEngine,
    "G-Hash": GHashEngine,
    "GLP": GLPEngine,
}

#: Approaches supporting every LP variant (TG is classic-only, as in the
#: paper: "TG only supports the classic LP, we thus omit its results").
VARIANT_APPROACHES: List[str] = ["Ligra", "OMP", "G-Sort", "G-Hash", "GLP"]


@dataclass
class SweepResult:
    """Per-(approach, dataset) seconds-per-iteration plus label checksums."""

    seconds: Dict[str, Dict[str, float]]
    label_checksums: Dict[str, Dict[str, int]]

    def speedups_over(self, baseline: str) -> Dict[str, Dict[str, float]]:
        """``{dataset: {approach: baseline_time / approach_time}}``."""
        result: Dict[str, Dict[str, float]] = {}
        for dataset, per_approach in self.seconds.items():
            base = per_approach.get(baseline)
            if base is None:
                raise BenchmarkError(
                    f"baseline {baseline!r} missing for dataset {dataset!r}"
                )
            result[dataset] = {
                name: base / value for name, value in per_approach.items()
            }
        return result


def run_approach(
    name: str,
    graph: CSRGraph,
    program_factory: Callable[[], LPProgram],
    *,
    max_iterations: int,
) -> LPResult:
    """Build approach ``name`` fresh and run one program on ``graph``."""
    factory = APPROACH_FACTORIES.get(name)
    if factory is None:
        raise BenchmarkError(
            f"unknown approach {name!r}; known: {sorted(APPROACH_FACTORIES)}"
        )
    engine = factory()
    return engine.run(
        graph,
        program_factory(),
        max_iterations=max_iterations,
        stop_on_convergence=False,
    )


def sweep(
    datasets: Dict[str, CSRGraph],
    approaches: List[str],
    program_factory: Callable[[], LPProgram],
    *,
    max_iterations: int,
    check_agreement: bool = True,
) -> SweepResult:
    """Run every approach on every dataset; verify label agreement.

    All engines share the same deterministic MFL semantics, so any label
    disagreement indicates an engine bug — the sweep fails loudly rather
    than report timings for diverged computations.
    """
    seconds: Dict[str, Dict[str, float]] = {}
    checksums: Dict[str, Dict[str, int]] = {}
    for dataset_name, graph in datasets.items():
        seconds[dataset_name] = {}
        checksums[dataset_name] = {}
        reference: Optional[np.ndarray] = None
        for approach in approaches:
            result = run_approach(
                approach, graph, program_factory, max_iterations=max_iterations
            )
            seconds[dataset_name][approach] = result.seconds_per_iteration
            checksums[dataset_name][approach] = int(result.labels.sum())
            if check_agreement:
                if reference is None:
                    reference = result.labels
                elif not np.array_equal(result.labels, reference):
                    raise BenchmarkError(
                        f"approach {approach!r} diverged from the reference "
                        f"labels on dataset {dataset_name!r}"
                    )
    return SweepResult(seconds=seconds, label_checksums=checksums)
