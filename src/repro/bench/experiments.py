"""Experiment definitions: one function per paper table/figure.

Every function returns ``(report_text, data)`` where ``report_text`` is the
rendered table/series (what the paper's table or figure shows) and ``data``
is the raw structure for programmatic checks.  Wall-clock cost is kept
benchmark-friendly by running fewer iterations than the paper's 20 — the
per-iteration metric the paper reports is iteration-count independent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms import ClassicLP, LayeredLP, SeededFraudLP, SpeakerListenerLP
from repro.baselines import InHouseDistributedEngine
from repro.bench import datasets as bench_datasets
from repro.bench.report import format_bar_series, format_table
from repro.bench.runner import (
    APPROACH_FACTORIES,
    VARIANT_APPROACHES,
    SweepResult,
    sweep,
)
from repro.core.framework import GLPEngine
from repro.core.hybrid import HybridEngine, run_auto
from repro.core.multigpu import MultiGPUEngine
from repro.kernels.base import GLOBAL_BASELINE, SMEM_ONLY, SMEM_WARP
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.pipeline import FraudDetectionPipeline
from repro.sketch import theory


def _all_datasets() -> Dict[str, object]:
    return {
        name: bench_datasets.load_dataset(name)
        for name in bench_datasets.dataset_names()
    }


# ----------------------------------------------------------------------
# Table 2 — datasets
# ----------------------------------------------------------------------
def run_table2() -> Tuple[str, List[tuple]]:
    """Dataset shapes: the paper's Table 2 vs our scaled stand-ins."""
    rows = bench_datasets.table2_rows()
    table_rows = [
        (
            name,
            paper_v,
            paper_e,
            round(paper_avg, 1),
            ours_v,
            ours_e,
            round(ours_avg, 1),
        )
        for name, paper_v, paper_e, paper_avg, ours_v, ours_e, ours_avg in rows
    ]
    text = format_table(
        ["dataset", "paper |V|", "paper |E|", "paper avg",
         "ours |V|", "ours |E|", "ours avg"],
        table_rows,
        title="Table 2: datasets (paper vs ~1000x-scaled stand-ins)",
    )
    return text, rows


# ----------------------------------------------------------------------
# Figures 4-6 — speedups over OMP for classic LP / LLP / SLP
# ----------------------------------------------------------------------
def _speedup_report(
    result: SweepResult, title: str
) -> Tuple[str, Dict[str, Dict[str, float]]]:
    speedups = result.speedups_over("OMP")
    text = format_bar_series(speedups, title=title, unit="x")
    glp_vs = {
        "G-Sort": [], "G-Hash": [],
    }
    for per_approach in speedups.values():
        for rival in glp_vs:
            if rival in per_approach:
                glp_vs[rival].append(
                    per_approach["GLP"] / per_approach[rival]
                )
    summary_lines = [
        f"GLP speedup over {rival}: {np.mean(vals):.2f}x on average"
        for rival, vals in glp_vs.items()
        if vals
    ]
    return text + "\n" + "\n".join(summary_lines), speedups


def run_fig4(*, iterations: int = 8) -> Tuple[str, Dict]:
    """Figure 4: classic LP, all six approaches, all eight datasets."""
    result = sweep(
        _all_datasets(),
        list(APPROACH_FACTORIES),
        ClassicLP,
        max_iterations=iterations,
    )
    return _speedup_report(
        result, "Figure 4: speedup over OMP (classic LP)"
    )


def run_fig5(
    *, iterations: int = 5, gammas: Tuple[float, ...] = (1.0, 16.0)
) -> Tuple[str, Dict]:
    """Figure 5: LLP (averaged over the gamma sweep)."""
    datasets = _all_datasets()
    accumulated: Dict[str, Dict[str, float]] = {}
    for gamma in gammas:
        result = sweep(
            datasets,
            VARIANT_APPROACHES,
            lambda gamma=gamma: LayeredLP(gamma=gamma),
            max_iterations=iterations,
        )
        for dataset, per_approach in result.seconds.items():
            slot = accumulated.setdefault(dataset, {})
            for name, value in per_approach.items():
                slot[name] = slot.get(name, 0.0) + value / len(gammas)
    merged = SweepResult(seconds=accumulated, label_checksums={})
    return _speedup_report(
        merged,
        f"Figure 5: speedup over OMP (LLP, gamma in {list(gammas)})",
    )


def run_fig6(*, iterations: int = 5) -> Tuple[str, Dict]:
    """Figure 6: SLP (speaker-listener, <=5 labels per vertex)."""
    result = sweep(
        _all_datasets(),
        VARIANT_APPROACHES,
        lambda: SpeakerListenerLP(max_labels=5, seed=0),
        max_iterations=iterations,
    )
    return _speedup_report(
        result, "Figure 6: speedup over OMP (SLP)"
    )


# ----------------------------------------------------------------------
# Table 3 — ablation of the two optimizations
# ----------------------------------------------------------------------
#: Paper's Table 3 values: dataset -> (smem, smem+warp) speedups.
PAPER_TABLE3 = {
    "dblp": (1.4, 6.1),
    "roadNet": (1.2, 13.2),
    "youtube": (1.6, 8.6),
    "aligraph": (7.4, 10.1),
    "ljournal": (1.7, 3.6),
    "uk-2002": (3.4, 5.6),
    "wiki-en": (2.2, 3.3),
    "twitter": (4.1, 5.6),
}


def run_table3(*, iterations: int = 8) -> Tuple[str, Dict]:
    """Table 3: `smem` and `smem+warp` speedups over `global`."""
    configs = [
        ("global", GLOBAL_BASELINE),
        ("smem", SMEM_ONLY),
        ("smem+warp", SMEM_WARP),
    ]
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in bench_datasets.dataset_names():
        graph = bench_datasets.load_dataset(name)
        seconds = {}
        reference = None
        for label, config in configs:
            engine = GLPEngine(config=config)
            result = engine.run(
                graph,
                ClassicLP(),
                max_iterations=iterations,
                stop_on_convergence=False,
            )
            if reference is None:
                reference = result.labels
            else:
                assert np.array_equal(result.labels, reference)
            seconds[label] = result.seconds_per_iteration
        smem = seconds["global"] / seconds["smem"]
        warp = seconds["global"] / seconds["smem+warp"]
        data[name] = {"smem": smem, "smem+warp": warp}
        paper_smem, paper_warp = PAPER_TABLE3[name]
        rows.append(
            (name, f"{smem:.1f}x", f"{warp:.1f}x",
             f"{paper_smem}x", f"{paper_warp}x")
        )
    text = format_table(
        ["dataset", "smem", "smem+warp", "paper smem", "paper smem+warp"],
        rows,
        title="Table 3: effectiveness of the proposed optimizations "
        "(speedup over `global`)",
    )
    return text, data


# ----------------------------------------------------------------------
# Table 4 — sliding-window workloads
# ----------------------------------------------------------------------
def run_table4() -> Tuple[str, Dict]:
    """Table 4: per-window graph shapes (paper vs ~1e-4-scaled)."""
    rows = []
    data = {}
    for days in bench_datasets.WINDOW_DAYS:
        window = bench_datasets.taobao_window(days)
        paper_v, paper_e = bench_datasets.PAPER_TABLE4[days]
        undirected_edges = window.graph.num_edges // 2
        rows.append(
            (
                f"{days}days",
                f"{paper_v}M",
                f"{paper_e}B",
                window.graph.num_vertices,
                undirected_edges,
            )
        )
        data[days] = (window.graph.num_vertices, undirected_edges)
    text = format_table(
        ["window", "paper |V|", "paper |E|", "ours |V|", "ours |E|"],
        rows,
        title="Table 4: sliding-window workloads (paper vs ~1e-4 scale)",
    )
    return text, data


# ----------------------------------------------------------------------
# Figure 7 — GLP vs the in-house distributed solution
# ----------------------------------------------------------------------
def run_fig7(
    *,
    iterations: int = 10,
    window_days: List[int] = None,
) -> Tuple[str, Dict]:
    """Figure 7: per-iteration elapsed time on the Table 4 windows.

    Compares GLP (auto single-GPU/hybrid), GLP with two GPUs, and the
    in-house distributed baseline, all running the production seeded-LP
    workload.  Also verifies the hybrid-mode claims: the largest window
    exceeds device memory and its visible transfer overhead stays below
    10 % of elapsed time.
    """
    if window_days is None:
        window_days = bench_datasets.WINDOW_DAYS
    spec = bench_datasets.FIG7_DEVICE
    rows = []
    data = {}
    for days in window_days:
        window = bench_datasets.taobao_window(days)
        seeds = bench_datasets.window_seeds(days)

        glp_result, engine = run_auto(
            window.graph,
            SeededFraudLP(seeds),
            spec=spec,
            max_iterations=iterations,
            stop_on_convergence=False,
        )
        dist_result = InHouseDistributedEngine().run(
            window.graph,
            SeededFraudLP(seeds),
            max_iterations=iterations,
            stop_on_convergence=False,
        )
        multi_result = MultiGPUEngine(2, spec=spec).run(
            window.graph,
            SeededFraudLP(seeds),
            max_iterations=iterations,
            stop_on_convergence=False,
        )
        assert np.array_equal(glp_result.labels, dist_result.labels)
        assert np.array_equal(glp_result.labels, multi_result.labels)

        transfer_fraction = None
        if isinstance(engine, HybridEngine) and engine.last_stats:
            transfer_fraction = engine.last_stats.transfer_fraction
        entry = {
            "glp_ms": glp_result.seconds_per_iteration * 1e3,
            "dist_ms": dist_result.seconds_per_iteration * 1e3,
            "multi_ms": multi_result.seconds_per_iteration * 1e3,
            "speedup": (
                dist_result.seconds_per_iteration
                / glp_result.seconds_per_iteration
            ),
            "multi_speedup": (
                glp_result.seconds_per_iteration
                / multi_result.seconds_per_iteration
            ),
            "mode": engine.name,
            "transfer_fraction": transfer_fraction,
        }
        data[days] = entry
        rows.append(
            (
                f"{days}days",
                f"{entry['dist_ms']:.3f}",
                f"{entry['glp_ms']:.3f}",
                f"{entry['multi_ms']:.3f}",
                f"{entry['speedup']:.1f}x",
                f"{entry['multi_speedup']:.2f}x",
                entry["mode"],
                (
                    f"{transfer_fraction:.1%}"
                    if transfer_fraction is not None
                    else "-"
                ),
            )
        )
    avg_speedup = float(np.mean([e["speedup"] for e in data.values()]))
    avg_multi = float(np.mean([e["multi_speedup"] for e in data.values()]))
    text = format_table(
        ["window", "in-house ms/it", "GLP ms/it", "2-GPU ms/it",
         "GLP speedup", "2-GPU gain", "mode", "transfer"],
        rows,
        title="Figure 7: elapsed time per LP iteration "
        "(GLP vs TaoBao in-house distributed)",
    )
    text += (
        f"\naverage GLP speedup over in-house: {avg_speedup:.1f}x "
        f"(paper: 8.2x)"
        f"\naverage 2-GPU gain over 1 GPU:     {avg_multi:.2f}x "
        f"(paper: 1.8x)"
    )
    data["avg_speedup"] = avg_speedup
    data["avg_multi"] = avg_multi
    return text, data


# ----------------------------------------------------------------------
# Section 5.4 prose — LP share of the pipeline
# ----------------------------------------------------------------------
def run_pipeline_share(*, window_days: int = 30) -> Tuple[str, Dict]:
    """The 75 %-of-pipeline claim, and its collapse under GLP."""
    stream = bench_datasets.taobao_stream()
    rows = []
    data = {}
    for label, engine in [
        ("in-house distributed", InHouseDistributedEngine()),
        ("GLP (1 GPU)", GLPEngine()),
    ]:
        detector = ClusterDetector(engine, max_iterations=20, max_hops=6)
        pipeline = FraudDetectionPipeline(stream, detector)
        report = pipeline.run_window(window_days)
        rows.append(
            (
                label,
                f"{report.construction_seconds * 1e3:.2f}",
                f"{report.lp_seconds * 1e3:.2f}",
                f"{report.downstream_seconds * 1e3:.2f}",
                f"{report.lp_fraction:.0%}",
                report.num_fraud_clusters,
                f"{report.metrics.precision:.2f}",
                f"{report.metrics.recall:.2f}",
            )
        )
        data[label] = report
    text = format_table(
        ["engine", "build ms", "LP ms", "downstream ms", "LP share",
         "fraud clusters", "precision", "recall"],
        rows,
        title=f"Pipeline stage shares ({window_days}-day window; "
        "paper: LP = 75% with the in-house engine)",
    )
    return text, data


# ----------------------------------------------------------------------
# Section 5.4 prose — monetary efficiency
# ----------------------------------------------------------------------
#: Hardware list prices the paper quotes (Section 5.4).
HARDWARE_PRICES_USD = {
    "cluster_cpu": 5890,      # Xeon Platinum 8168, x4 per machine
    "cluster_machines": 32,
    "workstation_cpu": 617,   # Xeon W-2133
    "gpu": 2999,              # Titan V
}


def run_cost_efficiency(
    *, iterations: int = 10, window_days: int = 50
) -> Tuple[str, Dict]:
    """The paper's monetary argument, with measured throughput attached.

    Paper: the in-house solution's CPUs cost ``5890 * 4 = $23,560`` per
    machine (x32 machines); the GLP box costs ``617 + 2999 = $3,616``.
    We add the measured per-iteration throughput to get edges/second/dollar.
    """
    prices = HARDWARE_PRICES_USD
    cluster_cost = prices["cluster_cpu"] * 4 * prices["cluster_machines"]
    glp_cost = prices["workstation_cpu"] + prices["gpu"]

    window = bench_datasets.taobao_window(window_days)
    seeds = bench_datasets.window_seeds(window_days)
    glp = GLPEngine().run(
        window.graph, SeededFraudLP(seeds), max_iterations=iterations,
        stop_on_convergence=False,
    )
    dist = InHouseDistributedEngine().run(
        window.graph, SeededFraudLP(seeds), max_iterations=iterations,
        stop_on_convergence=False,
    )
    edges = window.graph.num_edges
    glp_throughput = edges / glp.seconds_per_iteration
    dist_throughput = edges / dist.seconds_per_iteration
    rows = [
        (
            "in-house (32 machines)",
            f"${cluster_cost:,}",
            f"{dist_throughput / 1e9:.2f}",
            f"{dist_throughput / cluster_cost / 1e6:.2f}",
        ),
        (
            "GLP (1 CPU + 1 GPU)",
            f"${glp_cost:,}",
            f"{glp_throughput / 1e9:.2f}",
            f"{glp_throughput / glp_cost / 1e6:.2f}",
        ),
    ]
    text = format_table(
        ["deployment", "hardware cost", "Gedges/s", "Medges/s per $"],
        rows,
        title=f"Section 5.4 monetary efficiency ({window_days}-day window)",
    )
    cost_ratio = cluster_cost / glp_cost
    perf_per_dollar_ratio = (glp_throughput / glp_cost) / (
        dist_throughput / cluster_cost
    )
    text += (
        f"\nhardware cost ratio: {cost_ratio:.1f}x "
        f"(paper: $753,920 vs $3,616 = 208x)"
        f"\nthroughput-per-dollar advantage of GLP: "
        f"{perf_per_dollar_ratio:.0f}x"
    )
    data = {
        "cluster_cost": cluster_cost,
        "glp_cost": glp_cost,
        "cost_ratio": cost_ratio,
        "glp_throughput": glp_throughput,
        "dist_throughput": dist_throughput,
        "perf_per_dollar_ratio": perf_per_dollar_ratio,
    }
    return text, data


# ----------------------------------------------------------------------
# Section 4.1 — theory validation
# ----------------------------------------------------------------------
def run_theory_bounds(*, trials: int = 400) -> Tuple[str, Dict]:
    """Lemma 1 / Lemma 2 bounds vs Monte-Carlo measurements."""
    rows = []
    data = {"lemma1": [], "lemma2": []}
    for m, h, f_max in [
        (64, 16, 9),
        (128, 32, 17),
        (256, 32, 65),
        (512, 64, 129),
        (1024, 128, 257),
    ]:
        bound = theory.lemma1_bound(m, h, f_max)
        exact = theory.lemma1_exact(m, h, f_max)
        measured = theory.simulate_mfl_misses_ht(
            m, h, f_max, trials=trials
        )
        data["lemma1"].append((m, h, f_max, bound, exact, measured))
        rows.append(
            ("Lemma1", f"m={m} h={h} fmax={f_max}",
             f"{bound:.4f}", f"{exact:.4f}", f"{measured:.4f}")
        )
    # Depths chosen so the m * 2^-d bound is informative (below 1).
    for m, d in [(8, 6), (16, 8), (32, 8), (64, 8)]:
        bound = theory.lemma2_bound(m, d)
        measured = theory.simulate_cms_overestimates(
            m, d, f_max=1, trials=max(100, trials // 2)
        )
        data["lemma2"].append((m, d, bound, measured))
        rows.append(
            ("Lemma2", f"m={m} d={d}", f"{bound:.4f}", "-", f"{measured:.4f}")
        )
    text = format_table(
        ["lemma", "parameters", "bound", "exact", "measured"],
        rows,
        title="Section 4.1 theory: analytical bounds vs Monte-Carlo "
        "(measured <= exact <= bound expected)",
    )
    return text, data
