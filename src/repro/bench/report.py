"""Rendering and persistence of experiment results.

Text rendering (tables and bar series) plus the one shared serializer
every ``benchmarks/bench_*.py`` goes through: :func:`write_report`
persists the rendered ``.txt`` **and** a machine-readable ``.json``
sidecar with the experiment's raw data, so downstream tooling (the
regression baselines, EXPERIMENTS.md generators, plots) never has to
re-parse text tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(cell.rjust(w) for cell, w in zip(cells[0], widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_bar_series(
    series: Dict[str, Dict[str, float]],
    *,
    title: Optional[str] = None,
    unit: str = "x",
    width: int = 40,
) -> str:
    """Render grouped horizontal bars: ``{group: {name: value}}``.

    Used for the figure reproductions: each group is a dataset, each bar an
    approach's speedup.
    """
    flat = [v for group in series.values() for v in group.values()]
    max_value = max(flat) if flat else 1.0
    name_width = max(
        (len(name) for group in series.values() for name in group),
        default=4,
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group_name, group in series.items():
        lines.append(f"{group_name}:")
        for name, value in group.items():
            bar = "#" * max(1, int(round(width * value / max_value)))
            lines.append(
                f"  {name.ljust(name_width)} {value:8.2f}{unit} {bar}"
            )
    return "\n".join(lines)


def write_report(directory, name: str, text: str, data=None):
    """Persist one experiment report: ``<name>.txt`` (+ ``.json`` sidecar).

    ``data`` is the experiment's raw result structure (rows, series,
    dicts ...); anything JSON-hostile inside (numpy scalars/arrays,
    tuples, dataclass-free objects) is coerced by :func:`_jsonable`.
    Returns the paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    txt_path = directory / f"{name}.txt"
    txt_path.write_text(text + "\n")
    paths = [txt_path]
    if data is not None:
        json_path = directory / f"{name}.json"
        json_path.write_text(
            json.dumps(_jsonable(data), indent=2, sort_keys=True) + "\n"
        )
        paths.append(json_path)
    return paths


def _jsonable(value):
    """Coerce an experiment result structure into JSON-clean types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):
        # numpy array
        return value.tolist()
    if hasattr(value, "as_dict"):
        return _jsonable(value.as_dict())
    return str(value)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
