"""Plain-text rendering of experiment results (tables and bar series)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(cell.rjust(w) for cell, w in zip(cells[0], widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_bar_series(
    series: Dict[str, Dict[str, float]],
    *,
    title: Optional[str] = None,
    unit: str = "x",
    width: int = 40,
) -> str:
    """Render grouped horizontal bars: ``{group: {name: value}}``.

    Used for the figure reproductions: each group is a dataset, each bar an
    approach's speedup.
    """
    flat = [v for group in series.values() for v in group.values()]
    max_value = max(flat) if flat else 1.0
    name_width = max(
        (len(name) for group in series.values() for name in group),
        default=4,
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group_name, group in series.items():
        lines.append(f"{group_name}:")
        for name, value in group.items():
            bar = "#" * max(1, int(round(width * value / max_value)))
            lines.append(
                f"  {name.ljust(name_width)} {value:8.2f}{unit} {bar}"
            )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
