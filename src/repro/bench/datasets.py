"""Workload registries for the benchmark harness.

Two workload families:

* the eight Table 2 dataset stand-ins (re-exported from
  :mod:`repro.graph.generators.datasets`), and
* the Table 4 sliding-window workloads, built once from a shared
  transaction stream and cached for the session.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.graph.generators.datasets import (  # noqa: F401 (re-export)
    DATASETS,
    dataset_names,
    load_dataset,
    table2_rows,
)
from repro.pipeline.transactions import TransactionStream, TransactionStreamConfig
from repro.pipeline.window import WindowGraph, build_window_graph

#: The Table 4 window lengths, in days.
WINDOW_DAYS: List[int] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]

#: Paper's Table 4 shapes: days -> (V millions, E billions).
PAPER_TABLE4: Dict[int, Tuple[int, float]] = {
    10: (460, 1.7),
    20: (630, 3.0),
    30: (700, 4.3),
    40: (770, 5.5),
    50: (820, 6.7),
    60: (880, 7.8),
    70: (920, 8.9),
    80: (970, 9.8),
    90: (990, 10.2),
    100: (1010, 10.7),
}

#: Device used for the Figure 7 experiments: a Titan V whose memory is
#: scaled with the ~1e-4 window workloads so the largest window exceeds
#: capacity and GLP switches to the CPU-GPU hybrid mode, as in the paper.
FIG7_DEVICE: DeviceSpec = TITAN_V.with_memory(46 * 1024 * 1024)

_STREAM: TransactionStream = None
_WINDOWS: Dict[int, WindowGraph] = {}


def taobao_stream() -> TransactionStream:
    """The session-cached synthetic TaoBao transaction stream."""
    global _STREAM
    if _STREAM is None:
        _STREAM = TransactionStream(TransactionStreamConfig(num_days=100))
    return _STREAM


def taobao_window(days: int) -> WindowGraph:
    """The most recent ``days``-day window graph (cached)."""
    if days not in _WINDOWS:
        stream = taobao_stream()
        _WINDOWS[days] = build_window_graph(
            stream, stream.config.num_days - days, days
        )
    return _WINDOWS[days]


def window_seeds(days: int) -> Dict[int, int]:
    """The black-list seeds translated to the window's vertex ids."""
    import numpy as np

    stream = taobao_stream()
    window = taobao_window(days)
    raw = stream.blacklist()
    users = np.fromiter(raw.keys(), dtype=np.int64, count=len(raw))
    labels = np.fromiter(raw.values(), dtype=np.int64, count=len(raw))
    vertices = window.window_vertex_of_user(users)
    present = vertices >= 0
    return {
        int(v): int(l) for v, l in zip(vertices[present], labels[present])
    }


def clear_caches() -> None:
    """Drop the cached stream and windows (tests use this)."""
    global _STREAM
    _STREAM = None
    _WINDOWS.clear()
