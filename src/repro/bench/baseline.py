"""Machine-readable benchmark baselines with tolerance-banded regression gating.

The regression contract has three parts:

1. a **scenario registry** — standardized runs spanning the execution
   modes that matter for the Section 4/5 claims: dense vs frontier
   dispatch, the classic/LLP/SLP variants, single-GPU vs CPU-GPU hybrid
   vs multi-GPU engines, and the warm-started sliding-window serving
   loop;
2. a **serializer** — every scenario reduces to a flat JSON payload
   (modeled seconds, iteration counts, key counters, labels hash, and
   the advisor's per-kernel verdicts) written to ``BENCH_<scenario>.json``
   at the repo root, which is committed as the performance trajectory;
3. a **comparator** — ``repro bench compare`` re-runs the scenarios and
   diffs the fresh payloads against the committed baselines under the
   per-field tolerance bands of ``benchmarks/baseline_config.toml``,
   exiting non-zero and naming the offending fields on regression.

The simulator is deterministic, so labels hashes and counters must match
*exactly*; modeled seconds get a small relative band so that honest
timing-model refinements do not require a baseline refresh ceremony for
sub-percent drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import BenchmarkError
from repro.obs.advisor import AdvisorReport

#: Bump when payload fields change incompatibly.
SCHEMA_VERSION = 1

#: Baseline filename pattern at the repo root.
BASELINE_PREFIX = "BENCH_"

#: Fields compared bit-for-bit (the simulator is deterministic).
EXACT_FIELDS = (
    "schema_version",
    "scenario",
    "engine",
    "algorithm",
    "dataset",
    "num_vertices",
    "num_edges",
    "iterations",
    "converged",
    "labels_hash",
    "num_communities",
)

#: Modeled-time fields compared under ``rel_tol_seconds``.
SECONDS_FIELDS = ("total_seconds", "seconds_per_iteration")

#: Counter keys serialized into every payload (compared under
#: ``rel_tol_counters``; ratios under ``rel_tol_ratio``).
COUNTER_FIELDS = (
    "global_transactions",
    "global_atomic_serialized_ops",
    "shared_atomic_serialized_ops",
    "shared_bank_conflicts",
    "h2d_bytes",
    "d2h_bytes",
)
RATIO_COUNTER_FIELDS = ("lane_utilization",)


@dataclass(frozen=True)
class Scenario:
    """One standardized benchmark scenario."""

    name: str
    description: str
    run: Callable[[], dict]


# ----------------------------------------------------------------------
# Payload construction
# ----------------------------------------------------------------------
def result_payload(
    scenario: str,
    result,
    graph,
    engine,
    *,
    algorithm: str,
    extra: Optional[dict] = None,
) -> dict:
    """Serialize one LP run into the flat baseline payload."""
    counters = result.total_counters
    advisor = AdvisorReport.from_engine(engine)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario,
        "engine": result.engine,
        "algorithm": algorithm,
        "dataset": graph.name,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "iterations": result.num_iterations,
        "converged": bool(result.converged),
        "labels_hash": result.labels_hash(),
        "num_communities": int(np.unique(result.labels).size),
        "total_seconds": float(result.total_seconds),
        "seconds_per_iteration": float(result.seconds_per_iteration),
        "counters": {
            "global_transactions": int(counters.global_transactions),
            "global_atomic_serialized_ops": int(
                counters.global_atomic_serialized_ops
            ),
            "shared_atomic_serialized_ops": int(
                counters.shared_atomic_serialized_ops
            ),
            "shared_bank_conflicts": int(counters.shared_bank_conflicts),
            "lane_utilization": float(counters.lane_utilization),
            # Transfer bytes come from the device-level summary: the
            # one-time graph upload happens outside the iteration loop,
            # so result.total_counters does not see it.
            "h2d_bytes": int(advisor.transfer_summary["h2d"]["bytes"]),
            "d2h_bytes": int(advisor.transfer_summary["d2h"]["bytes"]),
        },
        "advisor": {
            "verdicts": advisor.verdicts(),
            "transfer_fraction": float(advisor.transfer_fraction),
        },
    }
    if extra:
        payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# The scenario suite
# ----------------------------------------------------------------------
def _run_dense_classic() -> dict:
    from repro.algorithms import ClassicLP
    from repro.bench.datasets import load_dataset
    from repro.core.framework import GLPEngine

    graph = load_dataset("dblp")
    engine = GLPEngine()
    result = engine.run(
        graph, ClassicLP(), max_iterations=10, stop_on_convergence=False
    )
    return result_payload(
        "dense_classic", result, graph, engine, algorithm="classic"
    )


def _run_frontier_classic() -> dict:
    from repro.algorithms import ClassicLP
    from repro.bench.datasets import load_dataset
    from repro.core.framework import GLPEngine

    graph = load_dataset("youtube")
    engine = GLPEngine(frontier="auto")
    result = engine.run(
        graph, ClassicLP(), max_iterations=10, stop_on_convergence=False
    )
    sparse_passes = sum(
        1
        for stats in result.iterations
        if stats.kernel_stats.get("pass_mode") == "sparse"
    )
    return result_payload(
        "frontier_classic",
        result,
        graph,
        engine,
        algorithm="classic",
        extra={"sparse_passes": sparse_passes},
    )


def _run_dense_llp() -> dict:
    from repro.algorithms import LayeredLP
    from repro.bench.datasets import load_dataset
    from repro.core.framework import GLPEngine

    graph = load_dataset("dblp")
    engine = GLPEngine()
    result = engine.run(
        graph,
        LayeredLP(gamma=1.0),
        max_iterations=8,
        stop_on_convergence=False,
    )
    return result_payload(
        "dense_llp", result, graph, engine, algorithm="llp"
    )


def _run_dense_slp() -> dict:
    from repro.algorithms import SpeakerListenerLP
    from repro.bench.datasets import load_dataset
    from repro.core.framework import GLPEngine

    graph = load_dataset("dblp")
    engine = GLPEngine()
    result = engine.run(
        graph,
        SpeakerListenerLP(max_labels=5, seed=0),
        max_iterations=8,
        stop_on_convergence=False,
    )
    return result_payload(
        "dense_slp", result, graph, engine, algorithm="slp"
    )


def _run_hybrid_window() -> dict:
    from repro.algorithms import SeededFraudLP
    from repro.bench import datasets as bench_datasets
    from repro.core.hybrid import run_auto

    window = bench_datasets.taobao_window(100)
    seeds = bench_datasets.window_seeds(100)
    result, engine = run_auto(
        window.graph,
        SeededFraudLP(seeds),
        spec=bench_datasets.FIG7_DEVICE,
        max_iterations=5,
        stop_on_convergence=False,
    )
    if engine.name != "GLP-Hybrid":
        raise BenchmarkError(
            "hybrid_window scenario expected the hybrid engine, got "
            f"{engine.name!r} — did the FIG7 device memory change?"
        )
    return result_payload(
        "hybrid_window",
        result,
        window.graph,
        engine,
        algorithm="seeded",
        extra={
            "mode": engine.name,
            "transfer_fraction_hybrid": (
                float(engine.last_stats.transfer_fraction)
                if engine.last_stats
                else None
            ),
        },
    )


def _run_multigpu_window() -> dict:
    from repro.algorithms import SeededFraudLP
    from repro.bench import datasets as bench_datasets
    from repro.core.multigpu import MultiGPUEngine

    window = bench_datasets.taobao_window(50)
    seeds = bench_datasets.window_seeds(50)
    engine = MultiGPUEngine(2, spec=bench_datasets.FIG7_DEVICE)
    result = engine.run(
        window.graph,
        SeededFraudLP(seeds),
        max_iterations=5,
        stop_on_convergence=False,
    )
    return result_payload(
        "multigpu_window",
        result,
        window.graph,
        engine,
        algorithm="seeded",
        extra={"num_gpus": engine.num_gpus},
    )


def _run_warm_windows() -> dict:
    from repro.core.framework import GLPEngine
    from repro.pipeline import (
        ClusterDetector,
        SlidingWindowDetector,
        TransactionStream,
        TransactionStreamConfig,
    )

    stream = TransactionStream(
        TransactionStreamConfig(num_days=16, seed=7)
    )
    engine = GLPEngine(frontier="auto")
    detector = ClusterDetector(engine, max_iterations=12, max_hops=6)
    sliding = SlidingWindowDetector(stream, detector)
    window, detection = sliding.start(0, 10)
    for _ in range(2):
        window, detection = sliding.slide()
    # The payload captures the steady-state (warm-started) serving run.
    return result_payload(
        "warm_windows",
        detection.lp_result,
        window.graph,
        engine,
        algorithm="seeded",
        extra={"num_clusters": len(detection.clusters)},
    )


def _run_warm_windows_incremental() -> dict:
    from repro.core.framework import GLPEngine
    from repro.pipeline import (
        ClusterDetector,
        SlidingWindowDetector,
        TransactionStream,
        TransactionStreamConfig,
    )

    num_slides = 2

    def serve(incremental: bool):
        stream = TransactionStream(
            TransactionStreamConfig(num_days=16, seed=7)
        )
        engine = GLPEngine(frontier="auto")
        detector = ClusterDetector(engine, max_iterations=12, max_hops=6)
        sliding = SlidingWindowDetector(
            stream, detector, incremental=incremental
        )
        sliding.start(0, 10)
        slides = []
        for _ in range(num_slides):
            window, detection = sliding.slide()
            slides.append(
                (window, detection, sliding.last_plan,
                 sliding.builder.last_diff)
            )
        return engine, slides

    _, full_slides = serve(incremental=False)
    inc_engine, inc_slides = serve(incremental=True)

    full_edges = inc_edges = 0
    full_seconds = inc_seconds = 0.0
    affected = diff_pairs = 0
    identical = True
    for (_, full_det, _, _), (inc_win, inc_det, plan, diff) in zip(
        full_slides, inc_slides
    ):
        if not plan.incremental:
            raise BenchmarkError(
                f"warm_windows_incremental: slide planned "
                f"{plan.mode}/{plan.reason}, expected incremental"
            )
        if (
            full_det.lp_result.labels_hash()
            != inc_det.lp_result.labels_hash()
        ):
            raise BenchmarkError(
                "warm_windows_incremental: incremental labels diverged "
                f"from the full recompute on {inc_win.graph.name}"
            )
        full_edges += sum(
            s.processed_edges for s in full_det.lp_result.iterations
        )
        inc_edges += sum(
            s.processed_edges for s in inc_det.lp_result.iterations
        )
        full_seconds += full_det.lp_result.total_seconds
        inc_seconds += inc_det.lp_result.total_seconds
        affected += plan.num_affected
        diff_pairs += diff.num_changed
    ratio = full_edges / max(1, inc_edges)
    if ratio < 5.0:
        raise BenchmarkError(
            f"warm_windows_incremental: processed-edge ratio {ratio:.2f} "
            "below the 5x gate"
        )
    if inc_seconds >= full_seconds:
        raise BenchmarkError(
            "warm_windows_incremental: incremental modeled seconds "
            f"({inc_seconds:.3e}) not below full recompute "
            f"({full_seconds:.3e})"
        )
    window, detection, plan, _ = inc_slides[-1]
    return result_payload(
        "warm_windows_incremental",
        detection.lp_result,
        window.graph,
        inc_engine,
        algorithm="seeded",
        extra={
            "mode": "incremental",
            "num_slides": num_slides,
            "full_processed_edges": int(full_edges),
            "incremental_processed_edges": int(inc_edges),
            "processed_edges_ratio": float(ratio),
            "full_total_seconds": float(full_seconds),
            "incremental_total_seconds": float(inc_seconds),
            "identical_to_full": identical,
            "affected_vertices": int(affected),
            "diff_pairs": int(diff_pairs),
            "num_clusters": len(detection.clusters),
        },
    )


SCENARIOS: List[Scenario] = [
    Scenario(
        "dense_classic",
        "classic LP, dense degree-binned pass, single GPU (dblp)",
        _run_dense_classic,
    ),
    Scenario(
        "frontier_classic",
        "classic LP under direction-optimizing frontier dispatch (youtube)",
        _run_frontier_classic,
    ),
    Scenario(
        "dense_llp",
        "layered LP (gamma=1), dense pass, single GPU (dblp)",
        _run_dense_llp,
    ),
    Scenario(
        "dense_slp",
        "speaker-listener LP, dense pass, single GPU (dblp)",
        _run_dense_slp,
    ),
    Scenario(
        "hybrid_window",
        "seeded LP on the 100-day window in CPU-GPU hybrid mode",
        _run_hybrid_window,
    ),
    Scenario(
        "multigpu_window",
        "seeded LP on the 50-day window across 2 simulated GPUs",
        _run_multigpu_window,
    ),
    Scenario(
        "warm_windows",
        "warm-started sliding-window serving loop (frontier engine)",
        _run_warm_windows,
    ),
    Scenario(
        "warm_windows_incremental",
        "incremental (DynLP-style) window slides vs full warm recompute",
        _run_warm_windows_incremental,
    ),
]

_BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


def scenario_names() -> List[str]:
    return [scenario.name for scenario in SCENARIOS]


def get_scenario(name: str) -> Scenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def run_scenario(name: str, *, mem_profile: bool = False) -> dict:
    """Run one registered scenario and return its baseline payload.

    With ``mem_profile`` the run executes under the device-memory
    tracker and the payload gains a ``memory`` block: reconciliation
    status, the planner-accuracy rows (``device_footprint`` predictions
    vs measured peaks) and any ``memory-planner-*`` findings.  The block
    is additive — :func:`compare_payloads` only diffs the known fields,
    so profiled and unprofiled payloads gate identically.
    """
    scenario = get_scenario(name)
    if not mem_profile:
        return scenario.run()
    from repro.obs.memory import track

    with track() as tracker:
        payload = scenario.run()
        report = tracker.report()
    payload["memory"] = {
        "reconciled": report["reconciled"],
        "planner": report["planner"],
        "findings": report["analysis"]["findings"],
    }
    return payload


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def baseline_path(directory, name: str) -> Path:
    return Path(directory) / f"{BASELINE_PREFIX}{name}.json"


def write_baseline(directory, payload: dict) -> Path:
    path = baseline_path(directory, payload["scenario"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(directory, name: str) -> dict:
    path = baseline_path(directory, name)
    if not path.exists():
        raise BenchmarkError(
            f"no committed baseline {path} — run "
            f"`repro bench run --update-baselines` and commit the file"
        )
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Tolerance configuration
# ----------------------------------------------------------------------
DEFAULT_TOLERANCES = {
    "rel_tol_seconds": 0.05,
    "rel_tol_counters": 0.02,
    "rel_tol_ratio": 0.05,
}


def _parse_toml_minimal(text: str) -> dict:
    """Tiny TOML-subset parser for pre-3.11 interpreters (no tomllib).

    Supports ``[section]`` / ``[a.b]`` headers and ``key = value`` lines
    with float/int/bool/string scalars — exactly the shape of
    ``benchmarks/baseline_config.toml``.
    """
    doc: dict = {}
    table = doc
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = doc
            for part in line[1:-1].strip().split("."):
                table = table.setdefault(part.strip(), {})
            continue
        if "=" not in line:
            raise BenchmarkError(f"unparseable config line: {raw!r}")
        key, value = (s.strip() for s in line.split("=", 1))
        if value.startswith(("'", '"')) and value.endswith(value[0]):
            table[key] = value[1:-1]
        elif value in ("true", "false"):
            table[key] = value == "true"
        else:
            try:
                table[key] = int(value)
            except ValueError:
                try:
                    table[key] = float(value)
                except ValueError:
                    raise BenchmarkError(
                        f"unparseable config value: {raw!r}"
                    ) from None
    return doc


def load_tolerance_config(path=None) -> dict:
    """Load ``baseline_config.toml`` (missing file → defaults only)."""
    if path is None:
        return {"default": dict(DEFAULT_TOLERANCES)}
    path = Path(path)
    if not path.exists():
        raise BenchmarkError(f"tolerance config {path} does not exist")
    text = path.read_text()
    try:
        import tomllib

        doc = tomllib.loads(text)
    except ModuleNotFoundError:
        doc = _parse_toml_minimal(text)
    doc.setdefault("default", {})
    for key, value in DEFAULT_TOLERANCES.items():
        doc["default"].setdefault(key, value)
    return doc


def tolerances_for(config: dict, scenario: str) -> dict:
    """The effective tolerance band for one scenario."""
    merged = dict(DEFAULT_TOLERANCES)
    merged.update(config.get("default", {}))
    merged.update(config.get("scenarios", {}).get(scenario, {}))
    return merged


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _rel_violation(
    field: str, base, fresh, rel_tol: float, *, floor: float = 0.0
) -> Optional[str]:
    base = float(base)
    fresh = float(fresh)
    allowed = rel_tol * max(abs(base), floor)
    if abs(fresh - base) > allowed:
        return (
            f"{field}: baseline={base:.6g} fresh={fresh:.6g} "
            f"(|delta|={abs(fresh - base):.3g} exceeds ±{rel_tol:.1%} band)"
        )
    return None


def compare_payloads(
    baseline: dict, fresh: dict, tolerances: dict
) -> List[str]:
    """Diff a fresh payload against a committed baseline.

    Returns a list of human-readable violations, each naming the
    offending field; an empty list means the scenario passed.
    """
    violations: List[str] = []
    for key in EXACT_FIELDS:
        if baseline.get(key) != fresh.get(key):
            violations.append(
                f"{key}: baseline={baseline.get(key)!r} "
                f"fresh={fresh.get(key)!r} (exact-match field)"
            )
    rel_seconds = tolerances["rel_tol_seconds"]
    for key in SECONDS_FIELDS:
        v = _rel_violation(
            key, baseline.get(key, 0.0), fresh.get(key, 0.0), rel_seconds
        )
        if v:
            violations.append(v)
    base_counters = baseline.get("counters", {})
    fresh_counters = fresh.get("counters", {})
    rel_counters = tolerances["rel_tol_counters"]
    for key in COUNTER_FIELDS:
        v = _rel_violation(
            f"counters.{key}",
            base_counters.get(key, 0),
            fresh_counters.get(key, 0),
            rel_counters,
            floor=1.0,
        )
        if v:
            violations.append(v)
    rel_ratio = tolerances["rel_tol_ratio"]
    for key in RATIO_COUNTER_FIELDS:
        v = _rel_violation(
            f"counters.{key}",
            base_counters.get(key, 0.0),
            fresh_counters.get(key, 0.0),
            rel_ratio,
            floor=1e-6,
        )
        if v:
            violations.append(v)
    base_advisor = baseline.get("advisor", {})
    fresh_advisor = fresh.get("advisor", {})
    base_verdicts = base_advisor.get("verdicts", {})
    fresh_verdicts = fresh_advisor.get("verdicts", {})
    for kernel in sorted(set(base_verdicts) | set(fresh_verdicts)):
        if base_verdicts.get(kernel) != fresh_verdicts.get(kernel):
            violations.append(
                f"advisor.verdicts.{kernel}: "
                f"baseline={base_verdicts.get(kernel)!r} "
                f"fresh={fresh_verdicts.get(kernel)!r} (verdict changed)"
            )
    v = _rel_violation(
        "advisor.transfer_fraction",
        base_advisor.get("transfer_fraction", 0.0),
        fresh_advisor.get("transfer_fraction", 0.0),
        rel_ratio,
        floor=0.01,
    )
    if v:
        violations.append(v)
    return violations


def compare_against_baselines(
    baseline_dir,
    *,
    names: Optional[Sequence[str]] = None,
    config_path=None,
    fresh_payloads: Optional[Dict[str, dict]] = None,
) -> Dict[str, List[str]]:
    """Compare fresh scenario payloads against committed baselines.

    ``fresh_payloads`` may carry pre-computed payloads (e.g. the files a
    prior ``repro bench run`` wrote); scenarios missing from it are run
    fresh.  Returns ``{scenario: [violations...]}`` for every compared
    scenario (empty lists mean pass).
    """
    names = list(names) if names else scenario_names()
    config = load_tolerance_config(config_path)
    outcome: Dict[str, List[str]] = {}
    for name in names:
        baseline = load_baseline(baseline_dir, name)
        if fresh_payloads and name in fresh_payloads:
            fresh = fresh_payloads[name]
        else:
            fresh = run_scenario(name)
        outcome[name] = compare_payloads(
            baseline, fresh, tolerances_for(config, name)
        )
    return outcome
