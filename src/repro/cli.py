"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run an LP variant on a named Table 2 dataset or an edge-list file and
    print community statistics, modeled timing and hardware counters.
``datasets``
    List the Table 2 dataset registry.
``bench``
    Run one paper experiment (table2, fig4, fig5, fig6, table3, table4,
    fig7, pipeline, theory) and print its report — or drive the
    regression-baseline layer: ``bench run`` executes the standardized
    scenario suite and writes ``BENCH_<scenario>.json`` payloads;
    ``bench compare`` diffs fresh runs against the committed baselines
    under the tolerance bands of ``benchmarks/baseline_config.toml`` and
    exits non-zero on regression (the CI perf gate).
``pipeline``
    Run the end-to-end fraud-detection pipeline on a synthetic stream.
``serve``
    Run the asyncio streaming scoring service under deterministic bursty
    load: micro-batched ingest drives window slides while per-transaction
    score requests are answered against the latest label state under
    admission control (see ``docs/serving.md``).  ``--slo`` gates the run
    on ``benchmarks/serving_slo.toml``; ``--probe-identity N`` verifies
    the served labels bitwise against a from-scratch batch replay.
``profile``
    Run an LP variant under the profiler and print an nvprof-style
    per-kernel table (see ``docs/observability.md``).
``advise``
    Run an LP variant under the roofline bottleneck advisor and print
    ranked findings with per-kernel cause attribution and verdicts.
``check``
    Statically lint LP-program hooks and simulator kernel code for GPU
    correctness hazards (non-atomic shared writes, missing barriers,
    divergent warp syncs, sketch-sizing violations of Lemma 1/2).
    Exits non-zero when any error-severity finding survives.
``chaos``
    Run a seeded fault-injection sweep (see ``docs/resilience.md``):
    replay deterministic fault plans against one workload, verify every
    recovered run reproduces the fault-free labels bitwise, and exit
    non-zero when any run failed or mismatched.

``run`` also takes the resilience flags: ``--inject PLAN`` installs a
deterministic fault plan (``kind@N[xR][/devD]``), ``--retries N``
enables bounded checkpoint-based recovery, ``--checkpoint-dir`` persists
the per-iteration checkpoint, and ``--resume PATH`` resumes a killed run
from a checkpoint file or directory.

``run`` and ``pipeline`` accept ``--trace-out`` (Chrome ``trace_event``
JSON for Perfetto) and ``--metrics-out`` (metrics registry dump); ``run
--json`` emits the machine-readable result summary instead of the human
report.  ``--mem-profile`` tracks per-device live bytes and watermarks
by allocation category (``--mem-out`` writes the watermark report JSON;
``repro obs memory --report PATH`` re-renders and gates on it).  ``run --sanitize`` executes every kernel under the dynamic
race/sync sanitizer (see ``docs/analysis.md``) and exits non-zero on
hazards; ``run --frontier {dense,frontier,auto}`` selects the GLP
engine's frontier execution mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.kernels.frontier import FRONTIER_MODES
from repro.obs.profile import SORT_KEYS as PROFILE_SORT_KEYS

#: Engine names accepted by ``run --engine``.
ENGINES = ["glp", "gsort", "ghash", "serial", "omp", "ligra", "distributed"]

#: Algorithm names accepted by ``run --algorithm``.
ALGORITHMS = ["classic", "llp", "slp", "labelrank"]

#: Experiment names accepted by ``bench`` (plus the baseline verbs).
EXPERIMENTS = [
    "table2", "fig4", "fig5", "fig6", "table3", "table4", "fig7",
    "pipeline", "theory", "cost",
]

#: Baseline-layer verbs ``bench`` also accepts.
BENCH_VERBS = ["run", "compare"]


def _build_engine(name: str, frontier: str = "dense"):
    from repro.baselines import (
        GHashEngine,
        GSortEngine,
        InHouseDistributedEngine,
        LigraEngine,
        OMPEngine,
        SerialEngine,
    )
    from repro.core.framework import GLPEngine

    if name == "glp":
        return GLPEngine(frontier=frontier)
    factories = {
        "gsort": GSortEngine,
        "ghash": GHashEngine,
        "serial": SerialEngine,
        "omp": OMPEngine,
        "ligra": LigraEngine,
        "distributed": InHouseDistributedEngine,
    }
    return factories[name]()


def _build_program(name: str, args):
    from repro.algorithms import (
        ClassicLP,
        LabelRankLP,
        LayeredLP,
        SpeakerListenerLP,
    )

    if name == "classic":
        return ClassicLP()
    if name == "llp":
        return LayeredLP(gamma=args.gamma)
    if name == "slp":
        return SpeakerListenerLP(seed=args.seed)
    return LabelRankLP()


def _load_graph(source: str):
    from repro.graph.generators.datasets import DATASETS, load_dataset
    from repro.graph.io import load_edge_list

    if source in DATASETS:
        return load_dataset(source)
    return load_edge_list(source, symmetrize=True)


def _obs_session(args):
    """Activate observability when any obs output flag is set."""
    from repro import obs

    wanted = any(
        getattr(args, flag, None)
        for flag in (
            "trace_out",
            "metrics_out",
            "journal_out",
            "flight_dir",
            "slo",
            "slo_out",
            "report_out",
        )
    )
    if not wanted and not _memory_wanted(args):
        return None
    session = obs.enable()
    if getattr(args, "flight_dir", None):
        session.flight.dump_dir = args.flight_dir
    return session


def _memory_wanted(args) -> bool:
    return bool(
        getattr(args, "mem_profile", False) or getattr(args, "mem_out", None)
    )


def _memory_tracker(args):
    """Install the device-memory tracker when ``--mem-profile`` is set."""
    if not _memory_wanted(args):
        return None
    from repro.gpusim import hooks
    from repro.obs.memory import MemoryTracker

    tracker = MemoryTracker()
    hooks.set_memory(tracker)
    return tracker


def _uninstall_memory(tracker) -> None:
    if tracker is None:
        return
    from repro.gpusim import hooks

    if hooks.memory() is tracker:
        hooks.set_memory(None)


def _write_memory_outputs(args, tracker) -> None:
    """Write ``--mem-out`` or print the watermark report."""
    if tracker is None:
        return
    if getattr(args, "mem_out", None):
        tracker.write(args.mem_out)
        print(f"memory report  : {args.mem_out}", flush=True)
    else:
        from repro.obs.memory import render_memory_report

        print(render_memory_report(tracker.report()), flush=True)


def _write_obs_outputs(args, session) -> None:
    if session is None:
        return
    if args.trace_out:
        session.tracer.write(args.trace_out)
        print(f"trace written  : {args.trace_out}", flush=True)
    if args.metrics_out:
        if args.metrics_format == "prometheus":
            with open(args.metrics_out, "w") as fh:
                fh.write(session.metrics.to_prometheus_text())
        else:
            session.metrics.write(args.metrics_out)
        print(f"metrics written: {args.metrics_out}", flush=True)
    if getattr(args, "journal_out", None):
        session.journal.write(args.journal_out)
        print(f"journal written: {args.journal_out}", flush=True)
    if getattr(args, "flight_dir", None) and session.flight.bundles:
        print(
            f"post-mortems   : {len(session.flight.bundles)} bundle(s) "
            f"under {args.flight_dir}",
            flush=True,
        )


def _finish_serving_outputs(args, session, tracker=None) -> int:
    """Evaluate SLOs and write the fused run report; exit 1 on breach."""
    if session is None:
        return 0
    slo_report = None
    if getattr(args, "slo", None):
        from repro.obs.slo import evaluate_slos, load_slo_spec

        slo_report = evaluate_slos(load_slo_spec(args.slo), session.metrics)
        print(slo_report.to_text(), flush=True)
        if getattr(args, "slo_out", None):
            slo_report.write(args.slo_out)
            print(f"slo verdicts   : {args.slo_out}", flush=True)
    if getattr(args, "report_out", None):
        from repro.obs.report import build_report, render_markdown

        journal_records = None
        if session.journal is not None:
            journal_records = [session.journal.meta()] + list(
                session.journal.events
            )
        report = build_report(
            journal_records=journal_records,
            metrics_doc=(
                session.metrics.to_dict()
                if session.metrics is not None
                else None
            ),
            slo_doc=slo_report.as_dict() if slo_report is not None else None,
            postmortems=(
                session.flight.bundles
                if session.flight is not None
                else None
            ),
            memory_doc=tracker.report() if tracker is not None else None,
        )
        with open(args.report_out, "w") as fh:
            if args.report_out.endswith(".json"):
                json.dump(report, fh, indent=2, sort_keys=True, default=str)
                fh.write("\n")
            else:
                fh.write(render_markdown(report))
        print(f"run report     : {args.report_out}", flush=True)
    if slo_report is not None and not slo_report.ok:
        return 1
    return 0


def _finish_sanitize(args, sanitizer) -> int:
    """Write/print the sanitizer report; non-zero exit on hazards."""
    if sanitizer is None:
        return 0
    report = sanitizer.report()
    if args.sanitize_out:
        report.write(args.sanitize_out)
    # In --json mode stdout carries the result document, so the human
    # summary moves to stderr.
    stream = sys.stderr if args.json else sys.stdout
    print(report.to_text(), file=stream, flush=True)
    if args.sanitize_out:
        print(f"sanitizer report: {args.sanitize_out}",
              file=stream, flush=True)
    return 1 if report.has_hazards else 0


#: Engines that run on the simulated device (and accept the resilience
#: options); the rest are CPU baselines with no faults to inject.
_DEVICE_ENGINES = ("glp", "gsort", "ghash")


def _resilience_kwargs(args) -> dict:
    """Engine kwargs for the ``run`` resilience flags."""
    kwargs = {}
    if getattr(args, "retries", None) is not None:
        from repro.resilience import RetryPolicy

        kwargs["retry_policy"] = RetryPolicy(
            max_retries=args.retries, max_resumes=args.retries
        )
    if getattr(args, "checkpoint_dir", None):
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "resume", None):
        kwargs["resume_from"] = args.resume
    return kwargs


def _cmd_run(args) -> int:
    import contextlib

    from repro import analysis, obs
    from repro.errors import DeviceFault

    if args.frontier != "dense" and args.engine != "glp":
        print(
            f"repro run: --frontier {args.frontier} requires --engine glp "
            f"(got {args.engine!r})",
            file=sys.stderr,
        )
        return 2
    resilience = _resilience_kwargs(args)
    if (resilience or args.inject) and args.engine not in _DEVICE_ENGINES:
        print(
            "repro run: --inject/--retries/--checkpoint-dir/--resume "
            f"require a device engine {_DEVICE_ENGINES} "
            f"(got {args.engine!r})",
            file=sys.stderr,
        )
        return 2
    inject_cm = contextlib.nullcontext(None)
    if args.inject:
        from repro.resilience import FaultPlan, inject

        inject_cm = inject(FaultPlan.parse(args.inject))
    graph = _load_graph(args.graph)
    engine = _build_engine(args.engine, frontier=args.frontier)
    program = _build_program(args.algorithm, args)
    session = _obs_session(args)
    tracker = _memory_tracker(args)
    sanitizer = analysis.enable_sanitizer() if args.sanitize else None
    injector = None
    try:
        with inject_cm as injector:
            result = engine.run(
                graph,
                program,
                max_iterations=args.iterations,
                stop_on_convergence=not args.no_early_stop,
                **resilience,
            )
    except DeviceFault as fault:
        print(
            f"repro run: device fault not recovered: {fault}\n"
            "repro run: enable recovery with --retries N "
            "(and --checkpoint-dir to make the run resumable)",
            file=sys.stderr,
        )
        return 1
    finally:
        obs.disable()
        _uninstall_memory(tracker)
        if sanitizer is not None:
            analysis.disable_sanitizer()
    fired = (
        ", ".join(
            f"{e.kind}@{e.stream}#{e.index}" for e in injector.events
        )
        if injector is not None and injector.events
        else ""
    )
    if args.json:
        print(result.to_json(indent=2))
        if fired:
            print(f"faults injected: {fired} (recovered)",
                  file=sys.stderr, flush=True)
        _write_obs_outputs(args, session)
        _write_memory_outputs(args, tracker)
        return _finish_sanitize(args, sanitizer)
    sizes = result.community_sizes()
    print(f"graph          : {graph.name} "
          f"(V={graph.num_vertices:,}, E={graph.num_edges:,})")
    print(f"engine         : {result.engine}")
    print(f"algorithm      : {program.name}")
    print(f"iterations     : {result.num_iterations} "
          f"(converged={result.converged})")
    print(f"modeled time   : {result.total_seconds * 1e3:.4f} ms "
          f"({result.seconds_per_iteration * 1e3:.4f} ms/iteration)")
    print(f"communities    : {sizes.size:,} "
          f"(largest {sizes[:5].tolist()})")
    counters = result.total_counters
    if counters.global_transactions:
        print(f"global traffic : {counters.global_transactions:,} "
              f"transactions; lane utilization "
              f"{counters.lane_utilization:.1%}")
    if fired:
        print(f"faults injected: {fired} (recovered)")
    _write_obs_outputs(args, session)
    _write_memory_outputs(args, tracker)
    return _finish_sanitize(args, sanitizer)


def _cmd_check(args) -> int:
    import json as _json
    import os

    from repro import analysis

    paths = list(args.paths)
    explicit_paths = bool(paths)
    if not paths:
        import repro.kernels as _kernels

        paths.append(os.path.dirname(_kernels.__file__))
        if os.path.isdir("examples"):
            paths.append("examples")
    reports = [analysis.lint_paths(paths)]
    if args.all:
        reports.append(analysis.check_dataflow(paths))
        # Contracts and consistency check the *shipped* interfaces when no
        # explicit paths were given; with paths they run in AST/fixture
        # mode over those files only.
        reports.append(
            analysis.check_contracts(paths if explicit_paths else None)
        )
        reports.append(
            analysis.check_consistency(paths if explicit_paths else None)
        )

    if len(reports) == 1:
        payload = reports[0].to_json(indent=2)
    else:
        payload = _json.dumps(
            {
                "schema_version": analysis.SCHEMA_VERSION,
                "reports": {r.source: r.as_dict() for r in reports},
            },
            indent=2,
            sort_keys=True,
        )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
            fh.write("\n")
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        for report in reports:
            report.write(os.path.join(args.out_dir, f"{report.source}.json"))
    if args.json:
        print(payload)
    else:
        for report in reports:
            print(report.to_text())
        if args.out:
            print(f"report written : {args.out}", flush=True)

    gated = ("error", "warning") if args.fail_on == "warning" else ("error",)
    failed = any(
        finding.severity in gated
        for report in reports
        for finding in report.findings
    )
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    import json as _json

    from repro.core.framework import GLPEngine
    from repro.core.hybrid import HybridEngine
    from repro.core.multigpu import MultiGPUEngine
    from repro.resilience.chaos import chaos_sweep

    graph = _load_graph(args.dataset)
    factories = {
        "glp": lambda: GLPEngine(),
        "hybrid": lambda: HybridEngine(),
        "multigpu": lambda: MultiGPUEngine(2),
        "auto": None,  # run_auto: exercises the degradation ladder
    }
    report = chaos_sweep(
        graph,
        lambda: _build_program(args.algorithm, args),
        factories[args.engine],
        num_plans=args.plans,
        seed=args.seed,
        faults_per_plan=args.faults_per_plan,
        max_iterations=args.iterations,
    )
    analysis = report.analysis_report()
    if args.out:
        analysis.write(args.out)
    if args.json:
        doc = report.as_dict()
        doc["analysis"] = analysis.as_dict()
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 1 if analysis.has_hazards else 0
    print(f"graph          : {graph.name} "
          f"(V={graph.num_vertices:,}, E={graph.num_edges:,})")
    print(f"reference      : {report.reference_engine} "
          f"labels={report.reference_hash[:16]}…")
    print(f"event streams  : " + ", ".join(
        f"{stream}={count}"
        for stream, count in sorted(report.stream_totals.items())
    ))
    for run in report.runs:
        fired = ",".join(run.faults_fired) or "-"
        print(f"  [{run.status:>9}] plan={run.plan:<16} fired={fired:<10} "
              f"engine={run.engine or '-'}")
    print(analysis.to_text())
    if args.out:
        print(f"report written : {args.out}", flush=True)
    return 1 if analysis.has_hazards else 0


def _cmd_profile(args) -> int:
    from repro.obs import ProfileReport

    graph = _load_graph(args.dataset)
    engine = _build_engine(args.engine)
    program = _build_program(args.algorithm, args)
    result = engine.run(
        graph,
        program,
        max_iterations=args.iterations,
        stop_on_convergence=not args.no_early_stop,
    )
    report = ProfileReport.from_engine(engine)
    if args.json:
        print(report.to_json(sort_by=args.sort_by, indent=2))
        return 0
    print(f"graph          : {graph.name} "
          f"(V={graph.num_vertices:,}, E={graph.num_edges:,})")
    print(f"engine         : {result.engine}   algorithm: {program.name}   "
          f"iterations: {result.num_iterations}")
    print(f"modeled time   : {result.total_seconds * 1e3:.4f} ms")
    print()
    print(report.to_text(sort_by=args.sort_by))
    return 0


def _cmd_datasets(args) -> int:
    from repro.bench.experiments import run_table2

    text, _ = run_table2()
    print(text)
    return 0


def _cmd_advise(args) -> int:
    from repro.obs import AdvisorReport

    graph = _load_graph(args.dataset)
    engine = _build_engine(args.engine)
    program = _build_program(args.algorithm, args)
    result = engine.run(
        graph,
        program,
        max_iterations=args.iterations,
        stop_on_convergence=not args.no_early_stop,
    )
    report = AdvisorReport.from_engine(engine)
    if args.json:
        print(report.to_json(indent=2))
        return 0
    print(f"graph          : {graph.name} "
          f"(V={graph.num_vertices:,}, E={graph.num_edges:,})")
    print(f"engine         : {result.engine}   algorithm: {program.name}   "
          f"iterations: {result.num_iterations}")
    print(f"modeled time   : {result.total_seconds * 1e3:.4f} ms")
    print()
    print(report.to_text(top=args.top))
    return 0


def _cmd_bench_run(args) -> int:
    from repro.bench.baseline import (
        run_scenario,
        scenario_names,
        write_baseline,
    )

    names = args.scenario or scenario_names()
    out_dir = "." if args.update_baselines else args.out_dir
    payloads = {}
    for name in names:
        print(f"running scenario {name} ...", flush=True)
        payloads[name] = run_scenario(name, mem_profile=args.mem_profile)
        path = write_baseline(out_dir, payloads[name])
        print(f"  wrote {path}", flush=True)
        memory = payloads[name].get("memory")
        if memory is not None:
            if not memory["reconciled"]:
                print("  memory: UNRECONCILED", flush=True)
            for row in memory["planner"].get("accuracy", []):
                status = "ok" if row["within_threshold"] else "MISS"
                print(
                    f"  planner {row['engine']}@gpu{row['device']}: "
                    f"predicted {row['predicted_bytes']:,} B, measured "
                    f"{row['measured_peak_bytes']:,} B "
                    f"({row['error_ratio']:+.1%}) {status}",
                    flush=True,
                )
    if args.json:
        import json as _json

        print(_json.dumps(payloads, indent=2, sort_keys=True))
    return 0


def _cmd_bench_compare(args) -> int:
    import json as _json
    import os

    from repro.bench.baseline import (
        compare_against_baselines,
        load_baseline,
        scenario_names,
    )

    names = args.scenario or scenario_names()
    config_path = args.config
    if config_path is None and os.path.exists(
        "benchmarks/baseline_config.toml"
    ):
        config_path = "benchmarks/baseline_config.toml"
    fresh_payloads = None
    if args.fresh_dir:
        # Consume payloads a prior `bench run --out-dir` already wrote
        # (CI runs the suite once and compares the files).
        fresh_payloads = {
            name: load_baseline(args.fresh_dir, name) for name in names
        }
    outcome = compare_against_baselines(
        args.baseline_dir,
        names=names,
        config_path=config_path,
        fresh_payloads=fresh_payloads,
    )
    failed = {n: v for n, v in outcome.items() if v}
    if args.json:
        print(_json.dumps(
            {
                "passed": sorted(n for n in outcome if n not in failed),
                "failed": {n: v for n, v in sorted(failed.items())},
            },
            indent=2,
        ))
    else:
        for name in sorted(outcome):
            violations = outcome[name]
            status = "FAIL" if violations else "ok"
            print(f"[{status:>4}] {name}")
            for violation in violations:
                print(f"        {violation}")
    if failed:
        fields = sorted(
            {v.split(":", 1)[0] for vs in failed.values() for v in vs}
        )
        print(
            f"perf gate: {len(failed)}/{len(outcome)} scenario(s) regressed "
            f"(offending fields: {', '.join(fields)})",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate: all {len(outcome)} scenario(s) within tolerance")
    return 0


def _cmd_bench(args) -> int:
    if args.experiment == "run":
        return _cmd_bench_run(args)
    if args.experiment == "compare":
        return _cmd_bench_compare(args)
    from repro.bench import (
        run_fig4,
        run_fig5,
        run_fig6,
        run_fig7,
        run_pipeline_share,
        run_table2,
        run_table3,
        run_table4,
        run_theory_bounds,
    )
    from repro.bench.experiments import run_cost_efficiency

    runners = {
        "table2": run_table2,
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "table3": run_table3,
        "table4": run_table4,
        "fig7": run_fig7,
        "pipeline": run_pipeline_share,
        "theory": run_theory_bounds,
        "cost": run_cost_efficiency,
    }
    text, _ = runners[args.experiment]()
    print(text)
    return 0


def _cmd_pipeline(args) -> int:
    from repro import obs
    from repro.baselines import InHouseDistributedEngine
    from repro.core.framework import GLPEngine
    from repro.pipeline import (
        ClusterDetector,
        FraudDetectionPipeline,
        TransactionStream,
        TransactionStreamConfig,
    )

    if args.incremental or args.slides:
        return _cmd_pipeline_sliding(args)

    stream = TransactionStream(
        TransactionStreamConfig(num_days=args.days, seed=args.seed)
    )
    engine = (
        GLPEngine() if args.engine == "glp" else InHouseDistributedEngine()
    )
    detector = ClusterDetector(engine, max_iterations=20, max_hops=6)
    pipeline = FraudDetectionPipeline(stream, detector)
    session = _obs_session(args)
    tracker = _memory_tracker(args)
    try:
        report = pipeline.run_window(min(args.window, args.days))
    finally:
        obs.disable()
        _uninstall_memory(tracker)
    print(f"window         : {report.window_days} days "
          f"(V={report.num_vertices:,}, E={report.num_edges:,})")
    print(f"stage times    : build={report.construction_seconds * 1e3:.2f} ms"
          f"  LP={report.lp_seconds * 1e3:.2f} ms"
          f"  downstream={report.downstream_seconds * 1e3:.2f} ms")
    print(f"LP share       : {report.lp_fraction:.0%}")
    print(f"fraud clusters : {report.num_fraud_clusters} "
          f"of {report.num_clusters} detected")
    print(f"quality        : precision={report.metrics.precision:.2f} "
          f"recall={report.metrics.recall:.2f} f1={report.metrics.f1:.2f}")
    _write_obs_outputs(args, session)
    _write_memory_outputs(args, tracker)
    return _finish_serving_outputs(args, session, tracker)


def _cmd_pipeline_sliding(args) -> int:
    """The sliding-window serving loop (``pipeline --slides/--incremental``)."""
    from repro import obs
    from repro.core.framework import GLPEngine
    from repro.pipeline import (
        ClusterDetector,
        SlidingWindowDetector,
        TransactionStream,
        TransactionStreamConfig,
    )

    if args.engine != "glp":
        print(
            "error: --incremental/--slides serve through the GLP frontier "
            "engine",
            file=sys.stderr,
        )
        return 2
    window_days = min(args.window, args.days - 1)
    slides = args.slides or 1
    if args.days < window_days + slides + 1:
        print(
            f"error: need at least {window_days + slides + 1} days for "
            f"{slides} slide(s) over a {window_days}-day window",
            file=sys.stderr,
        )
        return 2
    stream = TransactionStream(
        TransactionStreamConfig(num_days=args.days, seed=args.seed)
    )
    engine = GLPEngine(frontier="auto")
    detector = ClusterDetector(engine, max_iterations=20, max_hops=6)
    sliding = SlidingWindowDetector(
        stream, detector, incremental=args.incremental
    )
    session = _obs_session(args)
    tracker = _memory_tracker(args)
    try:
        window, detection = sliding.start(0, window_days)
        lp = detection.lp_result
        print(
            f"start          : {window.graph.name} "
            f"(V={window.graph.num_vertices:,}, "
            f"E={window.graph.num_edges:,})  "
            f"clusters={len(detection.clusters)}  "
            f"modeled={lp.total_seconds * 1e3:.3f} ms"
        )
        for i in range(slides):
            window, detection = sliding.slide()
            lp = detection.lp_result
            plan = sliding.last_plan
            diff = sliding.builder.last_diff
            edges = sum(s.processed_edges for s in lp.iterations)
            print(
                f"slide {i + 1:<8} : mode={plan.mode}/{plan.reason}  "
                f"diff=+{diff.num_added}/-{diff.num_removed}"
                f"/~{diff.num_reweighted}  "
                f"affected={plan.num_affected}  "
                f"edges={edges:,}  "
                f"clusters={len(detection.clusters)}  "
                f"modeled={lp.total_seconds * 1e3:.3f} ms"
            )
    finally:
        obs.disable()
        _uninstall_memory(tracker)
    _write_obs_outputs(args, session)
    _write_memory_outputs(args, tracker)
    return _finish_serving_outputs(args, session, tracker)


def _cmd_serve(args) -> int:
    """The streaming scoring service under deterministic bursty load."""
    import asyncio

    from repro import obs
    from repro.errors import ServingError
    from repro.pipeline import TransactionStream, TransactionStreamConfig
    from repro.serving import LoadGenConfig, LoadGenerator, ScoringService

    window_days = min(args.window, args.days - 1)
    if args.days < window_days + args.slides + 1:
        print(
            f"error: need at least {window_days + args.slides + 1} days "
            f"for {args.slides} slide(s) over a {window_days}-day window",
            file=sys.stderr,
        )
        return 2
    stream = TransactionStream(
        TransactionStreamConfig(num_days=args.days, seed=args.seed)
    )
    try:
        generator = LoadGenerator(
            stream,
            LoadGenConfig(
                num_users=args.users,
                qps=args.qps,
                burst_factor=args.burst_factor,
                seed=args.seed,
            ),
        )
        events = generator.schedule(window_days, args.slides)
        service = ScoringService(
            stream,
            window_days=window_days,
            incremental=not args.no_incremental,
            queue_capacity=args.queue_capacity,
            policy=args.policy,
            deadline_seconds=args.deadline_ms / 1e3,
            probe_every=args.probe_identity,
        )
    except ServingError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = _obs_session(args)
    tracker = _memory_tracker(args)
    try:
        report = asyncio.run(service.serve(events, pace=args.pace))
    finally:
        obs.disable()
        _uninstall_memory(tracker)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.to_text())
    _write_obs_outputs(args, session)
    _write_memory_outputs(args, tracker)
    status = _finish_serving_outputs(args, session, tracker)
    if report.probe_mismatches:
        print(
            f"repro serve: {report.probe_mismatches} identity probe(s) "
            "diverged from the batch replay",
            file=sys.stderr,
        )
        return 1
    return status


def _load_json(path: Optional[str]):
    if not path:
        return None
    with open(path) as fh:
        return json.load(fh)


def _cmd_obs_report(args) -> int:
    """Fuse journal + metrics + profiler + advisor + SLO into one report.

    Inputs that were named but are missing or empty on disk degrade to
    explicit "not collected" report sections instead of raising — a
    crashed serving run should still yield a (partial) report.
    """
    from repro.obs.journal import read_journal
    from repro.obs.report import build_report, render_markdown
    from repro.obs.slo import evaluate_slos, load_slo_spec

    not_collected = []

    def _optional(kind, path, loader):
        if not path:
            return None
        try:
            doc = loader(path)
        except (OSError, ValueError):
            # FileNotFoundError, truncated/invalid JSON, empty JSONL.
            not_collected.append(kind)
            return None
        if not doc:
            not_collected.append(kind)
            return None
        return doc

    journal_records = _optional("journal", args.journal, read_journal)
    metrics_doc = _optional("metrics", args.metrics, _load_json)
    slo_doc = _optional("slo", args.slo_report, _load_json)
    if slo_doc is None and args.slo and "slo" not in not_collected:
        if metrics_doc is None:
            print(
                "error: --slo needs --metrics (or use --slo-report)",
                file=sys.stderr,
            )
            return 2
        slo_doc = evaluate_slos(
            load_slo_spec(args.slo), metrics_doc
        ).as_dict()
    postmortems = [
        bundle
        for path in args.postmortem or []
        for bundle in [_optional("postmortem", path, _load_json)]
        if bundle is not None
    ]
    report = build_report(
        journal_records=journal_records,
        metrics_doc=metrics_doc,
        slo_doc=slo_doc,
        profile_doc=_optional("profile", args.profile, _load_json),
        advisor_doc=_optional("advisor", args.advisor, _load_json),
        memory_doc=_optional("memory", args.memory, _load_json),
        postmortems=postmortems,
        not_collected=not_collected,
    )
    if args.format == "json":
        rendered = json.dumps(report, indent=2, sort_keys=True, default=str)
        rendered += "\n"
    else:
        rendered = render_markdown(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered)
        print(f"report written : {args.out}", flush=True)
    else:
        print(rendered, end="", flush=True)
    return 0


def _cmd_obs_memory(args) -> int:
    """Render a ``--mem-out`` watermark report; gate on its findings."""
    from repro.obs.memory import render_memory_report

    try:
        doc = _load_json(args.report)
    except (OSError, ValueError):
        doc = None
    if doc is None:
        print(
            f"error: no memory report at {args.report!r} "
            "(produce one with --mem-profile --mem-out)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_memory_report(doc))
    errors = [
        f
        for f in (doc.get("analysis") or {}).get("findings", [])
        if f.get("severity") == "error"
    ]
    return 1 if (not doc.get("reconciled", False) or errors) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GLP reproduction: GPU label propagation on a "
        "simulated device",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an LP algorithm on a graph")
    run.add_argument(
        "graph",
        help="Table 2 dataset name (e.g. 'twitter') or edge-list file path",
    )
    run.add_argument("--engine", choices=ENGINES, default="glp")
    run.add_argument("--algorithm", choices=ALGORITHMS, default="classic")
    run.add_argument("--iterations", type=int, default=20)
    run.add_argument("--gamma", type=float, default=1.0,
                     help="LLP density parameter")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--no-early-stop", action="store_true",
        help="always run the full iteration budget",
    )
    run.add_argument(
        "--frontier", choices=list(FRONTIER_MODES), default="dense",
        help="frontier execution mode of the GLP engine "
        "(default: dense full-vertex passes)",
    )
    run.add_argument(
        "--sanitize", action="store_true",
        help="run every kernel under the race/sync sanitizer and exit "
        "non-zero on hazards (results stay bitwise identical)",
    )
    run.add_argument(
        "--sanitize-out", metavar="PATH",
        help="write the sanitizer report JSON here",
    )
    run.add_argument(
        "--inject", metavar="PLAN",
        help="deterministic fault plan 'kind@N[xR][/devD]', comma "
        "separated (kinds: oom, transfer, kernel, ecc; N is the 1-based "
        "device event index)",
    )
    run.add_argument(
        "--retries", type=int, metavar="N",
        help="enable checkpoint-based recovery with N retries and N "
        "resumes (device engines only)",
    )
    run.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist the per-iteration run checkpoint here",
    )
    run.add_argument(
        "--resume", metavar="PATH",
        help="resume from a .ckpt file or a checkpoint directory",
    )
    _add_obs_flags(run)
    run.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable result summary instead of text",
    )
    run.set_defaults(func=_cmd_run)

    check = sub.add_parser(
        "check",
        help="statically lint LP programs and kernel code for GPU "
        "correctness hazards",
    )
    check.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the built-in "
        "repro.kernels package plus ./examples when present)",
    )
    check.add_argument(
        "--out", metavar="PATH",
        help="also write the JSON report here",
    )
    check.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )
    check.add_argument(
        "--all", action="store_true",
        help="also run the static dataflow verifier, the engine/hook "
        "contract checker, and the schema-consistency lint",
    )
    check.add_argument(
        "--fail-on", choices=["error", "warning"], default="error",
        help="lowest severity that fails the command (default: error; "
        "'warning' also fails on warning-level findings)",
    )
    check.add_argument(
        "--out-dir", metavar="DIR",
        help="write one <source>.json report per analyzer into DIR",
    )
    check.set_defaults(func=_cmd_check)

    chaos = sub.add_parser(
        "chaos",
        help="replay seeded fault plans and verify recovery reproduces "
        "the fault-free labels bitwise",
    )
    chaos.add_argument(
        "--dataset", default="dblp",
        help="Table 2 dataset name or edge-list file path",
    )
    chaos.add_argument(
        "--engine", choices=["glp", "hybrid", "multigpu", "auto"],
        default="glp",
        help="engine under test; 'auto' drives run_auto and exercises "
        "the GPU->hybrid->CPU degradation ladder",
    )
    chaos.add_argument("--algorithm", choices=ALGORITHMS, default="classic")
    chaos.add_argument("--plans", type=int, default=5, metavar="N",
                       help="number of seeded random fault plans")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--faults-per-plan", type=int, default=1, metavar="N")
    chaos.add_argument("--iterations", type=int, default=10)
    chaos.add_argument("--gamma", type=float, default=1.0,
                       help="LLP density parameter")
    chaos.add_argument(
        "--out", metavar="PATH",
        help="write the chaos analysis report JSON here",
    )
    chaos.add_argument("--json", action="store_true",
                       help="emit the full sweep as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    datasets = sub.add_parser("datasets", help="list the dataset registry")
    datasets.set_defaults(func=_cmd_datasets)

    bench = sub.add_parser(
        "bench",
        help="run one paper experiment, or the baseline suite "
        "(bench run / bench compare)",
    )
    bench.add_argument("experiment", choices=EXPERIMENTS + BENCH_VERBS)
    bench.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="baseline scenario to run/compare (repeatable; "
        "default: the full suite)",
    )
    bench.add_argument(
        "--out-dir", default="benchmarks/results", metavar="DIR",
        help="where `bench run` writes BENCH_<scenario>.json "
        "(default: benchmarks/results)",
    )
    bench.add_argument(
        "--update-baselines", action="store_true",
        help="`bench run` writes the committed baselines at the repo "
        "root instead of --out-dir",
    )
    bench.add_argument(
        "--baseline-dir", default=".", metavar="DIR",
        help="where `bench compare` reads the committed baselines "
        "(default: repo root)",
    )
    bench.add_argument(
        "--config", metavar="TOML",
        help="tolerance-band config (default: "
        "benchmarks/baseline_config.toml when present)",
    )
    bench.add_argument(
        "--fresh-dir", metavar="DIR",
        help="`bench compare` consumes BENCH files a prior `bench run "
        "--out-dir` wrote here instead of re-running the scenarios",
    )
    bench.add_argument(
        "--mem-profile", action="store_true",
        help="`bench run` executes each scenario under the device-memory "
        "tracker and attaches planner-accuracy rows to its payload",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit machine-readable payloads / gate outcome",
    )
    bench.set_defaults(func=_cmd_bench)

    pipeline = sub.add_parser(
        "pipeline", help="run the fraud-detection pipeline"
    )
    pipeline.add_argument("--days", type=int, default=60,
                          help="stream length in days")
    pipeline.add_argument("--window", type=int, default=30,
                          help="detection window in days")
    pipeline.add_argument(
        "--slides", type=int, default=0,
        help="serve N window slides through the sliding-window detector "
        "instead of one batch window",
    )
    pipeline.add_argument(
        "--incremental", action="store_true",
        help="plan slides DynLP-style: re-converge from the affected-vertex "
        "frontier instead of a dense warm pass (implies the sliding loop)",
    )
    pipeline.add_argument("--engine", choices=["glp", "distributed"],
                          default="glp")
    pipeline.add_argument("--seed", type=int, default=0)
    _add_obs_flags(pipeline)
    pipeline.add_argument(
        "--slo", metavar="SPEC.toml",
        help="evaluate a TOML SLO spec against the run's metrics "
        "(exit 1 on breach); see benchmarks/serving_slo.toml",
    )
    pipeline.add_argument(
        "--slo-out", metavar="PATH",
        help="write SLO verdicts as an analysis report (source \"slo\")",
    )
    pipeline.add_argument(
        "--report-out", metavar="PATH",
        help="write the fused run report (.json for JSON, else markdown)",
    )
    pipeline.set_defaults(func=_cmd_pipeline)

    serve = sub.add_parser(
        "serve",
        help="run the streaming scoring service under deterministic "
        "bursty load (window slides + per-transaction scoring)",
    )
    serve.add_argument("--days", type=int, default=30,
                       help="stream length in days")
    serve.add_argument("--window", type=int, default=14,
                       help="detection window in days")
    serve.add_argument("--slides", type=int, default=5,
                       help="served days (window slides) to replay")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--users", type=int, default=2_000_000,
        help="score-request user universe (mostly outside the window)",
    )
    serve.add_argument("--qps", type=float, default=200.0,
                       help="baseline request rate per virtual second")
    serve.add_argument("--burst-factor", type=float, default=4.0,
                       help="rate multiplier during each day's burst")
    serve.add_argument(
        "--queue-capacity", type=int, default=256,
        help="scoring admission-queue bound (full queue sheds)",
    )
    serve.add_argument(
        "--policy", choices=["shed", "deadline"], default="deadline",
        help="overload policy: shed at admission only, or also expire "
        "queued requests past the deadline",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=50.0,
        help="queueing deadline for --policy deadline (milliseconds)",
    )
    serve.add_argument(
        "--pace", action="store_true",
        help="sleep to each event's virtual timestamp instead of "
        "replaying as fast as possible",
    )
    serve.add_argument(
        "--probe-identity", type=int, default=0, metavar="N",
        help="every Nth slide, verify the served labels_hash against a "
        "from-scratch batch replay (0 disables)",
    )
    serve.add_argument(
        "--no-incremental", action="store_true",
        help="disable DynLP incremental planning (full warm recompute "
        "per slide)",
    )
    _add_obs_flags(serve)
    serve.add_argument(
        "--slo", metavar="SPEC.toml",
        help="evaluate a TOML SLO spec against the run's metrics "
        "(exit 1 on breach); see benchmarks/serving_slo.toml",
    )
    serve.add_argument(
        "--slo-out", metavar="PATH",
        help="write SLO verdicts as an analysis report (source \"slo\")",
    )
    serve.add_argument(
        "--report-out", metavar="PATH",
        help="write the fused run report (.json for JSON, else markdown)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="emit the serve report as JSON instead of text",
    )
    serve.set_defaults(func=_cmd_serve)

    obs_cmd = sub.add_parser(
        "obs", help="observability artifact tooling (run reports)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="verb", required=True)
    report = obs_sub.add_parser(
        "report",
        help="fuse journal + metrics + profiler + advisor + SLO verdicts "
        "into one run report",
    )
    report.add_argument("--journal", metavar="PATH",
                        help="journal JSONL (--journal-out)")
    report.add_argument("--metrics", metavar="PATH",
                        help="metrics JSON dump (--metrics-out)")
    report.add_argument("--slo", metavar="SPEC.toml",
                        help="SLO spec to evaluate against --metrics")
    report.add_argument(
        "--slo-report", metavar="PATH",
        help="pre-evaluated SLO verdicts JSON (--slo-out); wins over --slo",
    )
    report.add_argument("--profile", metavar="PATH",
                        help="profiler JSON (profile --json)")
    report.add_argument("--advisor", metavar="PATH",
                        help="advisor JSON (advise --json)")
    report.add_argument(
        "--postmortem", metavar="PATH", action="append",
        help="post-mortem bundle JSON (repeatable)",
    )
    report.add_argument(
        "--memory", metavar="PATH",
        help="device-memory watermark report JSON (--mem-out)",
    )
    report.add_argument("--format", choices=["md", "json"], default="md")
    report.add_argument("--out", metavar="PATH",
                        help="write the report here instead of stdout")
    report.set_defaults(func=_cmd_obs_report)

    memory = obs_sub.add_parser(
        "memory",
        help="render a --mem-out watermark report; exit 1 on unreconciled "
        "totals or error-severity planner findings",
    )
    memory.add_argument(
        "--report", metavar="PATH", required=True,
        help="memory report JSON written by --mem-profile --mem-out",
    )
    memory.add_argument(
        "--json", action="store_true",
        help="echo the report JSON instead of the text rendering",
    )
    memory.set_defaults(func=_cmd_obs_memory)

    profile = sub.add_parser(
        "profile",
        help="run an LP variant and print the nvprof-style kernel table",
    )
    profile.add_argument(
        "--dataset", default="dblp",
        help="Table 2 dataset name or edge-list file path",
    )
    profile.add_argument("--engine",
                         choices=["glp", "gsort", "ghash"], default="glp")
    profile.add_argument("--algorithm", choices=ALGORITHMS,
                         default="classic")
    profile.add_argument("--iterations", type=int, default=20)
    profile.add_argument("--gamma", type=float, default=1.0,
                         help="LLP density parameter")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--no-early-stop", action="store_true",
        help="always run the full iteration budget",
    )
    profile.add_argument(
        "--sort-by", choices=sorted(PROFILE_SORT_KEYS), default="time",
        help="kernel table sort column",
    )
    profile.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    profile.set_defaults(func=_cmd_profile)

    advise = sub.add_parser(
        "advise",
        help="run an LP variant and print ranked roofline bottleneck "
        "findings",
    )
    advise.add_argument(
        "--dataset", default="dblp",
        help="Table 2 dataset name or edge-list file path",
    )
    advise.add_argument("--engine",
                        choices=["glp", "gsort", "ghash"], default="glp")
    advise.add_argument("--algorithm", choices=ALGORITHMS,
                        default="classic")
    advise.add_argument("--iterations", type=int, default=20)
    advise.add_argument("--gamma", type=float, default=1.0,
                        help="LLP density parameter")
    advise.add_argument("--seed", type=int, default=0)
    advise.add_argument(
        "--no-early-stop", action="store_true",
        help="always run the full iteration budget",
    )
    advise.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="print only the N most severe findings",
    )
    advise.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    advise.set_defaults(func=_cmd_advise)
    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome trace_event JSON timeline (open in Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the metrics registry dump",
    )
    parser.add_argument(
        "--metrics-format", choices=["json", "prometheus"], default="json",
        help="format of --metrics-out (default: json)",
    )
    parser.add_argument(
        "--journal-out", metavar="PATH",
        help="write the correlation-ID event journal as JSONL",
    )
    parser.add_argument(
        "--flight-dir", metavar="DIR",
        help="write flight-recorder post-mortem bundles here",
    )
    parser.add_argument(
        "--mem-profile", action="store_true",
        help="track per-device live bytes and watermarks by allocation "
        "category (results stay bitwise identical)",
    )
    parser.add_argument(
        "--mem-out", metavar="PATH",
        help="write the device-memory watermark report JSON here "
        "(implies --mem-profile)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
