"""Static contract checks for the engine/hook/CLI interface surface.

The platform's cross-module interfaces are deliberately duck-typed — the
``gpusim.hooks`` registry imports nothing, engines advertise capabilities
with ``supports_incremental``/``supports_recovery`` class flags, and the
CLI maps flag names to engines by string.  This module turns those
conventions into machine-checked contracts:

``contract-missing-capability-kwarg``
    An engine advertising a capability flag whose ``run`` does not accept
    the keyword arguments that capability implies
    (``supports_incremental`` → ``initial_frontier=``/``warm_labels=``;
    ``supports_recovery`` → ``retry_policy=``/``resume_from=``).
``contract-hook-signature-mismatch``
    An :class:`~repro.core.api.LPProgram` subclass overriding a Table-1
    hook with an incompatible positional signature.
``contract-registry-callback-mismatch``
    A ``gpusim.hooks`` subscriber (memory tracker, fault injector,
    sanitizer) whose callback shape no longer matches what the simulator
    actually calls.
``contract-cli-capability-mismatch``
    A CLI flag wired to an engine that does not implement the capability
    the flag requires (the ``exit 2`` paths in ``repro run``).

Two modes: with no ``paths`` the *shipped* interfaces are imported and
checked via :mod:`inspect` (which sees inherited ``run`` methods); with
explicit ``paths`` the checks run purely on the AST, which is what the
seeded test fixtures exercise.
"""

from __future__ import annotations

import ast
import inspect
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.lint import iter_python_files

#: Capability flag -> keyword arguments ``run`` must accept when truthy.
CAPABILITY_KWARGS: Dict[str, Tuple[str, ...]] = {
    "supports_incremental": ("initial_frontier", "warm_labels"),
    "supports_recovery": ("retry_policy", "resume_from"),
}

#: LP hook -> expected positional parameter count (including ``self``).
HOOK_ARITY: Dict[str, int] = {
    "pick_labels": 4,       # self, graph, labels, iteration
    "load_neighbor": 5,     # self, vertex_ids, neighbor_ids, labels, weights
    "score": 4,             # self, vertex_ids, labels, frequencies
    "update_vertices": 5,   # self, vertex_ids, best, scores, current
}

#: What the simulator actually calls on each ``gpusim.hooks`` slot:
#: method -> (positional names after self, required keyword-only names).
#: Derived from the call sites in ``gpusim/device.py`` / ``atomics.py``.
REGISTRY_SHAPES = {
    "memory": {
        "on_alloc": (("device", "handle", "kind"), ()),
        "on_free": (("device", "handle"), ()),
        "on_free_all": (("device", "released", "count"), ()),
        "on_transfer": (
            ("device", "direction", "nbytes", "seconds"),
            ("streamed",),
        ),
    },
    "faults": {
        "on_alloc": (("device", "nbytes"), ()),
        "on_transfer": (("device", "nbytes", "direction"), ()),
        "on_launch": (("device", "name"), ()),
    },
    "sanitizer": {
        "record": (("space", "array", "offsets"), ("kind",)),
    },
}


def _location_of(obj) -> str:
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
        _, lineno = inspect.getsourcelines(obj)
        return f"{path}:{lineno}"
    except (OSError, TypeError):
        return "<unknown>:0"


def _signature_accepts(sig: inspect.Signature, kwarg: str) -> bool:
    for param in sig.parameters.values():
        if param.kind == inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == kwarg and param.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# Shipped-interface (import) mode
# ---------------------------------------------------------------------------


def _engine_classes():
    from repro import baselines
    from repro.core import framework, hybrid, multigpu

    seen = {}
    for module in (framework, hybrid, multigpu, baselines):
        for name in sorted(vars(module)):
            obj = getattr(module, name)
            if (
                inspect.isclass(obj)
                and name.endswith("Engine")
                and callable(getattr(obj, "run", None))
            ):
                seen[f"{obj.__module__}.{name}"] = obj
    return list(seen.values())


def _check_engine_capabilities(report: AnalysisReport) -> None:
    for cls in _engine_classes():
        report.checked += 1
        sig = inspect.signature(cls.run)
        for flag, required in CAPABILITY_KWARGS.items():
            if not getattr(cls, flag, False):
                continue
            for kwarg in required:
                if not _signature_accepts(sig, kwarg):
                    report.add(
                        Finding(
                            rule="contract-missing-capability-kwarg",
                            message=(
                                f"{cls.__name__} advertises {flag}=True "
                                f"but run() does not accept {kwarg}="
                            ),
                            kernel=cls.__name__,
                            location=_location_of(cls.run),
                        )
                    )


def _program_classes():
    import repro.algorithms  # noqa: F401 -- registers the shipped programs
    import repro.algorithms.labelrank  # noqa: F401
    import repro.algorithms.seeded  # noqa: F401
    import repro.algorithms.slp  # noqa: F401
    from repro.core.api import LPProgram

    classes, frontier = [], [LPProgram]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            classes.append(sub)
            frontier.append(sub)
    return LPProgram, classes


def _positional_count(sig: inspect.Signature) -> Tuple[int, bool]:
    count, variadic = 0, False
    for param in sig.parameters.values():
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            count += 1
        elif param.kind == inspect.Parameter.VAR_POSITIONAL:
            variadic = True
    return count, variadic


def _check_program_hooks(report: AnalysisReport) -> None:
    base, classes = _program_classes()
    for cls in classes:
        for hook, expected in HOOK_ARITY.items():
            impl = cls.__dict__.get(hook)
            if impl is None or not callable(impl):
                continue
            report.checked += 1
            count, variadic = _positional_count(inspect.signature(impl))
            if variadic or count == expected:
                continue
            report.add(
                Finding(
                    rule="contract-hook-signature-mismatch",
                    message=(
                        f"{cls.__name__}.{hook} takes {count} positional "
                        f"parameter(s); the {base.__name__} hook contract "
                        f"requires {expected}"
                    ),
                    kernel=cls.__name__,
                    location=_location_of(impl),
                )
            )


def _check_registry_subscribers(report: AnalysisReport) -> None:
    from repro.analysis.sanitizer import Sanitizer
    from repro.obs.memory import MemoryTracker
    from repro.resilience.faults import FaultInjector

    subscribers = {
        "memory": MemoryTracker,
        "faults": FaultInjector,
        "sanitizer": Sanitizer,
    }
    for slot, shapes in REGISTRY_SHAPES.items():
        cls = subscribers[slot]
        for method_name, (positional, required_kw) in shapes.items():
            report.checked += 1
            method = getattr(cls, method_name, None)
            if method is None:
                report.add(
                    Finding(
                        rule="contract-registry-callback-mismatch",
                        message=(
                            f"{cls.__name__} is missing the registry "
                            f"callback {method_name}() the simulator calls"
                        ),
                        kernel=cls.__name__,
                        location=_location_of(cls),
                    )
                )
                continue
            sig = inspect.signature(method)
            count, variadic = _positional_count(sig)
            # +1 for self: inspect.signature on the unbound function keeps it.
            if not variadic and count != len(positional) + 1:
                report.add(
                    Finding(
                        rule="contract-registry-callback-mismatch",
                        message=(
                            f"{cls.__name__}.{method_name} takes "
                            f"{count - 1} positional argument(s); the "
                            f"simulator calls it with "
                            f"{len(positional)}: {positional}"
                        ),
                        kernel=cls.__name__,
                        location=_location_of(method),
                    )
                )
                continue
            for kwarg in required_kw:
                if not _signature_accepts(sig, kwarg):
                    report.add(
                        Finding(
                            rule="contract-registry-callback-mismatch",
                            message=(
                                f"{cls.__name__}.{method_name} does not "
                                f"accept the {kwarg}= keyword the "
                                "simulator passes"
                            ),
                            kernel=cls.__name__,
                            location=_location_of(method),
                        )
                    )


def _check_cli_capabilities(report: AnalysisReport) -> None:
    from repro import cli
    from repro.baselines import GHashEngine, GSortEngine
    from repro.core.framework import GLPEngine

    device_classes = {
        "glp": GLPEngine,
        "gsort": GSortEngine,
        "ghash": GHashEngine,
    }
    for name in cli._DEVICE_ENGINES:
        report.checked += 1
        cls = device_classes.get(name)
        if cls is None:
            report.add(
                Finding(
                    rule="contract-cli-capability-mismatch",
                    message=(
                        f"CLI device engine {name!r} has no known engine "
                        "class; the resilience flags would exit 2 at runtime"
                    ),
                    location=_location_of(cli),
                )
            )
            continue
        if not getattr(cls, "supports_recovery", False):
            report.add(
                Finding(
                    rule="contract-cli-capability-mismatch",
                    message=(
                        f"CLI accepts resilience flags for engine {name!r} "
                        f"but {cls.__name__}.supports_recovery is not True"
                    ),
                    kernel=cls.__name__,
                    location=_location_of(cls),
                )
            )
    # ``--frontier`` is only wired to glp; it requires warm-start support.
    report.checked += 1
    if not getattr(device_classes["glp"], "supports_incremental", False):
        report.add(
            Finding(
                rule="contract-cli-capability-mismatch",
                message=(
                    "CLI wires --frontier to GLPEngine but "
                    "GLPEngine.supports_incremental is not True"
                ),
                kernel="GLPEngine",
                location=_location_of(device_classes["glp"]),
            )
        )


# ---------------------------------------------------------------------------
# AST (fixture/path) mode
# ---------------------------------------------------------------------------


def _class_flags(node: ast.ClassDef) -> Dict[str, bool]:
    flags = {}
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id in CAPABILITY_KWARGS
                and isinstance(stmt.value, ast.Constant)
            ):
                flags[target.id] = bool(stmt.value.value)
    return flags


def _def_accepts(func: ast.FunctionDef, kwarg: str) -> bool:
    if func.args.kwarg is not None:
        return True
    names = [a.arg for a in func.args.args]
    names += [a.arg for a in func.args.kwonlyargs]
    return kwarg in names


def _looks_like_program(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(
            base, "id", ""
        )
        if "LP" in name or "Program" in name:
            return True
    return False


def _check_ast_file(path: str, report: AnalysisReport) -> None:
    with open(path, "r") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        defs = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        flags = _class_flags(node)
        run_def = defs.get("run")
        if flags and run_def is not None:
            report.checked += 1
            for flag, required in CAPABILITY_KWARGS.items():
                if not flags.get(flag):
                    continue
                for kwarg in required:
                    if not _def_accepts(run_def, kwarg):
                        report.add(
                            Finding(
                                rule="contract-missing-capability-kwarg",
                                message=(
                                    f"{node.name} advertises {flag}=True "
                                    f"but run() does not accept {kwarg}="
                                ),
                                kernel=node.name,
                                location=f"{path}:{run_def.lineno}",
                            )
                        )
        if _looks_like_program(node):
            for hook, expected in HOOK_ARITY.items():
                hook_def = defs.get(hook)
                if hook_def is None:
                    continue
                report.checked += 1
                if hook_def.args.vararg is not None:
                    continue
                count = len(hook_def.args.args)
                if count != expected:
                    report.add(
                        Finding(
                            rule="contract-hook-signature-mismatch",
                            message=(
                                f"{node.name}.{hook} takes {count} "
                                f"positional parameter(s); the LPProgram "
                                f"hook contract requires {expected}"
                            ),
                            kernel=node.name,
                            location=f"{path}:{hook_def.lineno}",
                        )
                    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_contracts(paths: Optional[List[str]] = None) -> AnalysisReport:
    """Run the contract checker; returns a ``source="contracts"`` report.

    With ``paths`` the AST checks run on those files; without, the shipped
    engines, LP programs, registry subscribers and CLI wiring are imported
    and verified.
    """
    report = AnalysisReport(source="contracts")
    if paths:
        for path in iter_python_files(paths):
            _check_ast_file(path, report)
        return report
    _check_engine_capabilities(report)
    _check_program_hooks(report)
    _check_registry_subscribers(report)
    _check_cli_capabilities(report)
    return report
