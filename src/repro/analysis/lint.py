"""Static AST lint for LP programs and simulator-API kernel code.

The sanitizer (:mod:`repro.analysis.sanitizer`) catches hazards a run
actually exercises; this linter catches the same bug *classes* before any
run, by walking the Python AST of LP hooks and kernel modules.  Each rule
protects one of the paper's correctness invariants:

``lint-inplace-output-write``
    The four Table-1 hooks (``pick_labels``, ``load_neighbor``, ``score``,
    ``update_vertices``) are device functions the framework may re-invoke,
    reorder, or run over vertex subsets; mutating an input array in place
    races with other blocks reading it.  Hooks must build a fresh array
    (``.copy()`` / ``.astype(..)``) and return it.

``lint-missing-barrier``
    A shared-memory tile stored in one phase and loaded in the next needs a
    ``__syncthreads`` (``device.barrier()``) in between (paper, Section 4.1
    phase structure).

``lint-non-atomic-rmw``
    Load-then-store on a shared array without a barrier or atomic is the
    lost-update pattern; CMS/HT counter bumps must use
    ``shared_atomic_add``.

``lint-divergent-warp-sync``
    ``ballot_sync``/``match_any_sync``/shuffles require converged warps;
    calling them under data-dependent control flow (a branch whose
    condition subscripts an array) is undefined behaviour.

``lint-sketch-bounds``
    ``StrategyConfig``/``CountMinSketch`` sizings must respect the
    Lemma 1–2 regimes in :mod:`repro.sketch.theory` and the shared-memory
    budget, or the MFL fallback probability guarantee evaporates.

``lint-uninitialized-read``
    ``np.empty``/``device.alloc`` buffers read (subscripted) before any
    element is stored.

Suppression: append ``# lint: disable=<rule>[,<rule>...]`` (or
``disable=all``) to the offending line, put
``# lint: disable-next-line=<rule>`` on its own line directly above it
(the form for statements formatters wrap), or put
``# lint: disable-file=<rule>`` anywhere in the file to silence a rule
file-wide.

The checks are deliberately control-flow-insensitive (lexical statement
order) and only fire on patterns they can prove — unknown values and
aliasing they cannot track are assumed fine.  Zero false positives on the
shipped kernels is part of the CI gate.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import os
import textwrap
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import AnalysisReport, Finding

#: The Table-1 hook names whose bodies must not mutate their inputs.
HOOK_NAMES = ("pick_labels", "load_neighbor", "score", "update_vertices")

#: Warp-converged intrinsics (repro.gpusim.warp) that need uniform control
#: flow.
WARP_INTRINSICS = frozenset(
    {
        "ballot_sync",
        "match_any_sync",
        "shfl_sync",
        "shfl_down_sync",
        "shfl_up_sync",
    }
)

#: StrategyConfig defaults (repro.kernels.base) used when a kwarg is absent.
_STRATEGY_DEFAULTS = {
    "high_threshold": 128,
    "ht_capacity": 512,
    "cms_depth": 4,
    "cms_width": 512,
}

#: Shared-memory budget per block (DeviceSpec.shared_mem_per_block).
_SHARED_BUDGET = 96 * 1024

#: Methods that mutate a numpy array in place when called on it.
_MUTATING_METHODS = frozenset({"fill", "sort", "partition", "put"})

#: Methods whose return value is a fresh array (breaks aliasing) unless
#: called with ``copy=False``.
_COPYING_METHODS = frozenset({"copy", "astype"})


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------
def _call_name(node: ast.Call) -> str:
    """Trailing name of the called object: ``a.b.c(...)`` -> ``"c"``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _attr_chain(node: ast.expr) -> List[str]:
    """``device.shared.store`` -> ``["device", "shared", "store"]``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _base_name(node: ast.expr) -> Optional[str]:
    """Root ``Name`` under a Subscript/Attribute chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _literal_int(node: Optional[ast.expr]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def _string_kwarg(node: ast.Call, name: str) -> Optional[str]:
    for kw in node.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    return None


def _functions(tree: ast.AST) -> Iterable[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_statements(func: ast.FunctionDef) -> Iterable[ast.stmt]:
    """All statements of ``func`` excluding nested function bodies."""
    stack: List[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)
    return


class _Lint:
    """One lint pass over one parsed source file."""

    def __init__(self, tree: ast.Module, source: str, filename: str) -> None:
        self.tree = tree
        self.lines = source.splitlines()
        self.filename = filename
        self.findings: List[Finding] = []
        self._file_disabled = self._scan_file_directives()

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        self._check_sketch_bounds(self.tree)
        for func in _functions(self.tree):
            if func.name in HOOK_NAMES:
                self._check_hook_purity(func)
            self._check_shared_phases(func)
            self._check_divergent_sync(func)
            self._check_uninitialized(func)
        return self.findings

    def _scan_file_directives(self) -> Set[str]:
        disabled: Set[str] = set()
        for line in self.lines:
            marker = "# lint: disable-file="
            idx = line.find(marker)
            if idx >= 0:
                for rule in line[idx + len(marker):].split(","):
                    disabled.add(rule.strip())
        return disabled

    def _suppressed(self, rule: str, lineno: int) -> bool:
        if rule in self._file_disabled or "all" in self._file_disabled:
            return True
        if 1 <= lineno <= len(self.lines):
            line = self.lines[lineno - 1]
            marker = "# lint: disable="
            idx = line.find(marker)
            if idx >= 0:
                rules = {
                    r.strip()
                    for r in line[idx + len(marker):].split(",")
                }
                if rule in rules or "all" in rules:
                    return True
            rules = self._next_line_rules(lineno)
            return rule in rules or "all" in rules
        return False

    def _next_line_rules(self, lineno: int) -> Set[str]:
        """Rules disabled for ``lineno`` by standalone comment lines above.

        ``# lint: disable-next-line=<rule>[,<rule>...]`` on its own line
        suppresses the next source line — the form to use when the
        offending statement is too long for an end-of-line directive
        (formatters wrap it).  Consecutive directive lines stack.
        """
        marker = "# lint: disable-next-line="
        rules: Set[str] = set()
        index = lineno - 2  # zero-based index of the preceding line
        while index >= 0:
            line = self.lines[index].strip()
            if not line.startswith("#"):
                break
            pos = line.find(marker)
            if pos < 0:
                break
            rules.update(
                r.strip() for r in line[pos + len(marker):].split(",")
            )
            index -= 1
        return rules

    def _emit(self, rule: str, lineno: int, message: str, **kw) -> None:
        if self._suppressed(rule, lineno):
            return
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                location=f"{self.filename}:{lineno}",
                **kw,
            )
        )

    # ------------------------------------------------------------------
    # lint-inplace-output-write
    # ------------------------------------------------------------------
    def _check_hook_purity(self, func: ast.FunctionDef) -> None:
        params = {
            a.arg
            for a in (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
            if a.arg != "self"
        }
        aliases = set(params)
        for stmt in _own_statements(func):
            # Alias tracking: plain rebinds extend or break the alias set.
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if self._aliases_param(stmt.value, aliases):
                        aliases.add(target.id)
                    else:
                        aliases.discard(target.id)
            self._flag_param_writes(stmt, aliases, params)

    def _aliases_param(self, value: ast.expr, aliases: Set[str]) -> bool:
        """Does evaluating ``value`` yield a view of an aliased array?"""
        if isinstance(value, ast.Name):
            return value.id in aliases
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in _COPYING_METHODS:
                for kw in value.keywords:
                    if (
                        kw.arg == "copy"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        base = _base_name(value.func)
                        return base in aliases
                return False  # fresh array
            if name == "asarray" and value.args:
                return self._aliases_param(value.args[0], aliases)
            return False
        if isinstance(value, ast.Subscript):
            # Slicing an aliased array yields a view.
            return _base_name(value) in aliases
        return False

    def _flag_param_writes(
        self, stmt: ast.stmt, aliases: Set[str], params: Set[str]
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                base = _base_name(target)
                if base in aliases:
                    origin = "" if base in params else " (aliases an input)"
                    self._emit(
                        "lint-inplace-output-write",
                        target.lineno,
                        f"hook writes into input array {base!r}"
                        f"{origin} — hooks must return a fresh array "
                        "(.copy() first), in-place writes race with "
                        "other blocks",
                        array=base,
                    )
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATING_METHODS
            ):
                base = _base_name(call.func.value)
                if base in aliases:
                    self._emit(
                        "lint-inplace-output-write",
                        call.lineno,
                        f"hook mutates input array {base!r} via "
                        f".{call.func.attr}() — copy it first",
                        array=base,
                    )

    # ------------------------------------------------------------------
    # lint-missing-barrier / lint-non-atomic-rmw
    # ------------------------------------------------------------------
    def _check_shared_phases(self, func: ast.FunctionDef) -> None:
        events: List[Tuple[int, str, str]] = []  # (lineno, op, array)
        for stmt in _own_statements(func):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                name = chain[-1] if chain else ""
                if name == "barrier" or name == "block_reduce_max_cost":
                    events.append((node.lineno, "barrier", ""))
                elif "shared" in chain[:-1] and name in ("load", "store"):
                    array = _string_kwarg(node, "array")
                    if array:
                        events.append((node.lineno, name, array))
                elif name == "shared_atomic_add":
                    array = _string_kwarg(node, "array")
                    if array:
                        events.append((node.lineno, "atomic", array))
        events.sort(key=lambda e: e[0])

        pending_stores: Dict[str, int] = {}
        pending_loads: Dict[str, int] = {}
        flagged: Set[Tuple[str, str]] = set()
        for lineno, op, array in events:
            if op == "barrier":
                pending_stores.clear()
                pending_loads.clear()
            elif op == "load":
                if array in pending_stores and ("mb", array) not in flagged:
                    flagged.add(("mb", array))
                    self._emit(
                        "lint-missing-barrier",
                        lineno,
                        f"shared array {array!r} loaded after a store "
                        f"(line {pending_stores[array]}) with no "
                        "intervening device.barrier() — the producing "
                        "phase is not published",
                        array=array,
                        space="shared",
                    )
                pending_loads[array] = lineno
            elif op == "store":
                if array in pending_loads and ("rmw", array) not in flagged:
                    flagged.add(("rmw", array))
                    self._emit(
                        "lint-non-atomic-rmw",
                        lineno,
                        f"shared array {array!r} stored after a load "
                        f"(line {pending_loads[array]}) with no barrier "
                        "or atomic — lost updates under contention; use "
                        "shared_atomic_add",
                        array=array,
                        space="shared",
                    )
                pending_stores[array] = lineno
            # atomics neither publish nor consume: no state change

    # ------------------------------------------------------------------
    # lint-divergent-warp-sync
    # ------------------------------------------------------------------
    def _check_divergent_sync(self, func: ast.FunctionDef) -> None:
        self._walk_divergence(func.body, divergent_line=None)

    def _walk_divergence(
        self, stmts: Sequence[ast.stmt], divergent_line: Optional[int]
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if divergent_line is not None:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and _call_name(node) in WARP_INTRINSICS
                    ):
                        self._emit(
                            "lint-divergent-warp-sync",
                            node.lineno,
                            f"{_call_name(node)} under data-dependent "
                            f"control flow (branch at line "
                            f"{divergent_line} subscripts an array) — "
                            "warp-sync intrinsics require converged "
                            "warps",
                        )
                continue  # nested statements already covered by the walk
            if isinstance(stmt, (ast.If, ast.While)):
                test_divergent = any(
                    isinstance(n, ast.Subscript) for n in ast.walk(stmt.test)
                )
                child_ctx = stmt.test.lineno if test_divergent else None
                self._walk_divergence(stmt.body, child_ctx)
                self._walk_divergence(stmt.orelse, divergent_line)
            else:
                for field in ("body", "orelse", "finalbody"):
                    self._walk_divergence(
                        getattr(stmt, field, []) or [], divergent_line
                    )
                for handler in getattr(stmt, "handlers", []) or []:
                    self._walk_divergence(handler.body, divergent_line)

    # ------------------------------------------------------------------
    # lint-sketch-bounds
    # ------------------------------------------------------------------
    def _check_sketch_bounds(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "StrategyConfig":
                self._check_strategy_config(node)
            elif name == "CountMinSketch":
                self._check_cms_call(node)

    def _kwarg_values(self, node: ast.Call, names) -> Dict[str, Optional[int]]:
        """Literal value, default, or ``None`` (=unknown) per kwarg."""
        values: Dict[str, Optional[int]] = {
            n: _STRATEGY_DEFAULTS[n] for n in names
        }
        for kw in node.keywords:
            if kw.arg in values:
                values[kw.arg] = _literal_int(kw.value)
        return values

    def _check_strategy_config(self, node: ast.Call) -> None:
        v = self._kwarg_values(node, _STRATEGY_DEFAULTS)
        ht, thr = v["ht_capacity"], v["high_threshold"]
        d, w = v["cms_depth"], v["cms_width"]
        if ht is not None and thr is not None and ht < thr:
            self._emit(
                "lint-sketch-bounds",
                node.lineno,
                f"ht_capacity={ht} < high_threshold={thr}: Lemma 1 "
                "needs h >= the distinct-label bound of the bin, or "
                "the HT-hit guarantee is void",
            )
        if d is not None and d < 2:
            self._emit(
                "lint-sketch-bounds",
                node.lineno,
                f"cms_depth={d} < 2: Lemma 2's fallback probability is "
                "m*2^-d — one row gives 50% per label",
            )
        if w is not None and thr is not None and w < 2 * thr:
            self._emit(
                "lint-sketch-bounds",
                node.lineno,
                f"cms_width={w} < 2*high_threshold={2 * thr}: Lemma 2 "
                "assumes w = 2s for s insertions per vertex",
            )
        if ht is not None and d is not None and w is not None:
            nbytes = ht * 8 + d * w * 4
            if nbytes > _SHARED_BUDGET:
                self._emit(
                    "lint-sketch-bounds",
                    node.lineno,
                    f"HT+CMS shared footprint {nbytes} B exceeds the "
                    f"{_SHARED_BUDGET} B per-block budget",
                )

    def _check_cms_call(self, node: ast.Call) -> None:
        depth: Optional[int] = None
        if node.args:
            depth = _literal_int(node.args[0])
        for kw in node.keywords:
            if kw.arg == "depth":
                depth = _literal_int(kw.value)
        if depth is not None and depth < 2:
            self._emit(
                "lint-sketch-bounds",
                node.lineno,
                f"CountMinSketch depth={depth} < 2: Lemma 2's failure "
                "probability 2^-d per label needs d >= 2",
            )

    # ------------------------------------------------------------------
    # lint-uninitialized-read
    # ------------------------------------------------------------------
    def _check_uninitialized(self, func: ast.FunctionDef) -> None:
        # (lineno, order, kind, name): kind in {alloc, init, read};
        # ``order`` breaks same-line ties (reads before writes for
        # AugAssign, allocs last so ``x = np.empty(...)`` does not
        # "initialize" a previous x).
        events: List[Tuple[int, int, str, str]] = []
        for stmt in _own_statements(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    stmt.value, ast.Call
                ):
                    cname = _call_name(stmt.value)
                    if cname in ("empty", "empty_like", "alloc"):
                        events.append((stmt.lineno, 2, "alloc", target.id))
                        continue
            if isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Subscript
            ):
                base = _base_name(stmt.target)
                if base:
                    # ``buf[i] += x`` reads before writing.
                    events.append((stmt.lineno, 0, "read", base))
            for node in ast.walk(stmt):
                if isinstance(node, ast.Subscript):
                    base = _base_name(node)
                    if not base:
                        continue
                    if isinstance(node.ctx, ast.Load):
                        events.append((node.lineno, 0, "read", base))
                    else:  # Store / Del
                        events.append((node.lineno, 1, "init", base))
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATING_METHODS
                    ):
                        base = _base_name(node.func.value)
                        if base:
                            events.append((node.lineno, 1, "init", base))
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        if isinstance(arg, ast.Name):
                            # The callee may initialize it: stop tracking.
                            events.append((node.lineno, 1, "init", arg.id))

        events.sort(key=lambda e: (e[0], e[1]))
        uninit: Dict[str, int] = {}
        for lineno, _order, kind, name in events:
            if kind == "alloc":
                uninit[name] = lineno
            elif kind == "init":
                uninit.pop(name, None)
            elif kind == "read" and name in uninit:
                self._emit(
                    "lint-uninitialized-read",
                    lineno,
                    f"{name!r} (allocated uninitialized at line "
                    f"{uninit[name]}) is read before any element is "
                    "written",
                    array=name,
                )
                uninit.pop(name, None)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def lint_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Lint one source string; returns the findings (possibly empty)."""
    tree = ast.parse(source, filename=filename)
    return _Lint(tree, source, filename).run()


def lint_file(path: str) -> List[Finding]:
    with open(path, "r") as fh:
        source = fh.read()
    return lint_source(source, filename=path)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__"
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str]) -> AnalysisReport:
    """Lint files and directories into one :class:`AnalysisReport`."""
    report = AnalysisReport(source="lint")
    for path in iter_python_files(paths):
        report.extend(lint_file(path))
        report.checked += 1
    return report


def lint_module(module) -> AnalysisReport:
    """Lint an imported module (or dotted module name)."""
    if isinstance(module, str):
        module = importlib.import_module(module)
    path = inspect.getsourcefile(module)
    if path is None:
        raise ValueError(f"cannot locate source for module {module!r}")
    report = AnalysisReport(source="lint")
    report.extend(lint_file(path))
    report.checked = 1
    return report


def lint_program(program) -> AnalysisReport:
    """Lint the overridden Table-1 hooks of an LPProgram instance."""
    report = AnalysisReport(source="lint")
    cls = type(program)
    for hook in HOOK_NAMES:
        impl = getattr(cls, hook, None)
        if impl is None:
            continue
        # Skip hooks inherited unchanged from the framework defaults.
        defining = next(
            (c for c in cls.__mro__ if hook in vars(c)), None
        )
        if defining is None or defining.__module__ == "repro.core.api":
            continue
        try:
            source = textwrap.dedent(inspect.getsource(impl))
            filename = inspect.getsourcefile(impl) or f"<{cls.__name__}>"
        except (OSError, TypeError):
            continue
        report.extend(lint_source(source, filename=filename))
        report.checked += 1
    return report
