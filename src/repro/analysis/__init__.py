"""Correctness tooling for the GLP reproduction: sanitizer + LP lint.

Two layers, one finding currency (:mod:`repro.analysis.findings`):

* :mod:`repro.analysis.sanitizer` — a compute-sanitizer-style *dynamic*
  race/sync checker inside :mod:`repro.gpusim`.  Enable per launch
  (``device.launch(name, sanitize=True)``), per device
  (``Device(spec, sanitize=True)`` or ``DeviceSpec(sanitize=True)``), or
  ambiently for a whole run with :func:`sanitize` — mirroring how
  :mod:`repro.obs` sessions wrap engines that build their own devices::

      with analysis.sanitize() as san:
          engine.run(graph, program)
      report = san.report()        # AnalysisReport; san.has_hazards gates

* :mod:`repro.analysis.lint` — a *static* AST checker over LP-program
  hooks and simulator-API kernel code (``repro check`` on the CLI).

Three further static layers ride behind ``repro check --all``:

* :mod:`repro.analysis.dataflow` — interval abstract interpretation
  proving shared-memory accesses in-bounds for every launch geometry;
* :mod:`repro.analysis.contracts` — engine-capability / hook-signature /
  registry-callback / CLI-wiring contract checks;
* :mod:`repro.analysis.consistency` — cross-module literal-drift lint
  deriving the schema enums ``check_obs_schema.py`` validates against.

All are off by default and, like observability, never perturb labels,
hashes, counters, or modeled timings.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.analysis.consistency import check_consistency, derive_enums
from repro.analysis.contracts import check_contracts
from repro.analysis.dataflow import check_dataflow
from repro.analysis.findings import (
    RULES,
    SCHEMA_VERSION,
    SEVERITIES,
    SOURCES,
    AnalysisReport,
    Finding,
)
from repro.analysis.lint import (
    HOOK_NAMES,
    iter_python_files,
    lint_file,
    lint_module,
    lint_paths,
    lint_program,
    lint_source,
)
from repro.analysis.sanitizer import Sanitizer, SanitizerConfig
from repro.gpusim import hooks as _hooks

__all__ = [
    "RULES",
    "SCHEMA_VERSION",
    "SEVERITIES",
    "SOURCES",
    "AnalysisReport",
    "Finding",
    "HOOK_NAMES",
    "Sanitizer",
    "SanitizerConfig",
    "check_consistency",
    "check_contracts",
    "check_dataflow",
    "derive_enums",
    "disable_sanitizer",
    "enable_sanitizer",
    "iter_python_files",
    "lint_file",
    "lint_module",
    "lint_paths",
    "lint_program",
    "lint_source",
    "sanitize",
    "session_sanitizer",
]


def enable_sanitizer(
    config: Optional[SanitizerConfig] = None,
) -> Sanitizer:
    """Install an ambient session sanitizer and return it.

    Every subsequent kernel launch on any device attaches to it (unless
    the launch explicitly passes ``sanitize=False``).  Call
    :func:`disable_sanitizer` to detach.
    """
    sanitizer = Sanitizer(config=config)
    _hooks.set_session(sanitizer)
    return sanitizer


def disable_sanitizer() -> None:
    """Remove the ambient session sanitizer, if any."""
    _hooks.set_session(None)


def session_sanitizer() -> Optional[Sanitizer]:
    """The currently-installed ambient sanitizer, if any."""
    return _hooks.session()


@contextlib.contextmanager
def sanitize(
    config: Optional[SanitizerConfig] = None,
) -> Iterator[Sanitizer]:
    """Context manager scoping an ambient sanitizer to a ``with`` block."""
    previous = _hooks.session()
    sanitizer = enable_sanitizer(config)
    try:
        yield sanitizer
    finally:
        _hooks.set_session(previous)
