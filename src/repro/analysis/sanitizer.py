"""Compute-sanitizer-style race and sync checking for the GPU simulator.

The real CUDA ``compute-sanitizer`` tools (racecheck/synccheck) watch every
shared/global access a kernel makes and flag pairs that are not ordered by
the memory model.  The simulator executes kernels functionally in numpy, so
the same idea becomes *shadow accounting*: while a sanitized kernel launch
is in flight, the accounting models forward every **named** array access
here — per-lane offsets, the warp/lane that issued them, whether the access
was a read, a plain write, an idempotent write or an atomic — and barriers
advance a happens-before *epoch*.  At ``end_kernel`` the recorded access
sets are analyzed:

=============================  =======================================
Rule                           Hazard
=============================  =======================================
``racecheck-write-write``      two lanes plain-write one offset in one
                               epoch (incl. mixed atomic + plain)
``racecheck-read-write``       a lane reads an offset another lane
                               writes in the same epoch
``racecheck-non-atomic-rmw``   contended offset where a writing lane
                               also reads it (load/add/store instead of
                               ``atomicAdd``)
``racecheck-oob-shared``       shared-memory offset outside the
                               declared extent
``synccheck-barrier-divergence``  a barrier some warps never reach
``synccheck-empty-mask``       a warp executes a ``*_sync`` intrinsic
                               with no active lanes
``perf-bank-conflict-hotspot`` shared-array replay rate above the
                               configured threshold (warning)
=============================  =======================================

Accesses from different epochs never conflict (the barrier orders them);
atomics never conflict with atomics; *idempotent* writes (every lane
stores the same value, e.g. the frontier bitmap's byte stores) never
conflict with each other — that is the sanitizer's suppression mechanism
for the paper's deliberate benign races (see ``docs/analysis.md``).

The sanitizer only **observes**: it never touches
:class:`~repro.gpusim.counters.PerfCounters` or any functional array, so
sanitized runs are bitwise identical to unsanitized ones
(``tests/analysis/test_identity.py`` enforces this differentially).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.findings import AnalysisReport, Finding

#: Access kinds recorded by the accounting models.
READ = 0
WRITE = 1
ATOMIC = 2
IDEMPOTENT = 3

_KIND_CODES = {
    "read": READ,
    "write": WRITE,
    "atomic": ATOMIC,
    "idempotent": IDEMPOTENT,
}

#: Lane bits used when packing (warp, lane) into one actor id.
_LANE_BITS = 6  # supports warp_size <= 64


@dataclass(frozen=True)
class SanitizerConfig:
    """Tuning knobs for the sanitizer."""

    #: Shared-memory replay rate (replays per access) above which a
    #: ``perf-bank-conflict-hotspot`` warning is emitted for an array.
    bank_conflict_threshold: float = 1.0
    #: Minimum shared accesses before the hotspot rule applies (tiny
    #: kernels produce noisy rates).
    bank_conflict_min_ops: int = 256
    #: Conflicting (warp, lane) pairs attached to each finding.
    max_actor_samples: int = 2


@dataclass
class _ArrayLog:
    """Raw access chunks recorded for one (space, array) in one kernel."""

    offsets: List[np.ndarray] = field(default_factory=list)
    actors: List[np.ndarray] = field(default_factory=list)
    kinds: List[np.ndarray] = field(default_factory=list)
    epochs: List[np.ndarray] = field(default_factory=list)
    size: Optional[int] = None  # declared extent (shared arrays)


class Sanitizer:
    """Shadow-memory race detector for simulated kernel launches.

    One instance can span many launches (and many devices — the simulator
    executes launches sequentially); findings accumulate across them and
    :meth:`report` snapshots everything seen so far.
    """

    def __init__(
        self,
        *,
        warp_size: int = 32,
        num_banks: int = 32,
        config: Optional[SanitizerConfig] = None,
    ) -> None:
        self.warp_size = warp_size
        self.num_banks = num_banks
        self.config = config if config is not None else SanitizerConfig()
        self.findings: List[Finding] = []
        self.kernels_checked = 0
        self._kernel: Optional[str] = None
        self._device_index = 0
        self._epoch = 0
        self._logs: Dict[Tuple[str, str], _ArrayLog] = {}

    # ------------------------------------------------------------------
    # Kernel lifecycle (driven by Device.launch)
    # ------------------------------------------------------------------
    @property
    def in_kernel(self) -> bool:
        return self._kernel is not None

    def begin_kernel(self, name: str, *, device_index: int = 0) -> None:
        self._kernel = name
        self._device_index = device_index
        self._epoch = 0
        self._logs = {}

    def end_kernel(self) -> None:
        """Analyze the recorded access sets and append findings."""
        if self._kernel is None:
            return
        try:
            for (space, array), log in self._logs.items():
                self._analyze_array(space, array, log)
        finally:
            self.kernels_checked += 1
            self._kernel = None
            self._logs = {}
            self._epoch = 0

    # ------------------------------------------------------------------
    # Event recording (called by the accounting models / intrinsics)
    # ------------------------------------------------------------------
    def record(
        self,
        space: str,
        array: str,
        offsets,
        *,
        kind: str,
        warp_ids=None,
        lane_ids=None,
        size: Optional[int] = None,
    ) -> None:
        """Record one batch of per-lane accesses to a named array.

        ``offsets`` are element/word indices; ``warp_ids`` follows the
        accounting models' convention (consecutive elements on consecutive
        lanes when omitted).  ``size`` declares the array extent for
        out-of-bounds checking (shared tiles).
        """
        if self._kernel is None:
            return
        offsets = np.atleast_1d(np.asarray(offsets, dtype=np.int64))
        n = offsets.size
        if n == 0:
            if size is not None:
                self._log_for(space, array, size)
            return
        if warp_ids is None:
            warps = np.arange(n, dtype=np.int64) // self.warp_size
        else:
            warps = np.atleast_1d(np.asarray(warp_ids, dtype=np.int64))
        if lane_ids is None:
            lanes = np.arange(n, dtype=np.int64) % self.warp_size
        else:
            lanes = np.atleast_1d(np.asarray(lane_ids, dtype=np.int64))
        actors = (warps << _LANE_BITS) | (lanes & ((1 << _LANE_BITS) - 1))
        log = self._log_for(space, array, size)
        log.offsets.append(offsets.copy())
        log.actors.append(actors)
        log.kinds.append(
            np.full(n, _KIND_CODES[kind], dtype=np.int8)
        )
        log.epochs.append(np.full(n, self._epoch, dtype=np.int64))

    def _log_for(
        self, space: str, array: str, size: Optional[int]
    ) -> _ArrayLog:
        log = self._logs.setdefault((space, array), _ArrayLog())
        if size is not None:
            log.size = int(size)
        return log

    def barrier(
        self,
        *,
        expected_warps: Optional[int] = None,
        arrived_warps: Optional[int] = None,
    ) -> None:
        """A block-wide barrier: orders everything before vs after.

        When the caller reports arrival counts and they disagree, the
        barrier is divergent — deadlock/UB on real hardware.
        """
        if self._kernel is None:
            return
        self._epoch += 1
        if (
            expected_warps is not None
            and arrived_warps is not None
            and int(arrived_warps) != int(expected_warps)
        ):
            self._add(
                Finding(
                    rule="synccheck-barrier-divergence",
                    kernel=self._kernel,
                    message=(
                        f"barrier reached by {int(arrived_warps)} of "
                        f"{int(expected_warps)} warps — divergent "
                        "__syncthreads deadlocks on real hardware"
                    ),
                )
            )

    def warp_sync(self, intrinsic: str, active) -> None:
        """A warp-sync intrinsic executed over ``(W, warp_size)`` masks.

        A warp whose active mask is empty names lanes that never reach the
        intrinsic — undefined behaviour for ``__ballot_sync`` and friends.
        """
        if self._kernel is None:
            return
        active = np.asarray(active, dtype=bool)
        if active.ndim != 2 or active.size == 0:
            return
        empty = np.flatnonzero(~active.any(axis=1))
        if empty.size:
            self._add(
                Finding(
                    rule="synccheck-empty-mask",
                    kernel=self._kernel,
                    array=intrinsic,
                    message=(
                        f"{intrinsic} executed by warp {int(empty[0])} "
                        "with an empty active mask (no participating "
                        "lanes)"
                    ),
                    actors=((int(empty[0]), 0),),
                    count=int(empty.size),
                )
            )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def _add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def _analyze_array(self, space: str, array: str, log: _ArrayLog) -> None:
        if not log.offsets:
            return
        offsets = np.concatenate(log.offsets)
        actors = np.concatenate(log.actors)
        kinds = np.concatenate(log.kinds)
        epochs = np.concatenate(log.epochs)

        # --- out-of-bounds (declared shared extents) -------------------
        if log.size is not None:
            oob = (offsets < 0) | (offsets >= log.size)
            if oob.any():
                bad = np.flatnonzero(oob)
                self._add(
                    Finding(
                        rule="racecheck-oob-shared",
                        kernel=self._kernel or "",
                        array=array,
                        space=space,
                        offset=int(offsets[bad[0]]),
                        message=(
                            f"access outside declared extent "
                            f"[0, {log.size}) — first offending offset "
                            f"{int(offsets[bad[0]])}"
                        ),
                        actors=self._sample_actors(actors[bad]),
                        count=int(bad.size),
                    )
                )
                keep = ~oob
                offsets, actors = offsets[keep], actors[keep]
                kinds, epochs = kinds[keep], epochs[keep]

        # --- bank-conflict hotspot (shared arrays, advisory) -----------
        if space == "shared" and offsets.size >= self.config.bank_conflict_min_ops:
            self._check_bank_hotspot(array, offsets, actors)

        # --- data races ------------------------------------------------
        self._check_races(space, array, offsets, actors, kinds, epochs)

    def _check_bank_hotspot(
        self, array: str, offsets: np.ndarray, actors: np.ndarray
    ) -> None:
        # Imported lazily: the simulator must stay loadable without the
        # analysis package and vice versa.
        from repro.gpusim.sharedmem import bank_conflict_replays

        warps = actors >> _LANE_BITS
        replays = bank_conflict_replays(offsets, warps, self.num_banks)
        rate = replays / offsets.size
        if rate > self.config.bank_conflict_threshold:
            self._add(
                Finding(
                    rule="perf-bank-conflict-hotspot",
                    kernel=self._kernel or "",
                    array=array,
                    space="shared",
                    message=(
                        f"{replays} bank-conflict replays over "
                        f"{offsets.size} accesses "
                        f"(rate {rate:.2f} > threshold "
                        f"{self.config.bank_conflict_threshold:.2f})"
                    ),
                )
            )

    def _check_races(
        self,
        space: str,
        array: str,
        offsets: np.ndarray,
        actors: np.ndarray,
        kinds: np.ndarray,
        epochs: np.ndarray,
    ) -> None:
        writes = kinds == WRITE
        idems = kinds == IDEMPOTENT
        if not (writes.any() or idems.any()):
            return  # read/atomic-only arrays cannot race

        # Pack (epoch, offset) into one group key.
        mult = int(offsets.max()) + 1 if offsets.size else 1
        keys = epochs * mult + offsets

        w_keys, w_counts, w_single = _distinct_actor_stats(
            keys[writes], actors[writes]
        )
        i_keys, i_counts, i_single = _distinct_actor_stats(
            keys[idems], actors[idems]
        )
        r_keys, r_counts, r_single = _distinct_actor_stats(
            keys[kinds == READ], actors[kinds == READ]
        )
        a_keys = np.unique(keys[kinds == ATOMIC])

        hazard_keys: Dict[int, str] = {}

        # Plain writes contended by >= 2 distinct lanes.
        for key in w_keys[w_counts >= 2]:
            hazard_keys[int(key)] = "racecheck-write-write"
        # Plain write + plain write is symmetric; plain + idempotent and
        # plain + atomic still conflict (the idempotent/atomic access can
        # observe or lose the unordered plain write).
        for key in _conflicting(w_keys, w_single, i_keys, i_single):
            hazard_keys.setdefault(int(key), "racecheck-write-write")
        for key in np.intersect1d(w_keys, a_keys):
            hazard_keys.setdefault(int(key), "racecheck-write-write")
        # Write vs read from a different lane.
        for key in _conflicting(w_keys, w_single, r_keys, r_single):
            hazard_keys.setdefault(int(key), "racecheck-read-write")
        # Idempotent write vs read (the reader may see either value).
        for key in _conflicting(i_keys, i_single, r_keys, r_single):
            hazard_keys.setdefault(int(key), "racecheck-read-write")

        if not hazard_keys:
            return

        # Upgrade contended-write groups where a writer also reads the
        # offset: that is a lost-update RMW, the classic "should have been
        # an atomicAdd" bug.
        write_pairs = _pair_index(keys[writes], actors[writes])
        read_pairs = _pair_index(keys[kinds == READ], actors[kinds == READ])
        per_rule: Dict[str, List[int]] = {}
        rule_actors: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        for key, rule in hazard_keys.items():
            if rule == "racecheck-write-write" and _pairs_overlap(
                write_pairs, read_pairs, key
            ):
                rule = "racecheck-non-atomic-rmw"
            per_rule.setdefault(rule, []).append(key)
            if rule not in rule_actors:
                involved = np.unique(
                    np.concatenate(
                        (
                            _actors_of(write_pairs, key),
                            _actors_of(read_pairs, key),
                            _actors_of(
                                _pair_index(keys[idems], actors[idems]), key
                            ),
                        )
                    )
                )
                rule_actors[rule] = self._sample_actors(involved)

        messages = {
            "racecheck-write-write": (
                "unsynchronized writes to the same offset from multiple "
                "lanes in one barrier interval — use atomics or separate "
                "the phases with a barrier"
            ),
            "racecheck-read-write": (
                "offset read and written by different lanes in the same "
                "barrier interval — publish with a barrier before "
                "consuming"
            ),
            "racecheck-non-atomic-rmw": (
                "non-atomic read-modify-write on a contended offset — "
                "lost updates; use atomicAdd (shared_atomic_add)"
            ),
        }
        for rule, rule_keys in per_rule.items():
            first = min(rule_keys)
            self._add(
                Finding(
                    rule=rule,
                    kernel=self._kernel or "",
                    array=array,
                    space=space,
                    offset=int(first % mult),
                    message=messages[rule],
                    actors=rule_actors.get(rule, ()),
                    count=len(rule_keys),
                )
            )

    def _sample_actors(
        self, actors: np.ndarray
    ) -> Tuple[Tuple[int, int], ...]:
        unique = np.unique(actors)[: self.config.max_actor_samples]
        return tuple(
            (int(a) >> _LANE_BITS, int(a) & ((1 << _LANE_BITS) - 1))
            for a in unique
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def has_hazards(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    def report(self) -> AnalysisReport:
        report = AnalysisReport(
            source="sanitizer", checked=self.kernels_checked
        )
        report.extend(self.findings)
        return report


# ----------------------------------------------------------------------
# Group-statistics helpers (module-level, reused by tests)
# ----------------------------------------------------------------------
def _distinct_actor_stats(keys: np.ndarray, actors: np.ndarray):
    """Per group key: distinct-actor count and the single actor if unique.

    Returns ``(group_keys, distinct_counts, single_actor)`` where
    ``single_actor[i]`` is the lone actor of group ``i`` (or -1 when the
    group has several).
    """
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    order = np.lexsort((actors, keys))
    k = keys[order]
    a = actors[order]
    keep = np.concatenate(([True], (k[1:] != k[:-1]) | (a[1:] != a[:-1])))
    k, a = k[keep], a[keep]
    boundaries = np.flatnonzero(
        np.concatenate(([True], k[1:] != k[:-1]))
    )
    counts = np.diff(np.concatenate((boundaries, [k.size])))
    group_keys = k[boundaries]
    single = np.where(counts == 1, a[boundaries], -1)
    return group_keys, counts.astype(np.int64), single


def _conflicting(
    keys_a: np.ndarray,
    single_a: np.ndarray,
    keys_b: np.ndarray,
    single_b: np.ndarray,
) -> np.ndarray:
    """Group keys present in both sides with at least two distinct actors.

    A key conflicts unless each side has exactly one actor and it is the
    *same* actor (one lane touching its own slot twice is sequential).
    """
    common, ia, ib = np.intersect1d(
        keys_a, keys_b, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return common
    same_single = (
        (single_a[ia] >= 0)
        & (single_b[ib] >= 0)
        & (single_a[ia] == single_b[ib])
    )
    return common[~same_single]


def _pair_index(keys: np.ndarray, actors: np.ndarray):
    """Sorted (keys, actors) for key-sliced actor lookups."""
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    order = np.lexsort((actors, keys))
    return keys[order], actors[order]


def _actors_of(pair_index, key: int) -> np.ndarray:
    keys, actors = pair_index
    lo = np.searchsorted(keys, key, side="left")
    hi = np.searchsorted(keys, key, side="right")
    return actors[lo:hi]


def _pairs_overlap(write_pairs, read_pairs, key: int) -> bool:
    """Does any actor both write and read ``key``'s offset in its epoch?"""
    writers = _actors_of(write_pairs, key)
    readers = _actors_of(read_pairs, key)
    if writers.size == 0 or readers.size == 0:
        return False
    return bool(np.intersect1d(writers, readers).size)
