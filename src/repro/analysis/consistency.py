"""Cross-module literal-drift lint: one derived source of truth.

The observability stack names things with string literals at their emit
sites — metric names (``metrics().inc("engine_runs_total")``), journal
event names (``obs.emit("slide.start")``), allocation categories
(``alloc_scope("csr")``), finding rule IDs (``Finding(rule=...)``) and
``SCHEMA_VERSION`` constants — while the declared enums lived in three
hand-synced lists (``findings.RULES``, ``check_obs_schema.py``, docs).
This module extracts every literal at its emit site (with local constant
propagation, so ``counter = "resilience_retries_total"``/``m.inc(counter)``
resolves) and diffs the result against the declared enums.  The derived
enum set is written to ``benchmarks/obs_schema_enums.json`` (via
``python -m repro.analysis.consistency --write``), which
``check_obs_schema.py`` loads instead of maintaining its own copies.

Rules: ``consistency-metric-drift``, ``consistency-event-drift``,
``consistency-rule-drift``, ``consistency-category-drift``,
``consistency-schema-version-drift`` (all errors, each anchored at the
drifting emit site or at the stale enum file) and
``consistency-doc-stale`` (warning: docs mentioning a rule ID that no
longer exists).
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import findings as findings_mod
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.lint import _attr_chain, iter_python_files

#: Registry methods whose first argument names a metric.
_METRIC_METHODS = {"inc", "set_gauge", "observe", "counter", "gauge", "histogram"}

#: Files excluded from metric extraction: the registry itself forwards
#: caller-supplied names through these same method names.
_METRIC_EXCLUDE = ("obs", "metrics.py")

_RULE_SHAPE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)+$")

#: Relative path of the committed derived-enum file.
ENUMS_RELPATH = os.path.join("benchmarks", "obs_schema_enums.json")

_REGENERATE_HINT = (
    "regenerate with: PYTHONPATH=src python -m repro.analysis.consistency "
    "--write benchmarks/obs_schema_enums.json"
)


# ---------------------------------------------------------------------------
# Literal extraction
# ---------------------------------------------------------------------------

Site = Tuple[str, str, int]  # (literal, path, lineno)


class ExtractedLiterals:
    def __init__(self) -> None:
        self.metrics: List[Site] = []
        self.events: List[Site] = []
        self.categories: List[Site] = []
        self.rules: List[Site] = []
        self.schema_versions: Dict[str, Tuple[int, str]] = {}
        #: Every string constant per file (the rule-coverage direction).
        self.constants: Set[str] = set()

    @property
    def num_sites(self) -> int:
        return (
            len(self.metrics)
            + len(self.events)
            + len(self.categories)
            + len(self.rules)
            + len(self.schema_versions)
        )


def _scope_statements(body) -> List[ast.stmt]:
    """Statements of one scope, not descending into nested def/class."""
    out: List[ast.stmt] = []
    stack = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
    return out


def _string_args(call: ast.Call, env: Dict[str, Set[str]]) -> Set[str]:
    """Possible string values of the call's first argument."""
    if not call.args:
        return set()
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return {arg.value}
    if isinstance(arg, ast.Name):
        return env.get(arg.id, set())
    return set()


def _extract_file(path: str, out: ExtractedLiterals) -> None:
    with open(path, "r") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    is_metric_registry = path.endswith(os.path.join(*_METRIC_EXCLUDE))

    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.constants.add(node.value)

    # Module-level SCHEMA_VERSION constants.
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and "SCHEMA_VERSION" in stmt.targets[0].id
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
        ):
            key = f"{os.path.basename(path)}:{stmt.targets[0].id}"
            out.schema_versions[key] = (
                int(stmt.value.value),
                f"{path}:{stmt.lineno}",
            )

    scopes = [tree.body] + [
        node.body
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for body in scopes:
        statements = _scope_statements(body)
        env: Dict[str, Set[str]] = {}
        for stmt in statements:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    env.setdefault(target.id, set()).add(stmt.value.value)
        for stmt in statements:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                name = chain[-1] if chain else ""
                if (
                    name in _METRIC_METHODS
                    and len(chain) > 1
                    and not is_metric_registry
                ):
                    for literal in _string_args(node, env):
                        out.metrics.append((literal, path, node.lineno))
                elif name == "emit":
                    for literal in _string_args(node, env):
                        out.events.append((literal, path, node.lineno))
                elif name == "alloc_scope":
                    for literal in _string_args(node, env):
                        out.categories.append((literal, path, node.lineno))
                elif name == "_emit" and node.args:
                    arg = node.args[0]
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and _RULE_SHAPE.match(arg.value)
                    ):
                        out.rules.append((arg.value, path, node.lineno))
                for kw in node.keywords:
                    if (
                        kw.arg == "rule"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        out.rules.append((kw.value.value, path, node.lineno))


def extract_literals(paths: List[str]) -> ExtractedLiterals:
    out = ExtractedLiterals()
    for path in iter_python_files(paths):
        _extract_file(path, out)
    return out


# ---------------------------------------------------------------------------
# Derived enums
# ---------------------------------------------------------------------------


def _repo_root() -> Optional[str]:
    """The checkout root, if running from one (src/repro layout)."""
    import repro

    package = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.dirname(os.path.dirname(package))
    if os.path.isdir(os.path.join(root, "benchmarks")):
        return root
    return None


def _src_paths() -> List[str]:
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def derive_enums() -> dict:
    """Derive every schema enum from the code: the single source of truth."""
    from repro.obs.memory import CATEGORIES

    extracted = extract_literals(_src_paths())
    events = sorted({name for name, _, _ in extracted.events})
    journal_path = os.path.join(_src_paths()[0], "obs", "journal.py")
    if os.path.exists(journal_path):
        with open(journal_path, "r") as fh:
            if '"journal.meta"' in fh.read():
                events = sorted(set(events) | {"journal.meta"})
    return {
        "schema_version": 1,
        "analysis": {
            "rules": dict(sorted(findings_mod.RULES.items())),
            "sources": list(findings_mod.SOURCES),
            "severities": list(findings_mod.SEVERITIES),
        },
        "memory": {"categories": list(CATEGORIES)},
        "metrics": {"names": sorted({n for n, _, _ in extracted.metrics})},
        "journal": {"events": events},
        "schema_versions": {
            key: value
            for key, (value, _) in sorted(extracted.schema_versions.items())
        },
    }


def write_enums(path: str) -> None:
    with open(path, "w") as fh:
        json.dump(derive_enums(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Drift checks
# ---------------------------------------------------------------------------


def _find_literal_line(path: str, literal: str) -> str:
    try:
        with open(path, "r") as fh:
            for lineno, line in enumerate(fh, 1):
                if f'"{literal}"' in line or f"'{literal}'" in line:
                    return f"{path}:{lineno}"
    except OSError:
        pass
    return f"{path}:0"


def _check_shipped(report: AnalysisReport) -> None:
    from repro.obs import memory as memory_mod

    extracted = extract_literals(_src_paths())
    report.checked += extracted.num_sites
    declared_categories = set(memory_mod.CATEGORIES)

    # Emitted allocation categories must be declared, and vice versa.
    emitted_categories = set()
    for literal, path, lineno in extracted.categories:
        emitted_categories.add(literal)
        if literal not in declared_categories:
            report.add(
                Finding(
                    rule="consistency-category-drift",
                    message=(
                        f"alloc_scope({literal!r}) is not a declared "
                        "allocation category (obs.memory.CATEGORIES)"
                    ),
                    location=f"{path}:{lineno}",
                )
            )
    for category in sorted(declared_categories - emitted_categories):
        report.add(
            Finding(
                rule="consistency-category-drift",
                message=(
                    f"declared allocation category {category!r} has no "
                    "alloc_scope() emit site; remove it or tag the "
                    "allocation that should carry it"
                ),
                location=_find_literal_line(
                    memory_mod.__file__, category
                ),
            )
        )

    # Every rule emitted at a Finding()/lint site must be declared ...
    for literal, path, lineno in extracted.rules:
        if literal not in findings_mod.RULES:
            report.add(
                Finding(
                    rule="consistency-rule-drift",
                    message=(
                        f"finding rule {literal!r} is emitted here but not "
                        "declared in findings.RULES"
                    ),
                    location=f"{path}:{lineno}",
                )
            )
    # ... and every declared rule must appear somewhere in the source.
    for rule in sorted(findings_mod.RULES):
        if rule not in extracted.constants:
            report.add(
                Finding(
                    rule="consistency-rule-drift",
                    message=(
                        f"declared rule {rule!r} has no emit site anywhere "
                        "in src/repro; dead rules hide real drift"
                    ),
                    location=_find_literal_line(findings_mod.__file__, rule),
                )
            )

    root = _repo_root()
    if root is None:
        return
    _check_enums_file(report, os.path.join(root, ENUMS_RELPATH))
    _check_docs(report, os.path.join(root, "docs"))


def _check_enums_file(report: AnalysisReport, path: str) -> None:
    section_rules = {
        "analysis": "consistency-rule-drift",
        "memory": "consistency-category-drift",
        "metrics": "consistency-metric-drift",
        "journal": "consistency-event-drift",
        "schema_versions": "consistency-schema-version-drift",
    }
    derived = derive_enums()
    if not os.path.exists(path):
        report.add(
            Finding(
                rule="consistency-schema-version-drift",
                message=(
                    "derived enum file is missing; " + _REGENERATE_HINT
                ),
                location=f"{path}:0",
            )
        )
        return
    with open(path, "r") as fh:
        committed = json.load(fh)
    for section, rule in section_rules.items():
        report.checked += 1
        if committed.get(section) != derived.get(section):
            report.add(
                Finding(
                    rule=rule,
                    message=(
                        f"committed enum section {section!r} is stale "
                        f"against the code; " + _REGENERATE_HINT
                    ),
                    location=f"{path}:1",
                )
            )


def _doc_allowlist() -> Set[str]:
    """Hyphenated doc tokens that share a rule prefix but are not rules.

    Advisor *verdicts* live in the same ``memory-``/``perf-`` namespace as
    finding rules; derive them from the advisor module rather than keeping
    another hand-synced list.
    """
    allowed: Set[str] = set()
    try:
        from repro.obs import advisor

        allowed |= set(advisor.KERNEL_VERDICTS)
        with open(advisor.__file__, "r") as fh:
            tree = ast.parse(fh.read())
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value.endswith("-bound")
                and _RULE_SHAPE.match(node.value)
            ):
                allowed.add(node.value)
    except (ImportError, OSError, SyntaxError):
        pass
    return allowed


def _check_docs(report: AnalysisReport, docs_dir: str) -> None:
    if not os.path.isdir(docs_dir):
        return
    prefixes = {rule.split("-", 1)[0] for rule in findings_mod.RULES}
    allowed = _doc_allowlist()
    token_re = re.compile(r"`([a-z0-9][a-z0-9-]*)`")
    for name in sorted(os.listdir(docs_dir)):
        if not name.endswith(".md"):
            continue
        path = os.path.join(docs_dir, name)
        with open(path, "r") as fh:
            for lineno, line in enumerate(fh, 1):
                for token in token_re.findall(line):
                    if not _RULE_SHAPE.match(token):
                        continue
                    if token.split("-", 1)[0] not in prefixes:
                        continue
                    if token.endswith("-gate"):
                        continue  # CI job names share the chaos-/perf- prefix
                    report.checked += 1
                    if token in findings_mod.RULES or token in allowed:
                        continue
                    report.add(
                        Finding(
                            rule="consistency-doc-stale",
                            message=(
                                f"docs reference rule-like token "
                                f"{token!r} which is not a declared "
                                "finding rule"
                            ),
                            location=f"{path}:{lineno}",
                        )
                    )


def _check_paths(report: AnalysisReport, paths: List[str]) -> None:
    """Fixture mode: literals in ``paths`` must match the shipped enums."""
    from repro.obs.memory import CATEGORIES

    derived = derive_enums()
    known_metrics = set(derived["metrics"]["names"])
    known_events = set(derived["journal"]["events"])
    extracted = extract_literals(paths)
    report.checked += extracted.num_sites
    checks = (
        (
            extracted.metrics,
            known_metrics,
            "consistency-metric-drift",
            "metric",
        ),
        (
            extracted.events,
            known_events,
            "consistency-event-drift",
            "journal event",
        ),
        (
            extracted.categories,
            set(CATEGORIES),
            "consistency-category-drift",
            "allocation category",
        ),
        (
            extracted.rules,
            set(findings_mod.RULES),
            "consistency-rule-drift",
            "finding rule",
        ),
    )
    for sites, known, rule, label in checks:
        for literal, path, lineno in sites:
            if literal not in known:
                report.add(
                    Finding(
                        rule=rule,
                        message=(
                            f"{label} {literal!r} is not in the derived "
                            "enum; emit a declared name or extend the enum "
                            "at its declaration site"
                        ),
                        location=f"{path}:{lineno}",
                    )
                )


def check_consistency(paths: Optional[List[str]] = None) -> AnalysisReport:
    """Run the drift lint; returns a ``source="consistency"`` report."""
    report = AnalysisReport(source="consistency")
    if paths:
        _check_paths(report, paths)
    else:
        _check_shipped(report)
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Derive or check the observability schema enums."
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        help="write the derived enum JSON to PATH and exit",
    )
    args = parser.parse_args(argv)
    if args.write:
        write_enums(args.write)
        print(f"wrote {args.write}")
        return 0
    report = check_consistency()
    print(report.to_text())
    return 1 if report.has_hazards else 0


if __name__ == "__main__":
    raise SystemExit(main())
