"""Static interval dataflow proofs for the simulated-GPU kernels.

The sanitizer (PR 4) checks named-array accesses *dynamically*: only
addresses an actual run produced are validated against the declared
``size=`` extent.  This module closes the gap with an intra-kernel
abstract interpreter over an **interval domain** whose endpoints are
polynomials over symbolic launch parameters (``config.ht_capacity``,
``config.cms_width``, ...), each assumed to be an integer ``>= 1``.  An
access is *proven* in-bounds when its symbolic upper bound is ``<=
extent - 1`` and its lower bound is ``>= 0`` for **every** assignment of
the symbols — i.e. for every launch geometry, not just exercised ones.

Three rules are emitted:

``dataflow-proven-clean`` (info)
    A ``size=``-annotated shared access whose address interval is
    provably contained in ``[0, size)``.
``dataflow-oob-possible`` (error)
    An annotated access the interpreter cannot prove in-bounds.
``dataflow-overlap-possible`` (warning)
    A non-atomic ``device.shared.store`` whose addresses are not
    provably lane-disjoint (atomics are exempt: the hardware serializes
    them).

A fourth rule, ``dataflow-nonmonotone-update`` (error), checks the
paper's convergence argument: ``update_vertices`` hooks must *select*
labels (copy/mask/delegate), never derive new ones arithmetically from
``best_labels``/``current_labels`` — arithmetic on label values can move
a vertex off the min-frequent-label lattice and break monotone
convergence.

Abstract values track three things: a lower/upper bound (``None`` =
unbounded), and whether the value is provably *injective per lane*
(``np.arange`` and affine images of it), which is what the overlap
check needs.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.lint import _attr_chain, _string_kwarg, iter_python_files

# ---------------------------------------------------------------------------
# Polynomials over positive-integer symbols
# ---------------------------------------------------------------------------
# A polynomial maps a monomial -- a sorted tuple of symbol names, repeated
# per power -- to an integer coefficient.  The empty monomial is the
# constant term.  Every symbol is assumed to be an integer >= 1, which is
# what makes the max/min queries below decidable.

Poly = Dict[Tuple[str, ...], int]

_INF = float("inf")


def _p_const(value: int) -> Poly:
    return {(): int(value)} if value else {}


def _p_sym(name: str) -> Poly:
    return {(name,): 1}


def _p_add(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for mono, coeff in b.items():
        total = out.get(mono, 0) + coeff
        if total:
            out[mono] = total
        else:
            out.pop(mono, None)
    return out


def _p_neg(a: Poly) -> Poly:
    return {mono: -coeff for mono, coeff in a.items()}


def _p_sub(a: Poly, b: Poly) -> Poly:
    return _p_add(a, _p_neg(b))


def _p_mul(a: Poly, b: Poly) -> Poly:
    out: Poly = {}
    for mono_a, coeff_a in a.items():
        for mono_b, coeff_b in b.items():
            mono = tuple(sorted(mono_a + mono_b))
            total = out.get(mono, 0) + coeff_a * coeff_b
            if total:
                out[mono] = total
            else:
                out.pop(mono, None)
    return out


def _p_max(a: Poly) -> float:
    """Max of the polynomial over all symbol assignments >= 1."""
    total = a.get((), 0)
    for mono, coeff in a.items():
        if mono == ():
            continue
        if coeff > 0:
            return _INF
        total += coeff  # monomial's minimum value is 1
    return total


def _p_min(a: Poly) -> float:
    return -_p_max(_p_neg(a))


def _p_subst(a: Poly, mapping: Dict[str, Poly]) -> Poly:
    """Substitute symbols with (point) polynomials."""
    out: Poly = {}
    for mono, coeff in a.items():
        term: Poly = {(): coeff}
        for sym in mono:
            term = _p_mul(term, mapping.get(sym, _p_sym(sym)))
        out = _p_add(out, term)
    return out


def _p_render(a: Poly) -> str:
    if not a:
        return "0"
    parts = []
    for mono, coeff in sorted(a.items()):
        term = "*".join(mono) if mono else ""
        if term and coeff == 1:
            piece = term
        elif term and coeff == -1:
            piece = f"-{term}"
        elif term:
            piece = f"{coeff}*{term}"
        else:
            piece = str(coeff)
        parts.append(piece)
    rendered = parts[0]
    for piece in parts[1:]:
        rendered += f" - {piece[1:]}" if piece.startswith("-") else f" + {piece}"
    return rendered


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


class Interval:
    """Bounds on an integer (or elementwise on an integer array).

    ``lo``/``hi`` are polynomials or ``None`` (unbounded).  ``injective``
    records that, viewed as a per-lane address vector, distinct lanes are
    guaranteed distinct values (``np.arange`` and affine images).
    """

    __slots__ = ("lo", "hi", "injective")

    def __init__(
        self,
        lo: Optional[Poly],
        hi: Optional[Poly],
        injective: bool = False,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.injective = injective

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def nonneg(self) -> bool:
        return self.lo is not None and _p_min(self.lo) >= 0


def _top() -> Interval:
    return Interval(None, None)


def _nonneg() -> Interval:
    return Interval(_p_const(0), None)


def _point(poly: Poly) -> Interval:
    return Interval(poly, poly)


class _CMSValue:
    """A tracked ``CountMinSketch(depth, width)`` instance."""

    __slots__ = ("depth", "width")

    def __init__(self, depth: Poly, width: Poly) -> None:
        self.depth = depth
        self.width = width


#: Calls that pass values through unchanged (bounds-wise).
_PASSTHROUGH_CALLS = {
    "asarray",
    "ascontiguousarray",
    "int64",
    "int32",
    "float64",
    "abs",
}
_UNSIGNED_CASTS = {"uint64", "uint32", "uint8"}
_ARITH_BINOPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


def _unsigned(value: Interval) -> Interval:
    """Casting to an unsigned dtype wraps negatives to huge positives."""
    if value.nonneg:
        return Interval(value.lo, value.hi, value.injective)
    return _nonneg()


# ---------------------------------------------------------------------------
# Per-function abstract interpreter
# ---------------------------------------------------------------------------


class _FunctionAnalyzer:
    def __init__(
        self,
        filename: str,
        helpers: Dict[str, ast.FunctionDef],
        findings: List[Finding],
        *,
        symbol_prefix: str = "",
    ) -> None:
        self.filename = filename
        self.helpers = helpers
        self.findings = findings
        self.symbol_prefix = symbol_prefix
        self.env: Dict[str, object] = {}
        self.kernel = ""
        self.sites = 0

    # -- expression evaluation ------------------------------------------

    def eval(self, node: ast.expr) -> Interval:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Interval(_p_const(0), _p_const(1))
            if isinstance(node.value, int):
                return _point(_p_const(node.value))
            return _top()
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if isinstance(bound, Interval):
                return bound
            if bound is not None:
                return _top()  # CMS or other non-interval value
            return _point(_p_sym(self.symbol_prefix + node.id))
        if isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                # Dotted reads (config.ht_capacity, batch.num_edges, ...)
                # are the symbols of the domain: fixed positive integers.
                # Array-valued attributes are harmless here -- subscripting
                # a symbolic scalar drops to top (see Subscript below).
                return _point(_p_sym(".".join(_attr_chain(node))))
            return _top()
        if isinstance(node, ast.Subscript):
            base = self.eval_value(node.value)
            if isinstance(base, Interval):
                # Indexing a symbolic *scalar* makes no sense -- the name
                # was really an unknown array; drop to top.  Indexing a
                # bounded array value keeps the elementwise bounds.
                if base.is_point and base.lo != _p_const(base.lo.get((), 0)):
                    return _top()
                return Interval(base.lo, base.hi, injective=False)
            return _top()
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                return Interval(
                    _p_neg(inner.hi) if inner.hi is not None else None,
                    _p_neg(inner.lo) if inner.lo is not None else None,
                )
            return _top()
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            a, b = self.eval(node.body), self.eval(node.orelse)
            lo = None
            if a.lo is not None and b.lo is not None:
                lo = a.lo if _p_max(_p_sub(a.lo, b.lo)) <= 0 else b.lo
            hi = None
            if a.hi is not None and b.hi is not None:
                hi = a.hi if _p_max(_p_sub(b.hi, a.hi)) <= 0 else b.hi
            return Interval(lo, hi)
        return _top()

    def eval_value(self, node: ast.expr):
        """Like :meth:`eval` but surfaces tracked objects (CMS values)."""
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if isinstance(bound, _CMSValue):
                return bound
        return self.eval(node)

    def _eval_binop(self, node: ast.BinOp) -> Interval:
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = node.op
        if isinstance(op, ast.Add):
            lo = (
                _p_add(left.lo, right.lo)
                if left.lo is not None and right.lo is not None
                else None
            )
            hi = (
                _p_add(left.hi, right.hi)
                if left.hi is not None and right.hi is not None
                else None
            )
            injective = (left.injective and right.is_point) or (
                right.injective and left.is_point
            )
            return Interval(lo, hi, injective)
        if isinstance(op, ast.Sub):
            lo = (
                _p_sub(left.lo, right.hi)
                if left.lo is not None and right.hi is not None
                else None
            )
            hi = (
                _p_sub(left.hi, right.lo)
                if left.hi is not None and right.lo is not None
                else None
            )
            injective = (left.injective and right.is_point) or (
                right.injective and left.is_point
            )
            return Interval(lo, hi, injective)
        if isinstance(op, ast.Mult):
            if left.is_point and right.is_point:
                return _point(_p_mul(left.lo, right.lo))
            for point, other in ((left, right), (right, left)):
                if point.is_point and _p_min(point.lo) >= 0:
                    lo = (
                        _p_mul(other.lo, point.lo)
                        if other.lo is not None
                        else None
                    )
                    hi = (
                        _p_mul(other.hi, point.lo)
                        if other.hi is not None
                        else None
                    )
                    injective = other.injective and _p_min(point.lo) >= 1
                    return Interval(lo, hi, injective)
            if left.nonneg and right.nonneg:
                hi = (
                    _p_mul(left.hi, right.hi)
                    if left.hi is not None and right.hi is not None
                    else None
                )
                return Interval(_p_const(0), hi)
            return _top()
        if isinstance(op, ast.Mod):
            divisor = right
            if divisor.is_point and _p_min(divisor.lo) >= 1:
                return Interval(
                    _p_const(0), _p_sub(divisor.lo, _p_const(1))
                )
            if left.nonneg:
                return _nonneg()
            return _top()
        if isinstance(op, ast.FloorDiv):
            if left.nonneg:
                return Interval(_p_const(0), left.hi)
            return _top()
        if isinstance(op, ast.RShift):
            if left.nonneg:
                return Interval(_p_const(0), left.hi)
            return _top()
        if isinstance(op, (ast.BitXor, ast.BitOr, ast.BitAnd, ast.LShift)):
            if left.nonneg and right.nonneg:
                return _nonneg()
            return _top()
        return _top()

    def _eval_call(self, node: ast.Call) -> Interval:
        chain = _attr_chain(node.func)
        name = chain[-1] if chain else ""
        # Method-style casts/copies: x.astype(t), x.copy(), x.reshape(...)
        if (
            isinstance(node.func, ast.Attribute)
            and name in ("astype", "copy", "reshape", "ravel")
        ):
            receiver = self.eval(node.func.value)
            if name == "astype" and node.args:
                target = _attr_chain(node.args[0])
                if target and target[-1] in _UNSIGNED_CASTS:
                    return _unsigned(receiver)
            return receiver
        if name in _UNSIGNED_CASTS and node.args:
            return _unsigned(self.eval(node.args[0]))
        if name in _PASSTHROUGH_CALLS and node.args:
            return self.eval(node.args[0])
        if name == "arange" and node.args:
            stop = self.eval(node.args[-1 if len(node.args) == 1 else 1])
            start = (
                self.eval(node.args[0])
                if len(node.args) >= 2
                else _point(_p_const(0))
            )
            if start.lo is not None and stop.hi is not None:
                return Interval(
                    start.lo, _p_sub(stop.hi, _p_const(1)), injective=True
                )
            return Interval(start.lo, None, injective=True)
        if name == "flatnonzero":
            # Strictly increasing indices into the argument.
            return Interval(_p_const(0), None, injective=True)
        if name == "zeros":
            return _point(_p_const(0))
        if name == "ones":
            return _point(_p_const(1))
        if name == "bucket_addresses" and isinstance(node.func, ast.Attribute):
            base = self.eval_value(node.func.value)
            if isinstance(base, _CMSValue):
                extent = _p_mul(base.depth, base.width)
                return Interval(_p_const(0), _p_sub(extent, _p_const(1)))
            return _top()
        # Same-module helper: summarize its return interval with parameters
        # as symbols, then substitute the call-site arguments.
        if len(chain) == 1 and name in self.helpers:
            return self._eval_helper(self.helpers[name], node)
        return _top()

    def _eval_helper(
        self, helper: ast.FunctionDef, call: ast.Call
    ) -> Interval:
        params = [a.arg for a in helper.args.args]
        sub = _FunctionAnalyzer(
            self.filename,
            {},
            [],
            symbol_prefix=f"{helper.name}.",
        )
        returned: Optional[Interval] = None
        for stmt in helper.body:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                returned = sub.eval(stmt.value)
                break
            sub.visit(stmt)
        if returned is None:
            return _top()
        mapping: Dict[str, Poly] = {}
        for index, param in enumerate(params):
            if index >= len(call.args):
                break
            arg = self.eval(call.args[index])
            symbol = f"{helper.name}.{param}"
            if arg.is_point:
                mapping[symbol] = arg.lo
            else:
                # A non-scalar argument: any bound mentioning it is void.
                for bound in (returned.lo, returned.hi):
                    if bound is not None and any(
                        symbol in mono for mono in bound
                    ):
                        return _top()
        lo = _p_subst(returned.lo, mapping) if returned.lo is not None else None
        hi = _p_subst(returned.hi, mapping) if returned.hi is not None else None
        return Interval(lo, hi, returned.injective)

    # -- statement walking ----------------------------------------------

    def visit_block(self, stmts) -> None:
        for stmt in stmts:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.For):
            self._scan_sites(stmt.iter)
            iter_node = stmt.iter
            if (
                isinstance(iter_node, ast.Call)
                and _attr_chain(iter_node.func)[-1:] == ["range"]
                and isinstance(stmt.target, ast.Name)
            ):
                args = [self.eval(a) for a in iter_node.args]
                if len(args) == 1 and args[0].hi is not None:
                    self.env[stmt.target.id] = Interval(
                        _p_const(0), _p_sub(args[0].hi, _p_const(1))
                    )
                elif len(args) >= 2 and args[1].hi is not None:
                    self.env[stmt.target.id] = Interval(
                        args[0].lo, _p_sub(args[1].hi, _p_const(1))
                    )
                else:
                    self.env[stmt.target.id] = _top()
            elif isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = _top()
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Call):
                    chain = _attr_chain(ctx.func)
                    if chain[-1:] == ["launch"]:
                        label = None
                        if ctx.args and isinstance(ctx.args[0], ast.Constant):
                            label = ctx.args[0].value
                        if isinstance(label, str):
                            self.kernel = label
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = _top()
            self.visit_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.visit_block(stmt.body)
            for handler in stmt.handlers:
                self.visit_block(handler.body)
            self.visit_block(stmt.orelse)
            self.visit_block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        self._scan_sites(stmt)
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            combined = ast.BinOp(
                left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            ast.copy_location(combined, stmt)
            ast.fix_missing_locations(combined)
            self.env[stmt.target.id] = self.eval(combined)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value)

    def _assign(self, targets, value: ast.expr) -> None:
        if (
            isinstance(value, ast.Call)
            and _attr_chain(value.func)[-1:] == ["CountMinSketch"]
            and len(value.args) >= 2
        ):
            depth = self.eval(value.args[0])
            width = self.eval(value.args[1])
            if depth.is_point and width.is_point:
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.env[target.id] = _CMSValue(depth.lo, width.lo)
                return
        evaluated = self.eval(value)
        for target in targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = evaluated
            elif isinstance(target, ast.Tuple):
                values = (
                    value.elts
                    if isinstance(value, ast.Tuple)
                    and len(value.elts) == len(target.elts)
                    else None
                )
                for index, element in enumerate(target.elts):
                    if isinstance(element, ast.Name):
                        self.env[element.id] = (
                            self.eval(values[index]) if values else _top()
                        )

    # -- access-site checking -------------------------------------------

    def _scan_sites(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            chain = _attr_chain(child.func)
            if len(chain) < 2:
                continue
            is_atomic = chain[-1] == "shared_atomic_add"
            is_plain = chain[-2] == "shared" and chain[-1] in ("load", "store")
            if not (is_atomic or is_plain):
                continue
            self._check_site(child, store=is_plain and chain[-1] == "store",
                             atomic=is_atomic)

    def _check_site(
        self, call: ast.Call, *, store: bool, atomic: bool
    ) -> None:
        array = _string_kwarg(call, "array")
        size_expr = next(
            (kw.value for kw in call.keywords if kw.arg == "size"), None
        )
        if array is None or size_expr is None or not call.args:
            return  # unannotated site: nothing declared to check against
        self.sites += 1
        location = f"{self.filename}:{call.lineno}"
        extent = self.eval(size_expr)
        addresses = self.eval(call.args[0])
        if not extent.is_point:
            self.findings.append(
                Finding(
                    rule="dataflow-oob-possible",
                    message=(
                        f"declared extent of shared '{array}' is not "
                        "statically resolvable; cannot prove accesses "
                        "in-bounds"
                    ),
                    kernel=self.kernel,
                    array=array,
                    space="shared",
                    location=location,
                )
            )
            return
        extent_poly = extent.lo
        problems = []
        if addresses.lo is None or _p_min(addresses.lo) < 0:
            low = (
                _p_render(addresses.lo)
                if addresses.lo is not None
                else "-inf"
            )
            problems.append(f"lower bound {low} may be < 0")
        slack = (
            _p_add(_p_sub(addresses.hi, extent_poly), _p_const(1))
            if addresses.hi is not None
            else None
        )
        if slack is None or _p_max(slack) > 0:
            high = (
                _p_render(addresses.hi)
                if addresses.hi is not None
                else "+inf"
            )
            problems.append(
                f"upper bound {high} may reach declared extent "
                f"{_p_render(extent_poly)}"
            )
        if problems:
            self.findings.append(
                Finding(
                    rule="dataflow-oob-possible",
                    message=(
                        f"access to shared '{array}' not provably "
                        f"in-bounds: {'; '.join(problems)}"
                    ),
                    kernel=self.kernel,
                    array=array,
                    space="shared",
                    location=location,
                )
            )
        else:
            self.findings.append(
                Finding(
                    rule="dataflow-proven-clean",
                    message=(
                        f"access to shared '{array}' proven in-bounds: "
                        f"[{_p_render(addresses.lo)}, "
                        f"{_p_render(addresses.hi)}] within "
                        f"[0, {_p_render(extent_poly)}) for every launch "
                        "geometry"
                    ),
                    kernel=self.kernel,
                    array=array,
                    space="shared",
                    location=location,
                )
            )
        if store and not atomic and not addresses.injective:
            self.findings.append(
                Finding(
                    rule="dataflow-overlap-possible",
                    message=(
                        f"non-atomic store to shared '{array}' with "
                        "addresses not provably lane-disjoint; concurrent "
                        "lanes may overwrite each other (use an atomic or "
                        "an arange-affine address pattern)"
                    ),
                    kernel=self.kernel,
                    array=array,
                    space="shared",
                    location=location,
                )
            )


# ---------------------------------------------------------------------------
# Monotone-update check
# ---------------------------------------------------------------------------


def _label_operand(node: ast.expr, label_params) -> Optional[str]:
    """Name of the label parameter an operand reads from, if any."""
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Call) and node.args:
        chain = _attr_chain(node.func)
        if chain and chain[-1] in _PASSTHROUGH_CALLS | {"astype"}:
            return _label_operand(node.args[0], label_params)
    if isinstance(node, ast.Name) and node.id in label_params:
        return node.id
    return None


def _check_monotone(
    func: ast.FunctionDef, filename: str, findings: List[Finding]
) -> None:
    params = [a.arg for a in func.args.args]
    label_params = {p for p in params if "label" in p}
    if not label_params:
        return
    for node in ast.walk(func):
        operands = ()
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_BINOPS):
            operands = (node.left, node.right)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, _ARITH_BINOPS
        ):
            operands = (node.target, node.value)
        for operand in operands:
            name = _label_operand(operand, label_params)
            if name is not None:
                findings.append(
                    Finding(
                        rule="dataflow-nonmonotone-update",
                        message=(
                            f"update_vertices derives labels arithmetically "
                            f"from '{name}'; hooks must select existing "
                            "labels (copy, mask, or delegate) to preserve "
                            "monotone convergence on the min-frequent-label "
                            "lattice"
                        ),
                        location=f"{filename}:{node.lineno}",
                    )
                )
                break


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def dataflow_source(
    source: str, filename: str = "<string>"
) -> Tuple[List[Finding], int]:
    """Analyze one module's source; returns (findings, units checked)."""
    tree = ast.parse(source, filename=filename)
    helpers: Dict[str, ast.FunctionDef] = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    findings: List[Finding] = []
    checked = 0
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name == "update_vertices":
            _check_monotone(node, filename, findings)
            checked += 1
            continue
        analyzer = _FunctionAnalyzer(filename, helpers, findings)
        # Parameters are opaque arrays/objects, not positive scalars.
        for arg in node.args.args:
            analyzer.env[arg.arg] = _top()
        analyzer.visit_block(node.body)
        checked += analyzer.sites
    return findings, checked


def dataflow_file(path: str) -> Tuple[List[Finding], int]:
    with open(path, "r") as fh:
        source = fh.read()
    return dataflow_source(source, filename=path)


def _default_paths() -> List[str]:
    import repro.kernels

    paths = [os.path.dirname(os.path.abspath(repro.kernels.__file__))]
    if os.path.isdir("examples"):
        paths.append("examples")
    return paths


def check_dataflow(paths=None) -> AnalysisReport:
    """Run the dataflow verifier; returns a ``source="dataflow"`` report."""
    report = AnalysisReport(source="dataflow")
    for path in iter_python_files(paths if paths else _default_paths()):
        try:
            findings, checked = dataflow_file(path)
        except SyntaxError as exc:
            report.add(
                Finding(
                    rule="dataflow-oob-possible",
                    message=f"could not parse module: {exc.msg}",
                    location=f"{path}:{exc.lineno or 0}",
                )
            )
            continue
        report.extend(findings)
        report.checked += checked
    return report
