"""Structured findings shared by the sanitizer and the LP-program linter.

Both analysis layers reduce to the same currency: a :class:`Finding` names
the violated rule, where it happened (kernel + array + offset for dynamic
hazards, file:line for lint), and how to read it.  An
:class:`AnalysisReport` aggregates findings and serializes them with the
same ``schema_version`` / flat-JSON conventions the :mod:`repro.obs`
reports use, so ``benchmarks/check_obs_schema.py`` can validate the output
of ``repro check --json`` and ``repro run --sanitize --sanitize-out``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Bump when the report payload changes incompatibly.
SCHEMA_VERSION = 1

#: Every rule any layer can emit, with its severity.  ``error`` findings
#: are *hazards*: they fail ``repro check`` and ``repro run --sanitize``;
#: ``warning`` findings are advisory and only gate under
#: ``--fail-on warning``; ``info`` findings (positive proofs) never gate.
RULES: Dict[str, str] = {
    # --- sanitizer (dynamic) -------------------------------------------
    "racecheck-write-write": "error",
    "racecheck-read-write": "error",
    "racecheck-non-atomic-rmw": "error",
    "racecheck-oob-shared": "error",
    "synccheck-barrier-divergence": "error",
    "synccheck-empty-mask": "error",
    "perf-bank-conflict-hotspot": "warning",
    # --- linter (static) -----------------------------------------------
    "lint-inplace-output-write": "error",
    "lint-missing-barrier": "error",
    "lint-non-atomic-rmw": "error",
    "lint-divergent-warp-sync": "error",
    "lint-sketch-bounds": "error",
    "lint-uninitialized-read": "error",
    # --- chaos sweeps (repro.resilience.chaos) -------------------------
    "chaos-run-failed": "error",
    "chaos-identity-mismatch": "error",
    "chaos-degraded": "warning",
    # --- SLO monitor (repro.obs.slo) -----------------------------------
    "slo-breach": "error",
    "slo-burn-rate": "warning",
    "slo-missing-metric": "warning",
    # --- memory telemetry (repro.obs.memory) ----------------------------
    # device_footprint underestimating the measured peak means the
    # GPU->hybrid->CPU ladder can pick an engine that will OOM mid-run;
    # overestimating forces needless hybrid/CPU fallbacks.
    "memory-planner-underestimate": "error",
    "memory-planner-overestimate": "warning",
    "memory-unreconciled": "error",
    # --- dataflow verifier (repro.analysis.dataflow) ---------------------
    # Static interval proofs over named-array accesses: an access whose
    # symbolic bound cannot be shown < the declared extent for *every*
    # launch geometry is flagged; one that can is recorded as proven.
    "dataflow-oob-possible": "error",
    "dataflow-overlap-possible": "warning",
    "dataflow-nonmonotone-update": "error",
    "dataflow-proven-clean": "info",
    # --- contract checker (repro.analysis.contracts) ---------------------
    "contract-missing-capability-kwarg": "error",
    "contract-hook-signature-mismatch": "error",
    "contract-registry-callback-mismatch": "error",
    "contract-cli-capability-mismatch": "error",
    # --- schema-drift lint (repro.analysis.consistency) ------------------
    "consistency-metric-drift": "error",
    "consistency-event-drift": "error",
    "consistency-rule-drift": "error",
    "consistency-category-drift": "error",
    "consistency-schema-version-drift": "error",
    "consistency-doc-stale": "warning",
}

SEVERITIES = ("error", "warning", "info")

#: Every report producer.  ``AnalysisReport.source`` must be one of these;
#: the consistency analyzer derives the schema-checker enums from this
#: tuple and :data:`RULES`.
SOURCES = (
    "sanitizer",
    "lint",
    "chaos",
    "slo",
    "memory",
    "dataflow",
    "contracts",
    "consistency",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Dynamic (sanitizer) findings carry ``kernel``/``array``/``space``/
    ``offset`` and a sample of the conflicting ``actors`` — ``(warp, lane)``
    pairs; static (lint) findings carry ``location`` (``file:line``).
    ``count`` folds repeated instances of the same hazard (same rule on the
    same kernel/array or file) into one finding.
    """

    rule: str
    message: str
    severity: str = ""
    kernel: str = ""
    array: str = ""
    space: str = ""
    offset: int = -1
    location: str = ""
    actors: Tuple[Tuple[int, int], ...] = ()
    count: int = 1

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown analysis rule {self.rule!r}")
        resolved = self.severity or RULES[self.rule]
        if resolved not in SEVERITIES:
            raise ValueError(f"unknown severity {resolved!r}")
        object.__setattr__(self, "severity", resolved)

    @property
    def where(self) -> str:
        """Human-readable anchor: lint location or kernel/array/offset."""
        if self.location:
            return self.location
        parts = [self.kernel or "<kernel>"]
        if self.array:
            target = f"{self.space + ' ' if self.space else ''}{self.array}"
            if self.offset >= 0:
                target += f"[{self.offset}]"
            parts.append(target)
        return " ".join(parts)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "kernel": self.kernel,
            "array": self.array,
            "space": self.space,
            "offset": int(self.offset),
            "location": self.location,
            "actors": [[int(w), int(l)] for w, l in self.actors],
            "count": int(self.count),
        }

    def render(self) -> str:
        extra = f" (x{self.count})" if self.count > 1 else ""
        return (
            f"[{self.severity}] {self.rule}: {self.where}: "
            f"{self.message}{extra}"
        )


@dataclass
class AnalysisReport:
    """Aggregated findings from one sanitizer session or lint run."""

    source: str  # one of SOURCES
    findings: List[Finding] = field(default_factory=list)
    #: Units inspected: kernel launches (sanitizer), files (lint),
    #: fault plans (chaos), objectives (slo), access sites (dataflow),
    #: interfaces (contracts), or literal sites (consistency).
    checked: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "info"]

    @property
    def has_hazards(self) -> bool:
        """True when any error-severity finding is present."""
        return any(f.severity == "error" for f in self.findings)

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_dict(self) -> dict:
        ordered = sorted(
            self.findings,
            key=lambda f: (SEVERITIES.index(f.severity), f.rule, f.where),
        )
        return {
            "schema_version": SCHEMA_VERSION,
            "source": self.source,
            "checked": int(self.checked),
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "num_infos": len(self.infos),
            "rules": self.counts_by_rule(),
            "findings": [f.as_dict() for f in ordered],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def to_text(self) -> str:
        unit = {
            "sanitizer": "kernel(s)",
            "chaos": "plan(s)",
            "slo": "objective(s)",
            "memory": "device(s)",
            "dataflow": "site(s)",
            "contracts": "interface(s)",
            "consistency": "literal(s)",
        }.get(self.source, "file(s)")
        summary = (
            f"{self.source}: {self.checked} {unit} checked, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        if self.infos:
            summary += f", {len(self.infos)} proven"
        lines = [summary]
        for finding in sorted(
            self.findings,
            key=lambda f: (SEVERITIES.index(f.severity), f.rule, f.where),
        ):
            lines.append("  " + finding.render())
        return "\n".join(lines)
