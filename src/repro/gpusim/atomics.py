"""Atomic-operation model with intra-warp serialization.

``atomicAdd`` to the *same address* from multiple lanes of a warp serializes:
the hardware retries conflicting lanes one at a time.  The cost of a warp's
atomic instruction is therefore the maximum same-address multiplicity across
its lanes.  Label counting is atomic-heavy (one add per neighbor), and the
serialization pattern differs sharply between strategies:

* a **global hash table** sees high multiplicity once communities form
  (many neighbors share the MFL → same counter address),
* the **warp-centric** low-degree kernel replaces atomics entirely with
  ``match_any``/``popc`` bit tricks — the paper's Section 4.2 punchline.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpusim import hooks
from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.memory import count_sector_transactions, default_warp_ids


def serialization_cost(
    addresses: np.ndarray, warp_ids: np.ndarray
) -> Tuple[int, int]:
    """Return ``(total_ops, serialized_ops)`` for the given atomic accesses.

    ``serialized_ops`` is the sum over warps of that warp's issue count,
    where a warp issues ``max same-address multiplicity`` times; fully
    conflict-free warps issue once per distinct address group in parallel
    (cost counted as 1 issue).  In counter terms we charge
    ``sum_over_warps(max_multiplicity)`` serialized ops.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    warp_ids = np.asarray(warp_ids, dtype=np.int64)
    total = int(addresses.size)
    if total == 0:
        return 0, 0
    order = np.lexsort((addresses, warp_ids))
    a = addresses[order]
    w = warp_ids[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], (a[1:] != a[:-1]) | (w[1:] != w[:-1])))
    )
    multiplicities = np.diff(np.concatenate((boundaries, [total])))
    group_warps = w[boundaries]
    warp_boundaries = np.flatnonzero(
        np.concatenate(([True], group_warps[1:] != group_warps[:-1]))
    )
    max_per_warp = np.maximum.reduceat(multiplicities, warp_boundaries)
    return total, int(max_per_warp.sum())


class AtomicsModel:
    """Accounting facade for atomic operations of one device."""

    def __init__(self, spec: DeviceSpec, counters: PerfCounters) -> None:
        self._spec = spec
        self._counters = counters

    def global_atomic_add(
        self,
        element_indices: np.ndarray,
        element_bytes: int,
        warp_ids: Optional[np.ndarray] = None,
        *,
        array: Optional[str] = None,
    ) -> None:
        """Account atomicAdds to global-memory addresses.

        Charges one global transaction per touched sector (the read-modify-
        write round trip) plus serialization cycles for same-address lanes.
        """
        element_indices = np.asarray(element_indices)
        if warp_ids is None:
            warp_ids = default_warp_ids(
                element_indices.size, self._spec.warp_size
            )
        warp_ids = np.asarray(warp_ids)
        total, serialized = serialization_cost(element_indices, warp_ids)
        self._counters.global_atomic_ops += count_sector_transactions(
            element_indices.astype(np.int64) * element_bytes,
            warp_ids,
            self._spec.sector_bytes,
        )
        self._counters.global_atomic_serialized_ops += serialized
        if array is not None:
            active = hooks.active()
            if active is not None:
                active.record(
                    "global",
                    array,
                    element_indices,
                    kind="atomic",
                    warp_ids=warp_ids,
                )

    def shared_atomic_add(
        self,
        word_addresses: np.ndarray,
        warp_ids: Optional[np.ndarray] = None,
        *,
        array: Optional[str] = None,
        size: Optional[int] = None,
    ) -> None:
        """Account atomicAdds to shared-memory word addresses."""
        word_addresses = np.asarray(word_addresses)
        if warp_ids is None:
            warp_ids = default_warp_ids(
                word_addresses.size, self._spec.warp_size
            )
        warp_ids = np.asarray(warp_ids)
        total, serialized = serialization_cost(word_addresses, warp_ids)
        self._counters.shared_store_ops += total
        self._counters.shared_atomic_serialized_ops += serialized
        if array is not None:
            active = hooks.active()
            if active is not None:
                active.record(
                    "shared",
                    array,
                    word_addresses,
                    kind="atomic",
                    warp_ids=warp_ids,
                    size=size,
                )
