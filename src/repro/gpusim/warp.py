"""Bit-exact warp intrinsics.

These reproduce the CUDA warp-level primitives the paper's Section 4.2
kernel is built from — ``__ballot_sync``, ``__match_any_sync``, ``__popc``
and the shuffle family — vectorized over *batches of warps*: every function
takes arrays shaped ``(num_warps, warp_size)`` and returns per-warp or
per-lane results, so a kernel can evaluate thousands of simulated warps with
one call.

Masks are returned as ``uint64`` holding a ``warp_size``-bit value in the
low bits (warp_size is 32 in practice, matching CUDA's 32-bit masks).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.gpusim import hooks

#: Powers of two for mask assembly, index = lane id.
_LANE_BITS = (np.uint64(1) << np.arange(64, dtype=np.uint64))


def _notify_sync(intrinsic: str, active: np.ndarray) -> None:
    """Report a ``*_sync`` execution to an attached sanitizer, if any.

    Synccheck semantics: naming lanes that never reach the intrinsic (a
    warp with an empty active mask) is undefined behaviour on hardware.
    """
    sanitizer = hooks.active()
    if sanitizer is not None:
        sanitizer.warp_sync(intrinsic, active)


def full_mask(warp_size: int = 32) -> int:
    """The all-lanes-active mask (``0xFFFFFFFF`` for warp_size 32)."""
    return (1 << warp_size) - 1


def _check_lane_shape(arr: np.ndarray) -> None:
    if arr.ndim != 2:
        raise KernelError(
            f"warp intrinsics expect (num_warps, warp_size) arrays, "
            f"got shape {arr.shape}"
        )
    if arr.shape[1] > 64:
        raise KernelError(f"warp_size {arr.shape[1]} exceeds 64")


def ballot_sync(active: np.ndarray, predicate: np.ndarray) -> np.ndarray:
    """``__ballot_sync``: per-warp mask of active lanes with a true predicate.

    Parameters
    ----------
    active:
        Boolean ``(W, warp_size)`` participation mask.
    predicate:
        Boolean ``(W, warp_size)`` per-lane predicate.

    Returns
    -------
    ``(W,)`` uint64 array; bit ``i`` of entry ``w`` is set iff lane ``i`` of
    warp ``w`` is active and its predicate is non-zero.
    """
    active = np.asarray(active, dtype=bool)
    predicate = np.asarray(predicate, dtype=bool)
    _check_lane_shape(active)
    if predicate.shape != active.shape:
        raise KernelError("predicate shape must match active shape")
    _notify_sync("ballot_sync", active)
    warp_size = active.shape[1]
    bits = _LANE_BITS[:warp_size]
    return ((active & predicate) * bits).sum(axis=1, dtype=np.uint64)


def match_any_sync(active: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``__match_any_sync``: per-lane mask of active lanes holding equal values.

    For every active lane the result contains the mask of all active lanes in
    its warp whose ``values`` entry compares equal.  Inactive lanes get 0.

    Returns a ``(W, warp_size)`` uint64 array.
    """
    active = np.asarray(active, dtype=bool)
    values = np.asarray(values)
    _check_lane_shape(active)
    if values.shape != active.shape:
        raise KernelError("values shape must match active shape")
    _notify_sync("match_any_sync", active)
    warp_size = active.shape[1]
    # eq[w, i, j] = lanes i and j of warp w are both active and hold equal
    # values.  warp_size is <= 32 so the (W, 32, 32) temporary is cheap.
    eq = values[:, :, None] == values[:, None, :]
    eq &= active[:, :, None]
    eq &= active[:, None, :]
    bits = _LANE_BITS[:warp_size]
    masks = (eq * bits[None, None, :]).sum(axis=2, dtype=np.uint64)
    masks[~active] = 0
    return masks


def popc(masks: np.ndarray) -> np.ndarray:
    """``__popc``: number of set bits per entry (vectorized popcount)."""
    masks = np.asarray(masks, dtype=np.uint64)
    counts = np.zeros(masks.shape, dtype=np.int64)
    work = masks.copy()
    while work.any():
        counts += (work & np.uint64(1)).astype(np.int64)
        work >>= np.uint64(1)
    return counts


def ffs(masks: np.ndarray) -> np.ndarray:
    """``__ffs``: 1-based index of the least-significant set bit (0 if none)."""
    masks = np.asarray(masks, dtype=np.uint64)
    isolated = masks & (~masks + np.uint64(1))
    result = np.zeros(masks.shape, dtype=np.int64)
    work = isolated.copy()
    position = np.zeros(masks.shape, dtype=np.int64)
    while work.any():
        nonzero = work != 0
        position[nonzero] += 1
        hit = (work & np.uint64(1)) != 0
        result[hit] = position[hit]
        work >>= np.uint64(1)
    return result


def lane_masks_lt(warp_size: int = 32) -> np.ndarray:
    """``%lanemask_lt``: per-lane mask of all lower-numbered lanes."""
    lanes = np.arange(warp_size, dtype=np.uint64)
    return (np.uint64(1) << lanes) - np.uint64(1)


def shfl_sync(
    active: np.ndarray, values: np.ndarray, src_lane: int
) -> np.ndarray:
    """``__shfl_sync``: broadcast lane ``src_lane``'s value to all lanes."""
    active = np.asarray(active, dtype=bool)
    values = np.asarray(values)
    _check_lane_shape(active)
    if not 0 <= src_lane < active.shape[1]:
        raise KernelError(f"src_lane {src_lane} out of range")
    _notify_sync("shfl_sync", active)
    out = np.broadcast_to(
        values[:, src_lane : src_lane + 1], values.shape
    ).copy()
    out[~active] = 0
    return out


def shfl_down_sync(
    active: np.ndarray, values: np.ndarray, delta: int
) -> np.ndarray:
    """``__shfl_down_sync``: each lane reads the value ``delta`` lanes up.

    Lanes whose source would fall off the warp keep their own value
    (matching CUDA semantics).
    """
    active = np.asarray(active, dtype=bool)
    values = np.asarray(values)
    _check_lane_shape(active)
    warp_size = active.shape[1]
    if delta < 0:
        raise KernelError("delta must be non-negative")
    _notify_sync("shfl_down_sync", active)
    out = values.copy()
    if delta and delta < warp_size:
        out[:, : warp_size - delta] = values[:, delta:]
    return out


def warp_reduce_max(
    active: np.ndarray, values: np.ndarray, fill
) -> np.ndarray:
    """Butterfly max-reduction over each warp's active lanes.

    Returns a ``(W,)`` array of per-warp maxima; warps with no active lanes
    return ``fill``.  The hardware cost is ``log2(warp_size)`` shuffle steps,
    which callers account as warp instructions.
    """
    active = np.asarray(active, dtype=bool)
    values = np.asarray(values)
    _check_lane_shape(active)
    # Deliberately NOT _notify_sync'd: empty-active warps are part of this
    # helper's documented semantics (they return ``fill``), unlike the
    # hardware ``*_sync`` intrinsics above.
    masked = np.where(active, values, fill)
    return masked.max(axis=1)
