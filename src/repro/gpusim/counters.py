"""Performance counters collected by the simulator.

Every kernel accumulates into a :class:`PerfCounters` instance; the timing
model (:mod:`repro.gpusim.timing`) turns a counter delta into elapsed time.
Counters are also first-class experiment outputs: the ablation analysis
(Table 3) and the theory validation report global-transaction counts
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Mutable bundle of simulated hardware event counts.

    All ``*_transactions`` counters are in units of device memory sectors
    (32 bytes); ``warp_instructions`` are warp-level issue slots;
    ``active_lane_sum`` accumulates the number of non-idle lanes per issued
    warp instruction, so ``active_lane_sum / (warp_instructions * 32)`` is
    SIMT lane utilization.
    """

    global_load_transactions: int = 0
    global_store_transactions: int = 0
    global_atomic_ops: int = 0
    global_atomic_serialized_ops: int = 0
    shared_atomic_serialized_ops: int = 0
    shared_load_ops: int = 0
    shared_store_ops: int = 0
    shared_bank_conflicts: int = 0
    warp_instructions: int = 0
    active_lane_sum: int = 0
    warps_launched: int = 0
    kernel_launches: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0

    def add(self, other: "PerfCounters") -> "PerfCounters":
        """In-place accumulate ``other`` into ``self``; returns ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        result = PerfCounters()
        result.add(self)
        result.add(other)
        return result

    def copy(self) -> "PerfCounters":
        return PerfCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta_since(self, snapshot: "PerfCounters") -> "PerfCounters":
        """Counter difference ``self - snapshot`` (for per-kernel deltas)."""
        result = PerfCounters()
        for f in fields(self):
            setattr(
                result, f.name, getattr(self, f.name) - getattr(snapshot, f.name)
            )
        return result

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def global_transactions(self) -> int:
        """All global-memory sector transactions (loads + stores + atomics)."""
        return (
            self.global_load_transactions
            + self.global_store_transactions
            + self.global_atomic_ops
        )

    @property
    def lane_utilization(self) -> float:
        """Fraction of SIMT lanes doing useful work (1.0 = perfectly packed)."""
        if self.warp_instructions == 0:
            return 0.0
        return self.active_lane_sum / (self.warp_instructions * 32)

    @property
    def shared_accesses(self) -> int:
        """All shared-memory lane operations (loads + stores)."""
        return self.shared_load_ops + self.shared_store_ops

    @property
    def bank_conflict_rate(self) -> float:
        """Bank-conflict replays per shared access (0.0 on empty runs)."""
        accesses = self.shared_accesses
        if accesses == 0:
            return 0.0
        return self.shared_bank_conflicts / accesses

    @property
    def atomic_serialization_rate(self) -> float:
        """Serialized replays per global atomic op (0.0 on empty runs)."""
        if self.global_atomic_ops == 0:
            return 0.0
        return self.global_atomic_serialized_ops / self.global_atomic_ops

    @property
    def avg_active_lanes(self) -> float:
        """Mean non-idle lanes per issued warp instruction (0.0 if none)."""
        if self.warp_instructions == 0:
            return 0.0
        return self.active_lane_sum / self.warp_instructions

    def as_dict(self, *, include_derived: bool = False) -> dict:
        """Plain-dict view for reports and JSON dumps.

        With ``include_derived`` the dict additionally carries the derived
        ratio properties — the diff-friendly form the profiler report
        embeds per kernel row.  Every ratio is guarded against empty runs
        (zero shared accesses, zero warp instructions, zero atomics) and
        yields ``0.0`` instead of dividing by zero.
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        if include_derived:
            out["global_transactions"] = self.global_transactions
            out["lane_utilization"] = self.lane_utilization
            out["bank_conflict_rate"] = self.bank_conflict_rate
            out["atomic_serialization_rate"] = self.atomic_serialization_rate
            out["avg_active_lanes"] = self.avg_active_lanes
        return out

    def __repr__(self) -> str:
        interesting = {
            k: v for k, v in self.as_dict().items() if v
        }
        parts = [f"{k}={v}" for k, v in interesting.items()]
        parts.append(f"global_transactions={self.global_transactions}")
        parts.append(f"lane_utilization={self.lane_utilization:.3f}")
        return f"PerfCounters({', '.join(parts)})"
