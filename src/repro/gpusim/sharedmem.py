"""Shared-memory model: capacity checks and bank conflicts.

Shared memory on NVIDIA GPUs is divided into 32 four-byte-wide banks.  When
two lanes of a warp access *different addresses in the same bank* the warp
replays the access; the cost of a shared op is therefore
``max_k |{distinct addresses in bank k}|`` over the warp (same-address
accesses broadcast for free on loads).

The CMS+HT kernel of Section 4.1 lives or dies on shared memory, so the
model computes conflicts from the actual slot indices the sketch structures
touch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SharedMemoryError
from repro.gpusim import hooks
from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.memory import default_warp_ids


def bank_conflict_replays(
    word_addresses: np.ndarray,
    warp_ids: np.ndarray,
    num_banks: int = 32,
) -> int:
    """Total replay count (beyond the first issue) for the given accesses.

    For each warp, the access costs as many cycles as the most-contended
    bank's distinct-address count; the excess over 1 is the replay count
    this function returns.  Same-address lanes broadcast and do not count
    twice, which the unique-(warp, address) reduction captures.
    """
    if word_addresses.size == 0:
        return 0
    word_addresses = word_addresses.astype(np.int64)
    warp_ids = warp_ids.astype(np.int64)
    # Distinct (warp, address) pairs: duplicates broadcast for free.
    order = np.lexsort((word_addresses, warp_ids))
    a = word_addresses[order]
    w = warp_ids[order]
    keep = np.concatenate(([True], (a[1:] != a[:-1]) | (w[1:] != w[:-1])))
    u_addresses = a[keep]
    u_warps = w[keep]
    banks = u_addresses % num_banks
    # Count distinct addresses per (warp, bank), then take max per warp.
    order2 = np.lexsort((banks, u_warps))
    b = banks[order2]
    w2 = u_warps[order2]
    boundaries = np.flatnonzero(
        np.concatenate(([True], (b[1:] != b[:-1]) | (w2[1:] != w2[:-1])))
    )
    counts = np.diff(np.concatenate((boundaries, [b.size])))
    group_warps = w2[boundaries]
    # Max bank-contention per warp.
    warp_boundaries = np.flatnonzero(
        np.concatenate(([True], group_warps[1:] != group_warps[:-1]))
    )
    max_per_warp = np.maximum.reduceat(counts, warp_boundaries)
    return int((max_per_warp - 1).sum())


class SharedMemoryModel:
    """Accounting facade for shared-memory traffic of one device."""

    def __init__(self, spec: DeviceSpec, counters: PerfCounters) -> None:
        self._spec = spec
        self._counters = counters

    def check_allocation(self, nbytes: int) -> None:
        """Raise if a block requests more shared memory than available."""
        if nbytes > self._spec.shared_mem_per_block:
            raise SharedMemoryError(
                f"block requested {nbytes} B shared memory; device offers "
                f"{self._spec.shared_mem_per_block} B per block"
            )

    def load(
        self,
        word_addresses: np.ndarray,
        warp_ids: Optional[np.ndarray] = None,
        *,
        array: Optional[str] = None,
        size: Optional[int] = None,
    ) -> None:
        """Account a shared-memory load for each given 4-byte-word address.

        Naming the tile (``array=``, with its declared word ``size=``)
        additionally reports the accesses to an attached sanitizer for
        race and out-of-bounds checking.
        """
        self._access(word_addresses, warp_ids, store=False, array=array, size=size)

    def store(
        self,
        word_addresses: np.ndarray,
        warp_ids: Optional[np.ndarray] = None,
        *,
        array: Optional[str] = None,
        size: Optional[int] = None,
    ) -> None:
        """Account a shared-memory store for each given word address."""
        self._access(word_addresses, warp_ids, store=True, array=array, size=size)

    def _access(
        self,
        word_addresses: np.ndarray,
        warp_ids: Optional[np.ndarray],
        *,
        store: bool,
        array: Optional[str] = None,
        size: Optional[int] = None,
    ) -> None:
        word_addresses = np.asarray(word_addresses)
        if warp_ids is None:
            warp_ids = default_warp_ids(
                word_addresses.size, self._spec.warp_size
            )
        ops = int(word_addresses.size)
        if store:
            self._counters.shared_store_ops += ops
        else:
            self._counters.shared_load_ops += ops
        self._counters.shared_bank_conflicts += bank_conflict_replays(
            word_addresses, np.asarray(warp_ids), self._spec.num_shared_banks
        )
        if array is not None:
            active = hooks.active()
            if active is not None:
                active.record(
                    "shared",
                    array,
                    word_addresses,
                    kind="write" if store else "read",
                    warp_ids=warp_ids,
                    size=size,
                )
