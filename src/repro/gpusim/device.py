"""The simulated GPU device: allocations, transfers and kernel bookkeeping.

A :class:`Device` owns

* a capacity-checked allocation table (:class:`DeviceArray` handles),
* the accounting models (global memory, shared memory, atomics),
* a :class:`~repro.gpusim.counters.PerfCounters` instance, and
* a timeline of kernel launches with per-launch timing breakdowns.

Kernels run inside ``with device.launch("kernel-name"):`` blocks; the device
snapshots counters on entry and converts the delta into elapsed time on exit
via the roofline model.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import DeviceError, OutOfDeviceMemoryError
from repro.gpusim import hooks
from repro.gpusim.atomics import AtomicsModel
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.memory import GlobalMemoryModel
from repro.gpusim.sharedmem import SharedMemoryModel
from repro.gpusim.timing import KernelTiming, kernel_time, transfer_time


@dataclass
class DeviceArray:
    """Handle to a device-resident array.

    The payload is an ordinary numpy array (the simulator executes on the
    host), but the handle tracks residency so capacity checks and transfer
    accounting behave like the real device.
    """

    data: np.ndarray
    device: "Device" = field(repr=False)
    freed: bool = False
    #: Semantic allocation category (csr, labels, frontier, ...) captured
    #: from the ambient :func:`repro.gpusim.hooks.memscope` at allocation.
    category: str = "scratch"
    #: The engine scope that made the allocation (e.g. ``glp.residency``).
    origin: str = ""

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def _check_alive(self) -> None:
        if self.freed:
            where = f" from {self.origin}" if self.origin else ""
            raise DeviceError(
                f"use of freed DeviceArray "
                f"(category={self.category!r}{where}, "
                f"{self.nbytes} B, shape={tuple(self.shape)})"
            )


@dataclass(frozen=True)
class LaunchRecord:
    """One entry of the device timeline."""

    name: str
    timing: KernelTiming
    counters: PerfCounters

    @property
    def seconds(self) -> float:
        return self.timing.total_seconds


class Device:
    """A simulated GPU."""

    def __init__(
        self,
        spec: DeviceSpec = TITAN_V,
        *,
        index: int = 0,
        sanitize: Optional[bool] = None,
        sanitizer=None,
    ) -> None:
        self.spec = spec
        self.index = index
        # Sanitizer attachment: device-level default (spec.sanitize or the
        # constructor override), an explicitly-supplied Sanitizer, or —
        # resolved per launch — the ambient repro.analysis session.
        self._sanitize = spec.sanitize if sanitize is None else bool(sanitize)
        self._sanitizer = sanitizer
        self.counters = PerfCounters()
        self.memory = GlobalMemoryModel(spec, self.counters)
        self.shared = SharedMemoryModel(spec, self.counters)
        self.atomics = AtomicsModel(spec, self.counters)
        self._allocated_bytes = 0
        self._peak_allocated_bytes = 0
        self._live_arrays: Dict[int, DeviceArray] = {}
        self.timeline: List[LaunchRecord] = []
        self._transfer_seconds = 0.0
        # Per-direction transfer accounting for the nvprof-style report
        # (raw modeled seconds, before any hybrid overlap credit).  Bytes
        # are accumulated here too — not read back from PerfCounters — so
        # counts, bytes and seconds always reset together and
        # transfer_summary() stays internally consistent.
        self._h2d_count = 0
        self._h2d_bytes = 0
        self._h2d_seconds = 0.0
        self._d2h_count = 0
        self._d2h_bytes = 0
        self._d2h_seconds = 0.0

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    @property
    def peak_allocated_bytes(self) -> int:
        """High-water mark of :attr:`allocated_bytes` since the last reset."""
        return self._peak_allocated_bytes

    @property
    def free_bytes(self) -> int:
        return self.spec.global_mem_bytes - self._allocated_bytes

    def alloc(self, shape, dtype) -> DeviceArray:
        """Allocate an uninitialized device array."""
        data = np.empty(shape, dtype=dtype)
        return self._register(data)

    def zeros(self, shape, dtype) -> DeviceArray:
        """Allocate a zero-initialized device array."""
        data = np.zeros(shape, dtype=dtype)
        return self._register(data)

    def _register(self, data: np.ndarray, *, kind: str = "alloc") -> DeviceArray:
        injector = hooks.faults()
        if injector is not None:
            injector.on_alloc(self.index, data.nbytes)
        if data.nbytes > self.free_bytes:
            tracker = hooks.memory()
            if tracker is not None:
                tracker.on_oom(self, data.nbytes)
            raise OutOfDeviceMemoryError(
                f"allocation of {data.nbytes} B exceeds free device memory "
                f"({self.free_bytes} of {self.spec.global_mem_bytes} B)"
            )
        scope = hooks.memscope()
        if scope is not None:
            handle = DeviceArray(
                data=data, device=self, category=scope[0], origin=scope[1]
            )
        else:
            handle = DeviceArray(data=data, device=self)
        self._allocated_bytes += data.nbytes
        if self._allocated_bytes > self._peak_allocated_bytes:
            self._peak_allocated_bytes = self._allocated_bytes
        self._live_arrays[id(handle)] = handle
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_alloc(self, handle, kind)
        return handle

    def free(self, handle: DeviceArray) -> None:
        """Release a device array."""
        if handle.freed:
            return
        if id(handle) not in self._live_arrays:
            raise DeviceError("array does not belong to this device")
        del self._live_arrays[id(handle)]
        self._allocated_bytes -= handle.nbytes
        handle.freed = True
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_free(self, handle)

    def live_allocations(self) -> List[DeviceArray]:
        """Snapshot of the live allocation table (insertion order)."""
        return list(self._live_arrays.values())

    def free_all(self) -> int:
        """Release every live allocation; return the bytes it freed."""
        released = 0
        count = 0
        for handle in list(self._live_arrays.values()):
            released += handle.nbytes
            count += 1
            self.free(handle)
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_free_all(self, released, count)
        return released

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def h2d(self, host_array: np.ndarray) -> DeviceArray:
        """Copy a host array onto the device (PCIe-timed)."""
        injector = hooks.faults()
        if injector is not None:
            injector.on_transfer(self.index, host_array.nbytes, "h2d")
        host_array = np.ascontiguousarray(host_array)
        handle = self._register(host_array.copy(), kind="h2d")
        seconds = transfer_time(host_array.nbytes, self.spec)
        self._record_memcpy("[memcpy HtoD]", host_array.nbytes, seconds)
        self.counters.h2d_bytes += host_array.nbytes
        self._transfer_seconds += seconds
        self._h2d_count += 1
        self._h2d_bytes += host_array.nbytes
        self._h2d_seconds += seconds
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_transfer(
                self, "h2d", host_array.nbytes, seconds, streamed=False
            )
        return handle

    def d2h(self, handle: DeviceArray) -> np.ndarray:
        """Copy a device array back to the host (PCIe-timed)."""
        handle._check_alive()
        injector = hooks.faults()
        if injector is not None:
            injector.on_transfer(self.index, handle.nbytes, "d2h")
        seconds = transfer_time(handle.nbytes, self.spec)
        self._record_memcpy("[memcpy DtoH]", handle.nbytes, seconds)
        self.counters.d2h_bytes += handle.nbytes
        self._transfer_seconds += seconds
        self._d2h_count += 1
        self._d2h_bytes += handle.nbytes
        self._d2h_seconds += seconds
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_transfer(
                self, "d2h", handle.nbytes, seconds, streamed=False
            )
        return handle.data.copy()

    def _record_memcpy(self, name: str, nbytes: int, seconds: float) -> None:
        """Emit a modeled-clock memcpy span when tracing is active."""
        active = obs.tracer()
        if active is not None:
            active.device_span(
                self.index,
                name,
                self.kernel_seconds + self._transfer_seconds,
                seconds,
                cat="memcpy",
                args={"bytes": int(nbytes)},
            )

    def stream_to_device(self, nbytes: int) -> None:
        """Account an H2D stream that leaves no allocation behind.

        The hybrid engine ships per-iteration label deltas this way: the
        bytes cross PCIe (and are timed) but never live in the allocation
        table.
        """
        injector = hooks.faults()
        if injector is not None:
            injector.on_transfer(self.index, nbytes, "h2d")
        seconds = transfer_time(nbytes, self.spec)
        self._record_memcpy("[memcpy HtoD]", nbytes, seconds)
        self.counters.h2d_bytes += nbytes
        self._transfer_seconds += seconds
        self._h2d_count += 1
        self._h2d_bytes += nbytes
        self._h2d_seconds += seconds
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_transfer(self, "h2d", nbytes, seconds, streamed=True)

    def stream_to_host(self, nbytes: int) -> None:
        """Account a D2H stream that reads no allocation (label deltas)."""
        injector = hooks.faults()
        if injector is not None:
            injector.on_transfer(self.index, nbytes, "d2h")
        seconds = transfer_time(nbytes, self.spec)
        self._record_memcpy("[memcpy DtoH]", nbytes, seconds)
        self.counters.d2h_bytes += nbytes
        self._transfer_seconds += seconds
        self._d2h_count += 1
        self._d2h_bytes += nbytes
        self._d2h_seconds += seconds
        tracker = hooks.memory()
        if tracker is not None:
            tracker.on_transfer(self, "d2h", nbytes, seconds, streamed=True)

    def transfer_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-direction transfer totals (count, bytes, raw seconds).

        All three fields per direction are accumulated by the same
        code paths and reset together by :meth:`reset_timing`, so they
        reconcile exactly against any external transfer journal (bytes
        used to be read from :class:`PerfCounters`, which resets on a
        different schedule — ``reset_timing(reset_counters=False)`` left
        counts and bytes describing different sets of transfers).
        """
        return {
            "h2d": {
                "count": self._h2d_count,
                "bytes": self._h2d_bytes,
                "seconds": self._h2d_seconds,
            },
            "d2h": {
                "count": self._d2h_count,
                "bytes": self._d2h_bytes,
                "seconds": self._d2h_seconds,
            },
        }

    # ------------------------------------------------------------------
    # Kernel bookkeeping
    # ------------------------------------------------------------------
    def _resolve_sanitizer(self, sanitize: Optional[bool]):
        """The sanitizer this launch should attach to, or ``None``.

        ``sanitize=False`` opts a launch out entirely; otherwise the
        device's own sanitizer wins, one is created lazily when sanitizing
        was requested, and the ambient ``repro.analysis`` session is the
        fallback.
        """
        if sanitize is False:
            return None
        if self._sanitizer is not None:
            return self._sanitizer
        if sanitize or self._sanitize:
            # Imported lazily: gpusim must stay loadable without the
            # analysis package.
            from repro.analysis.sanitizer import Sanitizer

            self._sanitizer = Sanitizer(
                warp_size=self.spec.warp_size,
                num_banks=self.spec.num_shared_banks,
            )
            return self._sanitizer
        return hooks.session()

    def sanitizer_report(self):
        """This device's sanitizer report, or ``None`` if never sanitized."""
        if self._sanitizer is None:
            return None
        return self._sanitizer.report()

    def barrier(
        self,
        *,
        expected_warps: Optional[int] = None,
        arrived_warps: Optional[int] = None,
    ) -> None:
        """Mark a block-wide ``__syncthreads`` for the sanitizer.

        Zero-cost: barriers are already folded into the timing model's
        per-phase costs, so this only advances the sanitizer's
        happens-before epoch (and checks divergence when arrival counts
        are supplied).  A no-op when no sanitizer is attached.
        """
        active = hooks.active()
        if active is not None:
            active.barrier(
                expected_warps=expected_warps, arrived_warps=arrived_warps
            )

    @contextlib.contextmanager
    def launch(
        self, name: str, *, sanitize: Optional[bool] = None
    ) -> Iterator[PerfCounters]:
        """Run a kernel body; time it from the counter delta on exit."""
        injector = hooks.faults()
        if injector is not None:
            injector.on_launch(self.index, name)
        snapshot = self.counters.copy()
        self.counters.kernel_launches += 1
        san = self._resolve_sanitizer(sanitize)
        previous = hooks.active()
        if san is not None:
            san.begin_kernel(name, device_index=self.index)
        hooks.set_active(san)
        try:
            yield self.counters
        finally:
            hooks.set_active(previous)
            if san is not None:
                san.end_kernel()
        delta = self.counters.delta_since(snapshot)
        timing = kernel_time(delta, self.spec)
        active = obs.tracer()
        if active is not None:
            # Kernel spans live on the modeled clock: this launch starts
            # where the device's accumulated modeled time currently ends.
            active.device_span(
                self.index,
                name,
                self.kernel_seconds + self._transfer_seconds,
                timing.total_seconds,
                cat="kernel",
                args={
                    "global_transactions": delta.global_transactions,
                    "lane_utilization": round(delta.lane_utilization, 4),
                    "memory_bound": timing.memory_bound,
                },
            )
        self.timeline.append(
            LaunchRecord(name=name, timing=timing, counters=delta)
        )

    # ------------------------------------------------------------------
    # Timing queries
    # ------------------------------------------------------------------
    @property
    def kernel_seconds(self) -> float:
        """Total modeled kernel time since the last reset."""
        return sum(record.seconds for record in self.timeline)

    @property
    def transfer_seconds(self) -> float:
        """Total modeled PCIe transfer time since the last reset."""
        return self._transfer_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Kernel + transfer time (the paper's "elapsed time" metric)."""
        return self.kernel_seconds + self._transfer_seconds

    def kernel_breakdown(self) -> Dict[str, float]:
        """Per-kernel-name cumulative seconds."""
        breakdown: Dict[str, float] = {}
        for record in self.timeline:
            breakdown[record.name] = (
                breakdown.get(record.name, 0.0) + record.seconds
            )
        return breakdown

    def reset_timing(self, *, reset_counters: bool = True) -> None:
        """Clear the timeline (and optionally counters) for a fresh run."""
        self.timeline.clear()
        self._transfer_seconds = 0.0
        self._h2d_count = 0
        self._h2d_bytes = 0
        self._h2d_seconds = 0.0
        self._d2h_count = 0
        self._d2h_bytes = 0
        self._d2h_seconds = 0.0
        # A fresh run measures its own high-water mark on top of whatever
        # is still resident (normally nothing — engines free on exit).
        self._peak_allocated_bytes = self._allocated_bytes
        if reset_counters:
            self.counters.reset()

    def discount_transfer(self, seconds: float) -> None:
        """Remove overlapped transfer time (hybrid-mode copy/compute overlap).

        The hybrid engine overlaps PCIe copies with kernel execution; it
        calls this to credit back the hidden portion.
        """
        if seconds < 0:
            raise DeviceError("overlap credit must be non-negative")
        self._transfer_seconds = max(0.0, self._transfer_seconds - seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device(index={self.index}, spec={self.spec.name!r}, "
            f"allocated={self._allocated_bytes}B)"
        )
