"""Sanitizer hook registry: where the simulator meets ``repro.analysis``.

The accounting models (:mod:`~repro.gpusim.memory`,
:mod:`~repro.gpusim.sharedmem`, :mod:`~repro.gpusim.atomics`), the warp
intrinsics and the block helpers all observe memory and synchronization
events.  When a sanitizer is attached they forward those events here; with
no sanitizer attached every forward is one module read plus a ``None``
check, so counters, labels and timings stay bitwise identical — the same
contract :mod:`repro.obs` honors.

Two attachment scopes:

* **kernel scope** — :meth:`repro.gpusim.device.Device.launch` installs the
  resolved sanitizer for the duration of one kernel body
  (:func:`set_active` / :func:`active`);
* **session scope** — :func:`repro.analysis.sanitize` installs an ambient
  sanitizer every subsequent kernel launch on any device attaches to
  (:func:`set_session` / :func:`session`), which is how
  ``repro run --sanitize`` covers engines that build their own devices.

The same registry carries the **fault-injection** slot used by
:mod:`repro.resilience`: when a :class:`~repro.resilience.FaultInjector`
is installed (:func:`set_faults` / :func:`faults`),
``Device.alloc``/``h2d``/``d2h``/``launch`` forward their events to it and
it may raise typed :class:`~repro.errors.DeviceFault`\\ s at the planned
event indices.  With no injector installed every forward is one module
read plus a ``None`` check — zero perturbation, same contract as the
sanitizer and :mod:`repro.obs`.

The registry also carries the **memory-telemetry** slots used by
:mod:`repro.obs.memory`: an ambient :class:`~repro.obs.memory.MemoryTracker`
(:func:`set_memory` / :func:`memory`) that ``Device.alloc``/``free``/
``free_all``/``h2d``/``d2h``/``stream_to_device``/``stream_to_host``
forward allocation and transfer events to, and an ambient allocation
scope tag (:func:`set_memscope` / :func:`memscope`) engines set around
their residency uploads so every allocation is attributed to a semantic
category (``csr``, ``labels``, ``frontier``, ...).  Same zero-perturbation
contract: with no tracker installed each forward is one module read plus
a ``None`` check.

This module deliberately imports nothing: the simulator must stay loadable
without :mod:`repro.analysis` or :mod:`repro.resilience`, and those
packages plug in through these slots only.
"""

from __future__ import annotations

#: Sanitizer recording the currently-executing kernel launch (or ``None``).
_ACTIVE = None

#: Ambient session sanitizer future launches should attach to (or ``None``).
_SESSION = None


def active():
    """The sanitizer attached to the kernel launch in flight, if any."""
    return _ACTIVE


def set_active(sanitizer) -> None:
    """Install (or clear, with ``None``) the kernel-scope sanitizer."""
    global _ACTIVE
    _ACTIVE = sanitizer


def session():
    """The ambient session sanitizer, if one is installed."""
    return _SESSION


def set_session(sanitizer) -> None:
    """Install (or clear, with ``None``) the session-scope sanitizer."""
    global _SESSION
    _SESSION = sanitizer


#: Ambient fault injector device events are forwarded to (or ``None``).
_FAULTS = None


def faults():
    """The installed fault injector, if any."""
    return _FAULTS


def set_faults(injector) -> None:
    """Install (or clear, with ``None``) the ambient fault injector."""
    global _FAULTS
    _FAULTS = injector


#: Ambient device-memory tracker (:class:`repro.obs.memory.MemoryTracker`)
#: alloc/free/h2d/d2h/stream events are forwarded to (or ``None``).
_MEMORY = None

#: Ambient allocation scope tag — a ``(category, origin)`` tuple naming
#: the semantic meaning of allocations made while it is set (or ``None``).
_MEMSCOPE = None


def memory():
    """The installed memory tracker, if any."""
    return _MEMORY


def set_memory(tracker) -> None:
    """Install (or clear, with ``None``) the ambient memory tracker."""
    global _MEMORY
    _MEMORY = tracker


def memscope():
    """The ambient ``(category, origin)`` allocation tag, if any."""
    return _MEMSCOPE


def set_memscope(scope) -> None:
    """Set (or clear, with ``None``) the ambient allocation tag."""
    global _MEMSCOPE
    _MEMSCOPE = scope
