"""Simulated device specifications.

The default spec models the NVIDIA Titan V used in the paper's experiments
(Section 5.1): 80 SMs, 12 GB HBM2 at ~653 GB/s, 96 KB shared memory per SM,
PCIe 3.0 x16 host link.

Because our datasets are ~1000x scaled-down stand-ins, experiments that need
the "graph exceeds GPU memory" regime (Figure 7) use
:func:`titan_v_scaled` to shrink the device memory by the same factor, so the
hybrid code path triggers exactly where it does in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError
from repro.scaling import TIME_SCALE


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable device name for reports.
    num_sms:
        Number of streaming multiprocessors.
    warp_size:
        Threads per warp (32 on every NVIDIA architecture).
    max_threads_per_block:
        Upper bound on block size accepted by kernel launches.
    shared_mem_per_block:
        Shared-memory bytes a single block may allocate.
    num_shared_banks:
        Shared-memory banks (32, 4-byte wide).
    global_mem_bytes:
        Device memory capacity; allocations beyond it raise
        :class:`~repro.errors.OutOfDeviceMemoryError`.
    mem_bandwidth:
        Achievable global-memory bandwidth in bytes/second.
    sector_bytes:
        Memory-transaction granularity (32-byte sectors on Volta).
    clock_hz:
        SM clock used to convert cycles to seconds.
    pcie_bandwidth:
        Host-device transfer bandwidth in bytes/second.
    pcie_latency:
        Fixed per-transfer latency in seconds (pre-scaled to the
        reproduction's time scale, see :mod:`repro.scaling`).
    kernel_launch_overhead:
        Fixed per-kernel-launch time in seconds (pre-scaled likewise).
    shared_atomic_cost_cycles:
        Cycles per serialized shared-memory atomic (same-address lanes
        retry; cheap on-chip).
    global_atomic_cost_cycles:
        Cycles per serialized global-memory atomic (L2 read-modify-write
        round trips; an order of magnitude costlier — the reason the
        ``global`` counting strategy collapses once communities form and
        warps hammer the same counters).
    sanitize:
        When ``True``, every :class:`~repro.gpusim.device.Device` built
        from this spec attaches a :class:`repro.analysis.Sanitizer` to
        each kernel launch (compute-sanitizer analogue).  Purely
        observational: counters and timings are unchanged.
    """

    name: str = "TitanV-sim"
    num_sms: int = 80
    warp_size: int = 32
    max_threads_per_block: int = 1024
    shared_mem_per_block: int = 96 * 1024
    num_shared_banks: int = 32
    global_mem_bytes: int = 12 * 1024**3
    mem_bandwidth: float = 653e9
    sector_bytes: int = 32
    clock_hz: float = 1.455e9
    pcie_bandwidth: float = 12e9
    pcie_latency: float = 10e-6 * TIME_SCALE
    kernel_launch_overhead: float = 5e-6 * TIME_SCALE
    shared_atomic_cost_cycles: float = 4.0
    global_atomic_cost_cycles: float = 56.0
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise DeviceError("warp_size must be a positive power of two")
        if self.num_sms <= 0:
            raise DeviceError("num_sms must be positive")
        if self.sector_bytes <= 0:
            raise DeviceError("sector_bytes must be positive")
        if self.global_mem_bytes <= 0:
            raise DeviceError("global_mem_bytes must be positive")

    @property
    def warp_throughput(self) -> float:
        """Warp-instructions the device retires per second (all SMs)."""
        return self.num_sms * self.clock_hz

    def with_memory(self, global_mem_bytes: int) -> "DeviceSpec":
        """A copy of this spec with a different memory capacity."""
        return replace(self, global_mem_bytes=int(global_mem_bytes))


#: The paper's experimental GPU.
TITAN_V = DeviceSpec()


def titan_v_scaled(scale: float, *, name: str = "TitanV-sim-scaled") -> DeviceSpec:
    """A Titan V with memory capacity scaled by ``scale``.

    Bandwidths and clocks are *not* scaled: the datasets are smaller, so
    absolute times shrink naturally; only the capacity threshold that decides
    "does the graph fit on the device" must track the dataset scale.
    """
    if scale <= 0:
        raise DeviceError(f"scale must be positive, got {scale}")
    return replace(
        TITAN_V,
        name=name,
        global_mem_bytes=max(1, int(TITAN_V.global_mem_bytes * scale)),
    )
