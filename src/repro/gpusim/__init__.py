"""A functional + analytical GPU execution simulator.

This package is the substitute for the NVIDIA Titan V the paper runs on.
Kernels written against it execute the *real* algorithms (real hash-table
probes, real count-min-sketch collisions, real warp vote masks) while every
memory touch is routed through accounting models:

* :mod:`~repro.gpusim.memory` — global memory with a sector-level coalescing
  model,
* :mod:`~repro.gpusim.sharedmem` — shared memory with a bank-conflict model,
* :mod:`~repro.gpusim.atomics` — atomic operations with intra-warp
  serialization,
* :mod:`~repro.gpusim.warp` — bit-exact warp intrinsics
  (``ballot_sync``, ``match_any_sync``, ``popc``, ...),
* :mod:`~repro.gpusim.timing` — a roofline model converting the collected
  :class:`~repro.gpusim.counters.PerfCounters` into elapsed time,
* :mod:`~repro.gpusim.device` — device memory management and PCIe transfers.

The central claim-preserving property: relative performance between kernel
strategies *emerges* from their counter profiles, not from hard-coded
speedups.
"""

from repro.gpusim.config import DeviceSpec, TITAN_V, titan_v_scaled
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import Device, DeviceArray

__all__ = [
    "DeviceSpec",
    "TITAN_V",
    "titan_v_scaled",
    "PerfCounters",
    "Device",
    "DeviceArray",
]
