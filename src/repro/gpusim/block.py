"""Thread-block helpers: BlockReduce and block configuration.

``SharedMemBigNodes`` (paper, Section 4.1) assigns one thread block to each
high-degree vertex and finishes with two ``BlockReduce(max)`` calls.  The
functional reduction is trivial; what matters for the model is its cost:
each warp does a ``log2(warp_size)``-step butterfly, partial results go
through shared memory, and the first warp reduces the partials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.gpusim import hooks
from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters


@dataclass(frozen=True)
class BlockConfig:
    """Launch geometry of a thread block."""

    block_size: int

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise KernelError("block_size must be positive")

    def num_warps(self, warp_size: int = 32) -> int:
        return -(-self.block_size // warp_size)


def block_reduce_max_cost(
    num_blocks: int,
    config: BlockConfig,
    spec: DeviceSpec,
    counters: PerfCounters,
) -> None:
    """Account the cost of ``num_blocks`` BlockReduce(max) invocations.

    Per block: every warp runs a log2(warp_size)-step shuffle butterfly,
    writes its partial to shared memory, and warp 0 reduces the partials
    with one more butterfly.
    """
    if num_blocks <= 0:
        return
    warps = config.num_warps(spec.warp_size)
    butterfly_steps = int(np.log2(spec.warp_size))
    per_block_instructions = warps * butterfly_steps + butterfly_steps + 2
    counters.warp_instructions += num_blocks * per_block_instructions
    counters.active_lane_sum += (
        num_blocks * per_block_instructions * spec.warp_size
    )
    counters.shared_store_ops += num_blocks * warps
    counters.shared_load_ops += num_blocks * warps
    # BlockReduce contains a __syncthreads between the per-warp partial
    # stores and warp 0's final reduction: advance the sanitizer's
    # happens-before epoch (no cost — already folded into the
    # instruction counts above).
    sanitizer = hooks.active()
    if sanitizer is not None:
        sanitizer.barrier(expected_warps=warps, arrived_warps=warps)


def block_reduce_max(values: np.ndarray, fill) -> float:
    """Functional BlockReduce(max) over one block's per-thread values."""
    values = np.asarray(values)
    if values.size == 0:
        return fill
    return values.max()
