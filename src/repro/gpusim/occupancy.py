"""Occupancy estimation for kernel launch configurations.

The CMS+HT kernel trades shared memory for global-memory avoidance; shared
memory is also what bounds how many blocks an SM can host concurrently.
This module computes that bound so configurations can be sanity-checked:
an HT+CMS allocation past ~48 KB halves occupancy on a 96 KB/SM device,
and the latency-hiding loss starts eating the pruning win.

The timing model itself stays roofline (occupancy effects on bandwidth are
second-order for these streaming kernels); occupancy here is a *diagnostic*
surfaced through :func:`strategy_occupancy` and checked by tests and the
ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.gpusim.config import TITAN_V, DeviceSpec

#: Hardware block/warp slots per SM on Volta.
MAX_BLOCKS_PER_SM = 32
MAX_WARPS_PER_SM = 64


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy of one launch configuration on one device."""

    blocks_per_sm: int
    warps_per_sm: int
    limiter: str

    @property
    def occupancy(self) -> float:
        """Active warps relative to the SM's warp slots (0..1)."""
        return self.warps_per_sm / MAX_WARPS_PER_SM


def estimate_occupancy(
    block_size: int,
    shared_mem_per_block: int,
    spec: DeviceSpec = TITAN_V,
) -> OccupancyReport:
    """Blocks/warps resident per SM for a launch configuration.

    Considers the three classical limiters: block slots, warp slots and
    shared memory.  (Register pressure is not modeled — the LP kernels are
    memory-code, far from register-bound.)
    """
    if block_size <= 0 or block_size % spec.warp_size:
        raise KernelError(
            f"block_size must be a positive multiple of {spec.warp_size}"
        )
    if shared_mem_per_block < 0:
        raise KernelError("shared_mem_per_block must be non-negative")
    if shared_mem_per_block > spec.shared_mem_per_block:
        raise KernelError(
            f"block requests {shared_mem_per_block} B shared memory; device "
            f"offers {spec.shared_mem_per_block} B"
        )

    warps_per_block = block_size // spec.warp_size
    limits = {
        "blocks": MAX_BLOCKS_PER_SM,
        "warps": MAX_WARPS_PER_SM // warps_per_block,
    }
    if shared_mem_per_block > 0:
        limits["shared-memory"] = (
            spec.shared_mem_per_block // shared_mem_per_block
        )
    limiter = min(limits, key=limits.get)
    blocks = max(0, limits[limiter])
    return OccupancyReport(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * warps_per_block,
        limiter=limiter,
    )


def strategy_occupancy(config, spec: DeviceSpec = TITAN_V) -> OccupancyReport:
    """Occupancy of the CMS+HT high-degree kernel under ``config``.

    ``config`` is a :class:`~repro.kernels.base.StrategyConfig`; the block
    allocates the HT (8 B/slot) plus the CMS (4 B/counter).
    """
    shared_bytes = (
        config.ht_capacity * 8 + config.cms_depth * config.cms_width * 4
    )
    return estimate_occupancy(config.block_size, shared_bytes, spec)
