"""Global-memory access model with sector-level coalescing.

On Volta-class GPUs a warp's 32 lane addresses are serviced in 32-byte
*sector* transactions: if all lanes hit consecutive 8-byte words the warp
needs 8 sectors; if every lane hits a distinct random sector it needs 32.
This difference — not raw op counts — is what separates the paper's kernel
strategies, so the model computes transactions from the *actual* addresses a
kernel touches:

``transactions = |{(warp, address // sector_bytes)}|``

The arithmetic is fully vectorized so kernels can account a whole edge-array
load with one call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim import hooks
from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters


def default_warp_ids(num_elements: int, warp_size: int = 32) -> np.ndarray:
    """Lane→warp map when consecutive elements go to consecutive lanes."""
    return np.arange(num_elements, dtype=np.int64) // warp_size


def count_sector_transactions(
    byte_addresses: np.ndarray,
    warp_ids: np.ndarray,
    sector_bytes: int,
) -> int:
    """Number of memory transactions for the given per-lane addresses.

    Parameters
    ----------
    byte_addresses:
        Byte address each lane accesses (one entry per active lane).
    warp_ids:
        Warp that issues each access; accesses in the same warp to the same
        sector coalesce into one transaction.
    sector_bytes:
        Transaction granularity.
    """
    if byte_addresses.size == 0:
        return 0
    sectors = byte_addresses // sector_bytes
    # Count distinct (warp, sector) pairs via lexsort — packing both values
    # into one integer key overflows for large warp-step ids.
    order = np.lexsort((sectors, warp_ids))
    s = sectors[order]
    w = warp_ids[order]
    distinct = np.count_nonzero((s[1:] != s[:-1]) | (w[1:] != w[:-1])) + 1
    return int(distinct)


class GlobalMemoryModel:
    """Accounting facade for global-memory traffic of one device.

    All methods are *pure accounting*: the functional data movement happens
    in numpy inside the kernels; this class only observes the addresses.
    """

    def __init__(self, spec: DeviceSpec, counters: PerfCounters) -> None:
        self._spec = spec
        self._counters = counters

    def _sanitize(
        self,
        array: Optional[str],
        offsets,
        kind: str,
        warp_ids=None,
    ) -> None:
        """Forward a *named* access to the attached sanitizer, if any.

        Unnamed traffic (``array=None``) is accounting-only: the sanitizer
        never sees it, which is what guarantees zero false positives on
        arrays a kernel has not opted into checking.
        """
        if array is None:
            return
        active = hooks.active()
        if active is not None:
            active.record(
                "global", array, offsets, kind=kind, warp_ids=warp_ids
            )

    # ------------------------------------------------------------------
    # Streaming (coalesced) access
    # ------------------------------------------------------------------
    def load_sequential(
        self,
        num_elements: int,
        element_bytes: int,
        *,
        array: Optional[str] = None,
    ) -> int:
        """Contiguous streaming read by consecutive lanes (fully coalesced)."""
        transactions = self._sequential_transactions(num_elements, element_bytes)
        self._counters.global_load_transactions += transactions
        if array is not None and num_elements > 0:
            self._sanitize(array, np.arange(num_elements), "read")
        return transactions

    def store_sequential(
        self,
        num_elements: int,
        element_bytes: int,
        *,
        array: Optional[str] = None,
    ) -> int:
        """Contiguous streaming write by consecutive lanes."""
        transactions = self._sequential_transactions(num_elements, element_bytes)
        self._counters.global_store_transactions += transactions
        if array is not None and num_elements > 0:
            self._sanitize(array, np.arange(num_elements), "write")
        return transactions

    def _sequential_transactions(
        self, num_elements: int, element_bytes: int
    ) -> int:
        if num_elements <= 0:
            return 0
        total_bytes = num_elements * element_bytes
        return -(-total_bytes // self._spec.sector_bytes)

    # ------------------------------------------------------------------
    # Indexed (possibly uncoalesced) access
    # ------------------------------------------------------------------
    def load_gather(
        self,
        indices: np.ndarray,
        element_bytes: int,
        warp_ids: Optional[np.ndarray] = None,
        *,
        array: Optional[str] = None,
    ) -> int:
        """Gather ``array[indices]`` — transactions from actual addresses.

        ``indices`` are *element* indices into a device array; the model
        multiplies by ``element_bytes`` to obtain byte addresses.  When
        ``warp_ids`` is omitted, consecutive indices are assumed to map to
        consecutive lanes (the layout of an edge-parallel kernel).
        """
        indices = np.asarray(indices)
        if warp_ids is None:
            warp_ids = default_warp_ids(indices.size, self._spec.warp_size)
        transactions = count_sector_transactions(
            indices.astype(np.int64) * element_bytes,
            warp_ids,
            self._spec.sector_bytes,
        )
        self._counters.global_load_transactions += transactions
        self._sanitize(array, indices, "read", warp_ids=warp_ids)
        return transactions

    def store_scatter(
        self,
        indices: np.ndarray,
        element_bytes: int,
        warp_ids: Optional[np.ndarray] = None,
        *,
        array: Optional[str] = None,
        idempotent: bool = False,
    ) -> int:
        """Scatter write ``array[indices] = values``.

        ``idempotent=True`` marks stores where every lane writes the same
        value (frontier-bitmap "set to 1" scatters): the sanitizer treats
        duplicate idempotent stores as benign, but still flags them
        against readers and non-idempotent writers.
        """
        indices = np.asarray(indices)
        if warp_ids is None:
            warp_ids = default_warp_ids(indices.size, self._spec.warp_size)
        transactions = count_sector_transactions(
            indices.astype(np.int64) * element_bytes,
            warp_ids,
            self._spec.sector_bytes,
        )
        self._counters.global_store_transactions += transactions
        self._sanitize(
            array,
            indices,
            "idempotent" if idempotent else "write",
            warp_ids=warp_ids,
        )
        return transactions

    def load_segments(
        self,
        segment_starts: np.ndarray,
        segment_lengths: np.ndarray,
        element_bytes: int,
        *,
        array: Optional[str] = None,
    ) -> int:
        """Per-warp sequential reads of many contiguous segments.

        Models a kernel where each warp (or block) streams one contiguous
        segment — e.g. a vertex's neighbor list.  Each segment pays
        ``ceil(length * element_bytes / sector)`` transactions plus the
        partial leading sector when the segment start is unaligned.
        """
        segment_lengths = np.asarray(segment_lengths, dtype=np.int64)
        segment_starts = np.asarray(segment_starts, dtype=np.int64)
        if segment_lengths.size == 0:
            return 0
        start_bytes = segment_starts * element_bytes
        end_bytes = start_bytes + segment_lengths * element_bytes
        sector = self._spec.sector_bytes
        first = start_bytes // sector
        last = (np.maximum(end_bytes - 1, start_bytes)) // sector
        transactions = int((last - first + 1)[segment_lengths > 0].sum())
        self._counters.global_load_transactions += transactions
        if array is not None and hooks.active() is not None:
            # Expand per-element offsets (one warp per segment) only when
            # a sanitizer is actually listening — it is O(total length).
            nonzero = segment_lengths > 0
            lengths = segment_lengths[nonzero]
            starts = segment_starts[nonzero]
            if lengths.size:
                total = int(lengths.sum())
                seg_of = np.repeat(np.arange(lengths.size), lengths)
                within = np.arange(total) - np.repeat(
                    np.cumsum(lengths) - lengths, lengths
                )
                self._sanitize(
                    array,
                    starts[seg_of] + within,
                    "read",
                    warp_ids=seg_of,
                )
        return transactions
