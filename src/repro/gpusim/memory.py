"""Global-memory access model with sector-level coalescing.

On Volta-class GPUs a warp's 32 lane addresses are serviced in 32-byte
*sector* transactions: if all lanes hit consecutive 8-byte words the warp
needs 8 sectors; if every lane hits a distinct random sector it needs 32.
This difference — not raw op counts — is what separates the paper's kernel
strategies, so the model computes transactions from the *actual* addresses a
kernel touches:

``transactions = |{(warp, address // sector_bytes)}|``

The arithmetic is fully vectorized so kernels can account a whole edge-array
load with one call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters


def default_warp_ids(num_elements: int, warp_size: int = 32) -> np.ndarray:
    """Lane→warp map when consecutive elements go to consecutive lanes."""
    return np.arange(num_elements, dtype=np.int64) // warp_size


def count_sector_transactions(
    byte_addresses: np.ndarray,
    warp_ids: np.ndarray,
    sector_bytes: int,
) -> int:
    """Number of memory transactions for the given per-lane addresses.

    Parameters
    ----------
    byte_addresses:
        Byte address each lane accesses (one entry per active lane).
    warp_ids:
        Warp that issues each access; accesses in the same warp to the same
        sector coalesce into one transaction.
    sector_bytes:
        Transaction granularity.
    """
    if byte_addresses.size == 0:
        return 0
    sectors = byte_addresses // sector_bytes
    # Count distinct (warp, sector) pairs via lexsort — packing both values
    # into one integer key overflows for large warp-step ids.
    order = np.lexsort((sectors, warp_ids))
    s = sectors[order]
    w = warp_ids[order]
    distinct = np.count_nonzero((s[1:] != s[:-1]) | (w[1:] != w[:-1])) + 1
    return int(distinct)


class GlobalMemoryModel:
    """Accounting facade for global-memory traffic of one device.

    All methods are *pure accounting*: the functional data movement happens
    in numpy inside the kernels; this class only observes the addresses.
    """

    def __init__(self, spec: DeviceSpec, counters: PerfCounters) -> None:
        self._spec = spec
        self._counters = counters

    # ------------------------------------------------------------------
    # Streaming (coalesced) access
    # ------------------------------------------------------------------
    def load_sequential(self, num_elements: int, element_bytes: int) -> int:
        """Contiguous streaming read by consecutive lanes (fully coalesced)."""
        transactions = self._sequential_transactions(num_elements, element_bytes)
        self._counters.global_load_transactions += transactions
        return transactions

    def store_sequential(self, num_elements: int, element_bytes: int) -> int:
        """Contiguous streaming write by consecutive lanes."""
        transactions = self._sequential_transactions(num_elements, element_bytes)
        self._counters.global_store_transactions += transactions
        return transactions

    def _sequential_transactions(
        self, num_elements: int, element_bytes: int
    ) -> int:
        if num_elements <= 0:
            return 0
        total_bytes = num_elements * element_bytes
        return -(-total_bytes // self._spec.sector_bytes)

    # ------------------------------------------------------------------
    # Indexed (possibly uncoalesced) access
    # ------------------------------------------------------------------
    def load_gather(
        self,
        indices: np.ndarray,
        element_bytes: int,
        warp_ids: Optional[np.ndarray] = None,
    ) -> int:
        """Gather ``array[indices]`` — transactions from actual addresses.

        ``indices`` are *element* indices into a device array; the model
        multiplies by ``element_bytes`` to obtain byte addresses.  When
        ``warp_ids`` is omitted, consecutive indices are assumed to map to
        consecutive lanes (the layout of an edge-parallel kernel).
        """
        indices = np.asarray(indices)
        if warp_ids is None:
            warp_ids = default_warp_ids(indices.size, self._spec.warp_size)
        transactions = count_sector_transactions(
            indices.astype(np.int64) * element_bytes,
            warp_ids,
            self._spec.sector_bytes,
        )
        self._counters.global_load_transactions += transactions
        return transactions

    def store_scatter(
        self,
        indices: np.ndarray,
        element_bytes: int,
        warp_ids: Optional[np.ndarray] = None,
    ) -> int:
        """Scatter write ``array[indices] = values``."""
        indices = np.asarray(indices)
        if warp_ids is None:
            warp_ids = default_warp_ids(indices.size, self._spec.warp_size)
        transactions = count_sector_transactions(
            indices.astype(np.int64) * element_bytes,
            warp_ids,
            self._spec.sector_bytes,
        )
        self._counters.global_store_transactions += transactions
        return transactions

    def load_segments(
        self,
        segment_starts: np.ndarray,
        segment_lengths: np.ndarray,
        element_bytes: int,
    ) -> int:
        """Per-warp sequential reads of many contiguous segments.

        Models a kernel where each warp (or block) streams one contiguous
        segment — e.g. a vertex's neighbor list.  Each segment pays
        ``ceil(length * element_bytes / sector)`` transactions plus the
        partial leading sector when the segment start is unaligned.
        """
        segment_lengths = np.asarray(segment_lengths, dtype=np.int64)
        segment_starts = np.asarray(segment_starts, dtype=np.int64)
        if segment_lengths.size == 0:
            return 0
        start_bytes = segment_starts * element_bytes
        end_bytes = start_bytes + segment_lengths * element_bytes
        sector = self._spec.sector_bytes
        first = start_bytes // sector
        last = (np.maximum(end_bytes - 1, start_bytes)) // sector
        transactions = int((last - first + 1)[segment_lengths > 0].sum())
        self._counters.global_load_transactions += transactions
        return transactions
