"""Roofline timing model: counters → seconds.

A kernel's elapsed time is modeled as

``max(compute_time, memory_time) + launch_overhead``

where

* ``memory_time`` charges every global-memory sector transaction against the
  device DRAM bandwidth, and
* ``compute_time`` charges warp instructions, shared-memory operations
  (1/32 cycle per lane-op, +1 cycle per bank-conflict replay) and atomic
  serialization against the aggregate SM issue rate.

This is the standard first-order GPU model: LP is memory-bound on real
hardware (the paper calls it "I/O intensive"), and the same is true here —
the strategies mostly differ in ``memory_time``, with the warp-centric
kernel additionally slashing wasted issue slots in ``compute_time``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one kernel launch."""

    compute_seconds: float
    memory_seconds: float
    launch_overhead: float

    @property
    def total_seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds) + self.launch_overhead

    @property
    def memory_bound(self) -> bool:
        """True when DRAM traffic dominates the kernel."""
        return self.memory_seconds >= self.compute_seconds


def compute_cycles(delta: PerfCounters, spec: DeviceSpec) -> float:
    """Issue-slot cycles implied by a counter delta (whole device)."""
    shared_lane_ops = delta.shared_load_ops + delta.shared_store_ops
    return (
        delta.warp_instructions
        + shared_lane_ops / spec.warp_size
        + delta.shared_bank_conflicts
        + delta.shared_atomic_serialized_ops * spec.shared_atomic_cost_cycles
        + delta.global_atomic_serialized_ops * spec.global_atomic_cost_cycles
    )


def kernel_time(delta: PerfCounters, spec: DeviceSpec) -> KernelTiming:
    """Convert a per-kernel counter delta into a :class:`KernelTiming`."""
    cycles = compute_cycles(delta, spec)
    compute_seconds = cycles / spec.warp_throughput
    memory_bytes = delta.global_transactions * spec.sector_bytes
    memory_seconds = memory_bytes / spec.mem_bandwidth
    return KernelTiming(
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        launch_overhead=spec.kernel_launch_overhead,
    )


def transfer_time(nbytes: int, spec: DeviceSpec) -> float:
    """Host↔device transfer time over the PCIe model."""
    if nbytes <= 0:
        return 0.0
    return spec.pcie_latency + nbytes / spec.pcie_bandwidth
