"""Deterministic fault injection for the simulated device.

A :class:`FaultPlan` is a seeded, fully deterministic schedule of device
faults expressed against the device's *event streams*:

* ``alloc``  — one event per allocation (``Device.alloc``/``zeros``/``h2d``);
* ``transfer`` — one event per PCIe copy (``h2d``/``d2h``/``stream_*``);
* ``launch`` — one event per kernel launch.

Each :class:`FaultSpec` names a fault kind, the 1-based event index it
fires at, and how many consecutive events it covers.  Kinds map to the
typed exceptions of :mod:`repro.errors`:

=============  =========================  ==========  ====================
kind           exception                  stream      recovery
=============  =========================  ==========  ====================
``oom``        ``InjectedOOMFault``       alloc       degradation ladder
``transfer``   ``TransferFault``          transfer    bounded retry
``kernel``     ``KernelAbortFault``       launch      bounded retry
``ecc``        ``EccCorruptionFault``     launch      checkpoint restore
=============  =========================  ==========  ====================

The :class:`FaultInjector` executes a plan.  It attaches through the
import-free :mod:`repro.gpusim.hooks` registry (``set_faults``), so with
no injector installed the device pays one module read plus a ``None``
check per event — counters, labels and timings stay bitwise identical,
the same zero-perturbation contract the sanitizer and :mod:`repro.obs`
honor.  Because the plan is a pure function of (seed, event sequence) and
the simulator is deterministic, the same plan against the same workload
always fires the same fault sequence — which is what makes chaos sweeps
reproducible and resume-identity testable.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import (
    DeviceFault,
    EccCorruptionFault,
    InjectedOOMFault,
    KernelAbortFault,
    ResilienceError,
    TransferFault,
)
from repro.gpusim import hooks

#: Fault kind -> (event stream, exception class).
FAULT_KINDS: Dict[str, Tuple[str, type]] = {
    "oom": ("alloc", InjectedOOMFault),
    "transfer": ("transfer", TransferFault),
    "kernel": ("launch", KernelAbortFault),
    "ecc": ("launch", EccCorruptionFault),
}

#: The device event streams faults are scheduled against.
EVENT_STREAMS = ("alloc", "transfer", "launch")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` at the ``at``-th matching event.

    ``repeat`` widens the spec to ``repeat`` *consecutive* events starting
    at ``at`` — retried work advances the global event counters, so a
    ``repeat`` larger than the retry budget models a persistent failure
    that exhausts recovery.  ``device`` restricts the spec to one device
    index (``None`` matches every device).
    """

    kind: str
    at: int
    repeat: int = 1
    device: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at < 1:
            raise ResilienceError("fault event index 'at' is 1-based")
        if self.repeat < 1:
            raise ResilienceError("fault repeat count must be >= 1")

    @property
    def stream(self) -> str:
        return FAULT_KINDS[self.kind][0]

    def covers(self, index: int) -> bool:
        """Whether this spec fires on the ``index``-th stream event."""
        return self.at <= index < self.at + self.repeat

    def render(self) -> str:
        text = f"{self.kind}@{self.at}"
        if self.repeat > 1:
            text += f"x{self.repeat}"
        if self.device is not None:
            text += f"/dev{self.device}"
        return text


def _parse_int(chunk: str, text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ResilienceError(
            f"bad fault spec {chunk!r}: {what} must be an int"
        ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    kind: str
    stream: str
    index: int
    device: int
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stream": self.stream,
            "index": int(self.index),
            "device": int(self.device),
            "detail": self.detail,
        }


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries."""

    def __init__(
        self, specs: Sequence[FaultSpec] = (), *, seed: Optional[int] = None
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.render()!r})"

    def render(self) -> str:
        """The plan in ``parse``-able spec syntax."""
        return ",".join(spec.render() for spec in self.specs)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``kind@N[xR][/devD]`` specs, comma separated.

        Examples: ``"transfer@3"``, ``"oom@2,kernel@7x4"``,
        ``"ecc@5/dev1"``.
        """
        specs: List[FaultSpec] = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" not in chunk:
                raise ResilienceError(
                    f"bad fault spec {chunk!r}: expected kind@N[xR][/devD]"
                )
            kind, _, rest = chunk.partition("@")
            device: Optional[int] = None
            if "/" in rest:
                rest, _, dev = rest.partition("/")
                if not dev.startswith("dev"):
                    raise ResilienceError(
                        f"bad fault spec {chunk!r}: device is '/devD'"
                    )
                device = _parse_int(chunk, dev[3:], "device index")
            repeat = 1
            if "x" in rest:
                rest, _, rep = rest.partition("x")
                repeat = _parse_int(chunk, rep, "repeat count")
            at = _parse_int(chunk, rest, "event index")
            specs.append(
                FaultSpec(kind=kind.strip(), at=at, repeat=repeat,
                          device=device)
            )
        if not specs:
            raise ResilienceError(f"empty fault plan {text!r}")
        return cls(specs)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_faults: int = 1,
        kinds: Sequence[str] = ("transfer", "kernel", "ecc"),
        stream_totals: Dict[str, int],
    ) -> "FaultPlan":
        """A seeded random plan bounded by observed event-stream totals.

        ``stream_totals`` maps each event stream to the number of events a
        fault-free run produced (measure with :func:`count_events`); fault
        indices are drawn uniformly inside those bounds, so every planned
        fault actually fires.  The same seed always yields the same plan.
        """
        usable = [
            kind for kind in kinds
            if stream_totals.get(FAULT_KINDS[kind][0], 0) > 0
        ]
        if not usable:
            raise ResilienceError(
                "no fault kind has events to fire against "
                f"(stream totals: {stream_totals})"
            )
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(num_faults):
            kind = usable[int(rng.integers(0, len(usable)))]
            total = stream_totals[FAULT_KINDS[kind][0]]
            specs.append(
                FaultSpec(kind=kind, at=int(rng.integers(1, total + 1)))
            )
        return cls(specs, seed=seed)


class FaultInjector:
    """Executes a :class:`FaultPlan` against the device event streams.

    Stateful: global per-stream event counters advance monotonically
    across devices and engine retries, so a spec with ``repeat == 1``
    fires exactly once and the retried work then succeeds.  All fired
    faults are recorded in :attr:`events`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counts: Dict[str, int] = {s: 0 for s in EVENT_STREAMS}
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def _advance(self, stream: str, device: int, detail: str) -> None:
        self.counts[stream] += 1
        index = self.counts[stream]
        for spec in self.plan.specs:
            if spec.stream != stream or not spec.covers(index):
                continue
            if spec.device is not None and spec.device != device:
                continue
            event = FaultEvent(
                kind=spec.kind,
                stream=stream,
                index=index,
                device=device,
                detail=detail,
            )
            self.events.append(event)
            m = obs.metrics()
            if m is not None:
                m.inc("resilience_faults_injected_total", kind=spec.kind)
            obs.emit(
                "fault.injected",
                kind=spec.kind,
                stream=stream,
                index=index,
                device=device,
                detail=detail,
            )
            exc_class = FAULT_KINDS[spec.kind][1]
            raise exc_class(
                f"injected {spec.kind} fault at {stream} event {index} "
                f"on device {device} ({detail})"
            )

    # Device-side hooks (called from repro.gpusim.device) ---------------
    def on_alloc(self, device: int, nbytes: int) -> None:
        self._advance("alloc", device, f"{nbytes}B")

    def on_transfer(self, device: int, nbytes: int, direction: str) -> None:
        self._advance("transfer", device, f"{direction} {nbytes}B")

    def on_launch(self, device: int, name: str) -> None:
        self._advance("launch", device, name)

    # ------------------------------------------------------------------
    def fired(self, kind: Optional[str] = None) -> List[FaultEvent]:
        """Fired fault events, optionally filtered by kind."""
        if kind is None:
            return list(self.events)
        return [e for e in self.events if e.kind == kind]


class _EventCounter:
    """Counts device events without raising (for plan calibration)."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {s: 0 for s in EVENT_STREAMS}

    def on_alloc(self, device: int, nbytes: int) -> None:
        self.counts["alloc"] += 1

    def on_transfer(self, device: int, nbytes: int, direction: str) -> None:
        self.counts["transfer"] += 1

    def on_launch(self, device: int, name: str) -> None:
        self.counts["launch"] += 1


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` for the duration of the block.

    Nested installs are not supported — the previous injector is restored
    on exit so enclosing scopes keep working.
    """
    injector = FaultInjector(plan)
    previous = hooks.faults()
    hooks.set_faults(injector)
    try:
        yield injector
    finally:
        hooks.set_faults(previous)


@contextlib.contextmanager
def count_events() -> Iterator[_EventCounter]:
    """Count alloc/transfer/launch events of the enclosed workload.

    Use the resulting totals as ``stream_totals`` for
    :meth:`FaultPlan.random` so seeded chaos plans always land on events
    that exist.
    """
    counter = _EventCounter()
    previous = hooks.faults()
    hooks.set_faults(counter)
    try:
        yield counter
    finally:
        hooks.set_faults(previous)
