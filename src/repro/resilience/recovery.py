"""Engine-side recovery: retry policy + checkpoint lifecycle.

One :class:`RecoveryContext` accompanies one engine run.  The engine

1. calls :meth:`RecoveryContext.resume_checkpoint` once before its loop
   (resume-from-disk / resume-from-object);
2. calls :meth:`RecoveryContext.checkpoint` at the top of every BSP
   iteration (and optionally persists it to ``checkpoint_dir``);
3. wraps its attempt in ``except DeviceFault`` and asks
   :meth:`RecoveryContext.on_fault` what to do — the method returns the
   checkpoint to restore and re-run from, or re-raises when the fault is
   not recoverable here (OOM belongs to the degradation ladder; transient
   retries and fatal resumes are both bounded by the policy).

Recovered state is always restored from deep copies, so the re-executed
iteration is bit-for-bit the iteration an uninterrupted run would have
executed — the resume-identity property the tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro import obs
from repro.errors import (
    CheckpointError,
    DeviceFault,
    OutOfDeviceMemoryError,
    ResilienceError,
)
from repro.resilience.checkpoint import (
    RunCheckpoint,
    checkpoint_path,
    latest_checkpoint,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded recovery budget for one engine run.

    ``max_retries`` bounds in-place retries of *transient* faults
    (transfer failures, kernel aborts); ``max_resumes`` bounds
    checkpoint restores after *fatal-but-checkpointed* faults (the
    injected ECC label corruption).  ``backoff_seconds`` (doubling per
    attempt up to ``max_backoff_seconds``) models the host-side pause
    before re-issuing work; it is accounted in metrics and — when
    ``sleep`` is set — actually slept, which production would but tests
    never want.
    """

    max_retries: int = 3
    max_resumes: int = 3
    backoff_seconds: float = 0.0
    max_backoff_seconds: float = 1.0
    sleep: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_resumes < 0:
            raise ResilienceError("retry/resume budgets must be >= 0")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ResilienceError("backoff must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Backoff before the ``attempt``-th recovery (1-based)."""
        if self.backoff_seconds <= 0:
            return 0.0
        return min(
            self.backoff_seconds * (2.0 ** (attempt - 1)),
            self.max_backoff_seconds,
        )


#: Default policy engines use when recovery is requested without one.
DEFAULT_RETRY_POLICY = RetryPolicy()


class RecoveryContext:
    """Checkpoint + retry bookkeeping for one engine run."""

    def __init__(
        self,
        engine: str,
        *,
        policy: Optional[RetryPolicy] = None,
        checkpoint_dir: Optional[str] = None,
        resume_from: Union[RunCheckpoint, str, None] = None,
    ) -> None:
        self.engine = engine
        self.policy = policy if policy is not None else DEFAULT_RETRY_POLICY
        self.checkpoint_dir = checkpoint_dir
        self._resume_from = resume_from
        self.current: Optional[RunCheckpoint] = None
        self.retries = 0
        self.resumes = 0
        self.checkpoints = 0
        self.backoff_total_seconds = 0.0
        self.faults: List[DeviceFault] = []

    # ------------------------------------------------------------------
    @classmethod
    def for_run(
        cls,
        engine: str,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        checkpoint_dir: Optional[str] = None,
        resume_from: Union[RunCheckpoint, str, None] = None,
    ) -> Optional["RecoveryContext"]:
        """A context when any resilience option is set, else ``None``.

        ``None`` keeps the fault-free fast path bitwise identical to an
        engine without the resilience layer.
        """
        if (
            retry_policy is None
            and checkpoint_dir is None
            and resume_from is None
        ):
            return None
        return cls(
            engine,
            policy=retry_policy,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )

    # ------------------------------------------------------------------
    def resume_checkpoint(
        self, *, graph, program
    ) -> Optional[RunCheckpoint]:
        """Resolve and validate the checkpoint to resume from, if any."""
        resume = self._resume_from
        if resume is None:
            return None
        if isinstance(resume, str):
            loaded = (
                latest_checkpoint(resume)
                if not resume.endswith(".ckpt")
                else RunCheckpoint.load(resume)
            )
            if loaded is None:
                raise CheckpointError(
                    f"no checkpoint to resume from under {resume!r}"
                )
            resume = loaded
        resume.validate(engine=self.engine, graph=graph, program=program)
        self.current = resume
        return resume

    def checkpoint(
        self,
        *,
        graph,
        program,
        iteration: int,
        labels,
        engine_state: Optional[Dict[str, object]] = None,
    ) -> RunCheckpoint:
        """Capture the BSP-boundary snapshot (and persist when asked)."""
        ckpt = RunCheckpoint.capture(
            engine=self.engine,
            graph=graph,
            program=program,
            iteration=iteration,
            labels=labels,
            engine_state=engine_state,
        )
        self.current = ckpt
        self.checkpoints += 1
        path: Optional[str] = None
        if self.checkpoint_dir is not None:
            path = checkpoint_path(self.checkpoint_dir, self.engine)
            ckpt.save(path)
        m = obs.metrics()
        if m is not None:
            m.inc("resilience_checkpoints_total", engine=self.engine)
        obs.emit(
            "recovery.checkpoint",
            engine=self.engine,
            iteration=int(iteration),
            path=path or "",
        )
        obs.annotate(
            "checkpoint",
            {
                "engine": self.engine,
                "iteration": int(iteration),
                "path": path or "",
            },
        )
        return ckpt

    # ------------------------------------------------------------------
    def on_fault(self, fault: DeviceFault) -> RunCheckpoint:
        """Decide how to recover from ``fault``.

        Returns the checkpoint to restore and re-run from; raises the
        fault back when it is not recoverable at this level:

        * OOM (injected or genuine) — re-running on the same device would
          OOM again; the run_auto / detector degradation ladder owns it;
        * no checkpoint captured yet (fault before the first boundary);
        * the policy's retry or resume budget is exhausted.
        """
        self.faults.append(fault)
        m = obs.metrics()
        if isinstance(fault, OutOfDeviceMemoryError):
            self._emit_decision(fault, "escalate")
            raise fault
        if self.current is None:
            self._emit_decision(fault, "no-checkpoint")
            raise fault
        if fault.transient:
            if self.retries >= self.policy.max_retries:
                self._emit_decision(fault, "retry-budget-exhausted")
                raise fault
            self.retries += 1
            attempt = self.retries
            counter = "resilience_retries_total"
            self._emit_decision(fault, "retry")
        else:
            if self.resumes >= self.policy.max_resumes:
                self._emit_decision(fault, "resume-budget-exhausted")
                raise fault
            self.resumes += 1
            attempt = self.resumes
            counter = "resilience_resumes_total"
            self._emit_decision(fault, "resume")
        backoff = self.policy.backoff_for(attempt)
        self.backoff_total_seconds += backoff
        if backoff > 0 and self.policy.sleep:  # pragma: no cover - timing
            time.sleep(backoff)
        if m is not None:
            m.inc(counter, engine=self.engine, kind=fault.kind)
            m.observe(
                "resilience_recovery_backoff_seconds",
                backoff,
                engine=self.engine,
            )
        return self.current

    def _emit_decision(self, fault: DeviceFault, decision: str) -> None:
        """Journal one recovery decision (no-op when obs is off)."""
        obs.emit(
            "recovery.fault",
            engine=self.engine,
            kind=fault.kind,
            transient=fault.transient,
            decision=decision,
            retries=self.retries,
            resumes=self.resumes,
            checkpoint_iteration=(
                int(self.current.iteration)
                if self.current is not None
                else -1
            ),
        )

    def recovery_span(self, fault: DeviceFault, iteration: int):
        """An obs span wrapping one restore-and-re-run recovery."""
        return obs.span(
            "fault-recovery",
            cat="resilience",
            engine=self.engine,
            kind=fault.kind,
            iteration=iteration,
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Machine-readable recovery accounting for reports."""
        return {
            "engine": self.engine,
            "checkpoints": self.checkpoints,
            "retries": self.retries,
            "resumes": self.resumes,
            "faults": [fault.kind for fault in self.faults],
            "backoff_total_seconds": self.backoff_total_seconds,
        }
