"""Chaos sweeps: seeded fault campaigns with recovery verification.

A sweep first measures a fault-free *reference* run (final ``labels_hash``
plus the device event-stream totals), then replays the same workload under
a series of deterministic :class:`~repro.resilience.FaultPlan`\\ s and
classifies every outcome:

``clean``
    no planned fault actually fired (possible with explicit plans whose
    indices fall past the run's event counts — seeded plans are calibrated
    against the reference totals, so they always fire);
``recovered``
    faults fired, recovery absorbed them, and the final labels are
    bitwise identical to the reference — the resume-identity property;
``degraded``
    the ladder stepped down to a cheaper engine but still produced the
    reference labels (only possible in ``run_auto`` ladder mode);
``mismatch``
    the run completed but its labels differ from the reference — a
    correctness bug in the recovery path;
``failed``
    the run raised even with recovery enabled (e.g. the fault repeated
    past the retry budget with no ladder to fall back on).

``mismatch`` and ``failed`` surface as *error* findings on the resulting
:class:`~repro.analysis.findings.AnalysisReport` (source ``"chaos"``), so
``repro chaos`` can gate CI exactly like ``repro check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.findings import AnalysisReport, Finding
from repro.core.hybrid import run_auto
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.resilience.faults import FaultPlan, count_events, inject
from repro.resilience.recovery import DEFAULT_RETRY_POLICY, RetryPolicy

#: Fault kinds engines can absorb in place (no ladder required).
ENGINE_KINDS = ("transfer", "kernel", "ecc")

#: Fault kinds for the run_auto ladder mode (OOM exercises degradation).
LADDER_KINDS = ("transfer", "kernel", "ecc", "oom")


@dataclass(frozen=True)
class ChaosRun:
    """The outcome of one fault plan replayed against the workload."""

    plan: str
    status: str  # clean | recovered | degraded | mismatch | failed
    engine: str = ""
    labels_hash: str = ""
    identical: bool = False
    faults_fired: Tuple[str, ...] = ()
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("clean", "recovered", "degraded")

    def as_dict(self) -> dict:
        return {
            "plan": self.plan,
            "status": self.status,
            "engine": self.engine,
            "labels_hash": self.labels_hash,
            "identical": bool(self.identical),
            "faults_fired": list(self.faults_fired),
            "error": self.error,
        }


@dataclass
class ChaosReport:
    """A full sweep: the reference run plus every plan's outcome."""

    reference_engine: str
    reference_hash: str
    stream_totals: dict
    runs: List[ChaosRun]

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    def as_dict(self) -> dict:
        return {
            "reference_engine": self.reference_engine,
            "reference_hash": self.reference_hash,
            "stream_totals": dict(self.stream_totals),
            "runs": [run.as_dict() for run in self.runs],
        }

    def analysis_report(self) -> AnalysisReport:
        """The sweep as the shared analysis currency (source ``chaos``)."""
        report = AnalysisReport(source="chaos", checked=len(self.runs))
        for run in self.runs:
            if run.status == "failed":
                report.add(Finding(
                    rule="chaos-run-failed",
                    message=(
                        f"run under plan {run.plan!r} raised: {run.error}"
                    ),
                    location=run.plan,
                ))
            elif run.status == "mismatch":
                report.add(Finding(
                    rule="chaos-identity-mismatch",
                    message=(
                        f"recovered run under plan {run.plan!r} produced "
                        f"labels {run.labels_hash}, reference is "
                        f"{self.reference_hash}"
                    ),
                    location=run.plan,
                ))
            elif run.status == "degraded":
                report.add(Finding(
                    rule="chaos-degraded",
                    message=(
                        f"plan {run.plan!r} stepped the ladder down from "
                        f"{self.reference_engine} to {run.engine} "
                        "(labels identical)"
                    ),
                    location=run.plan,
                ))
        return report


def chaos_sweep(
    graph,
    make_program: Callable[[], object],
    make_engine: Optional[Callable[[], object]] = None,
    *,
    plans: Optional[Sequence[FaultPlan]] = None,
    num_plans: int = 5,
    seed: int = 0,
    faults_per_plan: int = 1,
    kinds: Optional[Sequence[str]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    spec: DeviceSpec = TITAN_V,
    max_iterations: int = 20,
    stop_on_convergence: bool = True,
) -> ChaosReport:
    """Replay seeded fault plans against one workload and classify them.

    ``make_program`` builds a fresh program per run (programs carry
    internal state).  With ``make_engine`` the sweep drives that engine
    directly (its recovery layer must absorb every fault); without it the
    sweep drives :func:`~repro.core.hybrid.run_auto`, which additionally
    exercises the GPU -> hybrid -> CPU degradation ladder — and the plan
    kinds then include ``oom`` by default.

    Plans default to :meth:`FaultPlan.random` seeded ``seed + i``,
    calibrated against the reference run's event totals so every planned
    fault lands on an event that exists.
    """
    policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
    run_kwargs = dict(
        max_iterations=max_iterations,
        stop_on_convergence=stop_on_convergence,
    )

    # Reference run: fault-free labels + event-stream totals.
    with count_events() as counter:
        if make_engine is not None:
            reference_engine = make_engine()
            reference = reference_engine.run(
                graph, make_program(), **run_kwargs
            )
        else:
            reference, reference_engine = run_auto(
                graph, make_program(), spec=spec, **run_kwargs
            )
    reference_hash = reference.labels_hash()
    stream_totals = dict(counter.counts)

    if plans is None:
        if kinds is None:
            kinds = ENGINE_KINDS if make_engine is not None else LADDER_KINDS
        plans = [
            FaultPlan.random(
                seed + i,
                num_faults=faults_per_plan,
                kinds=kinds,
                stream_totals=stream_totals,
            )
            for i in range(num_plans)
        ]

    runs: List[ChaosRun] = []
    for plan in plans:
        program = make_program()
        with inject(plan) as injector:
            try:
                if make_engine is not None:
                    engine = make_engine()
                    result = engine.run(
                        graph, program, retry_policy=policy, **run_kwargs
                    )
                else:
                    result, engine = run_auto(
                        graph,
                        program,
                        spec=spec,
                        retry_policy=policy,
                        **run_kwargs,
                    )
            except Exception as exc:
                runs.append(ChaosRun(
                    plan=plan.render(),
                    status="failed",
                    faults_fired=tuple(e.kind for e in injector.events),
                    error=f"{type(exc).__name__}: {exc}",
                ))
                continue
        fired = tuple(e.kind for e in injector.events)
        labels_hash = result.labels_hash()
        identical = labels_hash == reference_hash
        if not identical:
            status = "mismatch"
        elif engine.name != reference_engine.name:
            status = "degraded"
        elif fired:
            status = "recovered"
        else:
            status = "clean"
        runs.append(ChaosRun(
            plan=plan.render(),
            status=status,
            engine=engine.name,
            labels_hash=labels_hash,
            identical=identical,
            faults_fired=fired,
        ))
    return ChaosReport(
        reference_engine=reference_engine.name,
        reference_hash=reference_hash,
        stream_totals=stream_totals,
        runs=runs,
    )
