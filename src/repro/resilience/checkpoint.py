"""Run checkpoints captured at BSP iteration boundaries.

The engines are bulk-synchronous: between iterations the *entire* run
state is a label array, the program's internal state (LLP volumes, SLP
memories and RNG, seed pins), and a small engine-specific frontier carry
(the active frontier for GLP, last iteration's changed set for hybrid,
per-partition frontiers for multi-GPU).  That makes the iteration boundary
the natural consistency point — exactly where DynLP's batch updates and
Gunrock's BSP frontiers commit — so a :class:`RunCheckpoint` captured
there is sufficient to resume a run **bitwise identically**: the simulator
is deterministic and every source of randomness lives inside the program
state we snapshot.

Checkpoints deep-copy everything they capture (and deep-copy again on
restore), so a retried iteration can never scribble on the snapshot it
may need to restore from.  Serialization is pickle-based — the payload is
numpy arrays plus plain-python program state.
"""

from __future__ import annotations

import copy
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import CheckpointError

#: Bump when the checkpoint payload changes incompatibly.
CHECKPOINT_VERSION = 1

#: File suffix for serialized checkpoints.
CHECKPOINT_SUFFIX = ".ckpt"


@dataclass
class RunCheckpoint:
    """Consistent run state at the top of one BSP iteration.

    ``iteration`` is the iteration *about to run*: restoring the
    checkpoint re-executes that iteration and everything after it.
    """

    engine: str
    graph_name: str
    num_vertices: int
    program_name: str
    iteration: int
    labels: np.ndarray
    program_state: Dict[str, object] = field(default_factory=dict)
    engine_state: Dict[str, object] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        *,
        engine: str,
        graph,
        program,
        iteration: int,
        labels: np.ndarray,
        engine_state: Optional[Dict[str, object]] = None,
    ) -> "RunCheckpoint":
        """Snapshot the run state (deep copies — aliasing-safe)."""
        return cls(
            engine=engine,
            graph_name=graph.name,
            num_vertices=int(graph.num_vertices),
            program_name=program.name,
            iteration=int(iteration),
            labels=labels.copy(),
            program_state=copy.deepcopy(program.__dict__),
            engine_state=copy.deepcopy(engine_state or {}),
        )

    def restore_program(self, program) -> None:
        """Reset ``program``'s internal state to the snapshot."""
        program.__dict__.clear()
        program.__dict__.update(copy.deepcopy(self.program_state))

    def restored_labels(self) -> np.ndarray:
        """A fresh copy of the checkpointed label array."""
        return self.labels.copy()

    def restored_engine_state(self) -> Dict[str, object]:
        """A fresh copy of the engine-specific carry state."""
        return copy.deepcopy(self.engine_state)

    # ------------------------------------------------------------------
    def validate(self, *, engine: str, graph, program) -> None:
        """Refuse to resume a run this checkpoint does not belong to."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} != "
                f"{CHECKPOINT_VERSION}"
            )
        if self.engine != engine:
            raise CheckpointError(
                f"checkpoint belongs to engine {self.engine!r}, "
                f"not {engine!r}"
            )
        if (
            self.graph_name != graph.name
            or self.num_vertices != graph.num_vertices
        ):
            raise CheckpointError(
                f"checkpoint graph {self.graph_name!r} "
                f"(V={self.num_vertices}) does not match {graph.name!r} "
                f"(V={graph.num_vertices})"
            )
        if self.program_name != program.name:
            raise CheckpointError(
                f"checkpoint program {self.program_name!r} does not match "
                f"{program.name!r}"
            )

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Serialize to ``path`` (atomic rename — crash-consistent)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "RunCheckpoint":
        if not os.path.exists(path):
            raise CheckpointError(f"no checkpoint at {path}")
        with open(path, "rb") as fh:
            loaded = pickle.load(fh)
        if not isinstance(loaded, cls):
            raise CheckpointError(
                f"{path} does not contain a RunCheckpoint"
            )
        return loaded


def checkpoint_path(directory: str, engine: str) -> str:
    """Canonical checkpoint file for ``engine`` under ``directory``."""
    slug = engine.lower().replace(" ", "-").replace("/", "-")
    return os.path.join(directory, f"{slug}{CHECKPOINT_SUFFIX}")


def latest_checkpoint(directory: str) -> Optional[RunCheckpoint]:
    """Load the most recently written checkpoint in ``directory``."""
    if not os.path.isdir(directory):
        return None
    candidates = [
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(CHECKPOINT_SUFFIX)
    ]
    if not candidates:
        return None
    return RunCheckpoint.load(max(candidates, key=os.path.getmtime))
