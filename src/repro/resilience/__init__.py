"""Fault injection, checkpoint/resume, and chaos sweeps.

The resilience layer has three parts:

* :mod:`repro.resilience.faults` — deterministic, seeded fault plans
  injected through the import-free :mod:`repro.gpusim.hooks` registry
  (zero perturbation when disabled);
* :mod:`repro.resilience.checkpoint` / :mod:`repro.resilience.recovery`
  — BSP-boundary :class:`RunCheckpoint` capture plus the bounded
  :class:`RetryPolicy` the engines use to retry transient faults and
  resume fatal ones bitwise identically;
* :mod:`repro.resilience.chaos` — seeded fault campaigns that verify the
  recovery story end to end (imported lazily: it depends on the engines,
  which themselves use this package).
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SUFFIX,
    CHECKPOINT_VERSION,
    RunCheckpoint,
    checkpoint_path,
    latest_checkpoint,
)
from repro.resilience.faults import (
    EVENT_STREAMS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    count_events,
    inject,
)
from repro.resilience.recovery import (
    DEFAULT_RETRY_POLICY,
    RecoveryContext,
    RetryPolicy,
)

__all__ = [
    "CHECKPOINT_SUFFIX",
    "CHECKPOINT_VERSION",
    "DEFAULT_RETRY_POLICY",
    "EVENT_STREAMS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RecoveryContext",
    "RetryPolicy",
    "RunCheckpoint",
    "checkpoint_path",
    "count_events",
    "inject",
    "latest_checkpoint",
]
