"""The TaoBao-style fraud-detection pipeline (paper, Figure 1 & Section 5.4).

Stages, mirroring the paper's data flow:

1. :mod:`~repro.pipeline.transactions` — a transaction stream with planted
   fraud rings (the e-commerce traffic source).
2. :mod:`~repro.pipeline.window` — sliding windows over the stream and
   per-window graph construction (Table 4's workloads).
3. :mod:`~repro.pipeline.seeds` — the black-list seed store.
4. :mod:`~repro.pipeline.detector` — seeded LP producing suspicious
   clusters.
5. :mod:`~repro.pipeline.downstream` — the cluster scorer standing in for
   the paper's "more sophisticated algorithms, e.g. graph neural nets".
6. :mod:`~repro.pipeline.pipeline` — the end-to-end orchestration with
   per-stage timing (reproducing the "LP is 75 % of the pipeline" claim).
7. :mod:`~repro.pipeline.metrics` — detection quality metrics against the
   planted ground truth.
8. :mod:`~repro.pipeline.dynlp` — DynLP-style incremental re-convergence
   planning for window slides (edge diff -> affected-vertex frontier).
"""

from repro.pipeline.transactions import TransactionStream, TransactionStreamConfig
from repro.pipeline.window import SlidingWindow, build_window_graph
from repro.pipeline.seeds import SeedStore
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.downstream import ClusterScorer
from repro.pipeline.pipeline import FraudDetectionPipeline, PipelineReport
from repro.pipeline.incremental import (
    IncrementalWindowBuilder,
    SlidingWindowDetector,
    warm_start_seeds,
)
from repro.pipeline.dynlp import (
    AffectedSet,
    IncrementalPlan,
    WindowDiff,
    affected_vertices,
    compute_window_diff,
    plan_slide,
)

__all__ = [
    "TransactionStream",
    "TransactionStreamConfig",
    "SlidingWindow",
    "build_window_graph",
    "SeedStore",
    "ClusterDetector",
    "ClusterScorer",
    "FraudDetectionPipeline",
    "PipelineReport",
    "IncrementalWindowBuilder",
    "SlidingWindowDetector",
    "warm_start_seeds",
    "AffectedSet",
    "IncrementalPlan",
    "WindowDiff",
    "affected_vertices",
    "compute_window_diff",
    "plan_slide",
]
