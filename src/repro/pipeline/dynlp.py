"""DynLP-style incremental re-convergence planning for window slides.

A window slide changes a small fraction of the graph: the retired day's
(user, product) pairs lose weight or disappear, the new day's pairs appear
or gain weight.  Re-running warm-started LP from a *dense* first pass
reprocesses every edge anyway — the dense iteration dominates the serving
cost even though almost nothing can change.

This module turns the slide's explicit edge diff
(:func:`compute_window_diff`) into the **affected vertex set**: the
vertices whose label could differ from the previous detection, seeded into
the engines as an *initial frontier* so iteration 1 runs sparse over
O(changes) instead of dense over O(E).

Why the affected set is sufficient (the identity argument, asserted
bitwise by the warm-window tests):

* Warm-started windows pin every carried label as a seed
  (:func:`~repro.pipeline.incremental.warm_start_seeds` +
  :class:`~repro.algorithms.seeded.SeededFraudLP`), so labeled vertices
  never change — only *unlabeled* vertices can.
* An unlabeled vertex adopts at iteration 1 iff it has at least one
  labeled MFL-input neighbor (positive edge weights make the best score
  positive).  Such a neighbor either (a) was labeled at the very end of
  the previous run — in which case the vertex sits on the previous run's
  **residual frontier** (had the neighbor been labeled earlier, the
  vertex would already have adopted) — or (b) arrived through an edge the
  slide changed, making the vertex a **diff endpoint**.
* Vertices outside ``N(labeled)`` see no positive score, and labeled
  (pinned) vertices never move, so intersecting the candidates with the
  *label boundary* — unlabeled vertices with a labeled in-neighbor —
  drops nothing that could change.

Processing any superset of the iteration-1 changers sparsely, then
advancing the standard frontier machinery, reproduces the dense warm run
bit for bit; removed-edge endpoints are kept in the candidate set (DynLP's
delete-invalidation rule) even though pinned warm labels cannot orphan.

When the affected set grows past ``cutover_ratio`` of the window the
sparse pass stops paying for its bookkeeping, so :func:`plan_slide`
falls back to a full recompute — as it does when there is no residual
frontier to reason from (cold start, or the previous run came from a
dense/fallback engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import PipelineError
from repro.kernels import mfl
from repro.pipeline.window import WindowGraph

#: Bit layout of the packed (user, product) pair keys (matches
#: :mod:`repro.pipeline.incremental`).
PRODUCT_BITS = 32
PRODUCT_MASK = (1 << PRODUCT_BITS) - 1

#: Largest user-id space the packed int64 keys can carry: the user id
#: occupies the high bits, so ``user << PRODUCT_BITS`` must stay below
#: 2**63.  Streams beyond this must widen the key, not wrap silently.
MAX_PACKED_USERS = 1 << (63 - PRODUCT_BITS)


def pack_pairs(users: np.ndarray, products: np.ndarray) -> np.ndarray:
    """Pack (user, product) id pairs into sortable int64 keys."""
    users = np.asarray(users, dtype=np.int64)
    products = np.asarray(products, dtype=np.int64)
    if users.size and int(users.max()) >= MAX_PACKED_USERS:
        raise PipelineError(
            f"user ids >= {MAX_PACKED_USERS} overflow the packed int64 "
            "pair keys"
        )
    if products.size and int(products.max()) > PRODUCT_MASK:
        raise PipelineError("product ids overflow the packed pair keys")
    return (users << PRODUCT_BITS) | products


def unpack_pairs(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unpack int64 pair keys back into (users, products)."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys >> PRODUCT_BITS, keys & PRODUCT_MASK


@dataclass(frozen=True)
class WindowDiff:
    """The explicit edge diff of one window slide.

    All three arrays hold packed (user, product) int64 keys, sorted
    ascending:

    ``added_keys``
        pairs present after the slide but not before;
    ``removed_keys``
        pairs present before but not after;
    ``reweighted_keys``
        pairs present in both whose interaction count changed.
    """

    added_keys: np.ndarray
    removed_keys: np.ndarray
    reweighted_keys: np.ndarray
    #: Distinct pairs in the window before / after the slide.
    num_pairs_before: int
    num_pairs_after: int

    @property
    def num_added(self) -> int:
        return int(self.added_keys.size)

    @property
    def num_removed(self) -> int:
        return int(self.removed_keys.size)

    @property
    def num_reweighted(self) -> int:
        return int(self.reweighted_keys.size)

    @property
    def num_changed(self) -> int:
        """Total changed pairs (added + removed + reweighted)."""
        return self.num_added + self.num_removed + self.num_reweighted

    @property
    def change_ratio(self) -> float:
        """Changed-pair share of the post-slide window."""
        if self.num_pairs_after == 0:
            return 1.0 if self.num_changed else 0.0
        return self.num_changed / self.num_pairs_after

    def endpoint_ids(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct (global user ids, global product ids) the diff touches."""
        keys = np.concatenate(
            [self.added_keys, self.removed_keys, self.reweighted_keys]
        )
        users, products = unpack_pairs(keys)
        return np.unique(users), np.unique(products)


def compute_window_diff(
    before_keys: np.ndarray,
    before_counts: np.ndarray,
    after_keys: np.ndarray,
    after_counts: np.ndarray,
) -> WindowDiff:
    """Diff two sorted-unique packed-pair count tables."""
    before_keys = np.asarray(before_keys, dtype=np.int64)
    after_keys = np.asarray(after_keys, dtype=np.int64)
    in_before = np.isin(after_keys, before_keys, assume_unique=True)
    in_after = np.isin(before_keys, after_keys, assume_unique=True)
    # Both key arrays are sorted, so the surviving (common) keys align.
    common_after = after_counts[in_before]
    common_before = before_counts[in_after]
    reweighted = after_keys[in_before][common_after != common_before]
    return WindowDiff(
        added_keys=after_keys[~in_before],
        removed_keys=before_keys[~in_after],
        reweighted_keys=reweighted,
        num_pairs_before=int(before_keys.size),
        num_pairs_after=int(after_keys.size),
    )


# ----------------------------------------------------------------------
# Affected-vertex computation
# ----------------------------------------------------------------------
def map_previous_vertices(
    vertices: np.ndarray, previous: WindowGraph, current: WindowGraph
) -> np.ndarray:
    """Map previous-window vertex ids into the current window.

    Users map through their global ids, products through theirs; vertices
    absent from the current window are dropped.  Returns sorted unique
    current-window ids.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    user_part = vertices[vertices < previous.num_users]
    product_part = vertices[vertices >= previous.num_users]
    mapped = [
        _map_users(previous.users[user_part], current),
        _map_products(
            previous.products[product_part - previous.num_users], current
        ),
    ]
    return np.unique(np.concatenate(mapped))


def _map_users(user_ids: np.ndarray, current: WindowGraph) -> np.ndarray:
    """Global user ids -> current-window vertex ids (absent dropped)."""
    if user_ids.size == 0:
        return np.empty(0, dtype=np.int64)
    positions = current.window_vertex_of_user(user_ids)
    return positions[positions >= 0]


def _map_products(product_ids: np.ndarray, current: WindowGraph) -> np.ndarray:
    """Global product ids -> current-window vertex ids (absent dropped)."""
    if product_ids.size == 0 or current.products.size == 0:
        return np.empty(0, dtype=np.int64)
    positions = np.searchsorted(current.products, product_ids)
    positions = np.clip(positions, 0, current.products.size - 1)
    found = current.products[positions] == product_ids
    return positions[found] + current.num_users


def diff_endpoint_vertices(
    diff: WindowDiff, current: WindowGraph
) -> np.ndarray:
    """Current-window vertex ids of every changed pair's endpoints.

    Endpoints of *removed* pairs that left the window entirely have no
    current vertex and are dropped — there is nothing left to relabel
    (DynLP's delete rule degenerates to "nothing to invalidate" here
    because warm-started labels are pinned seeds, not derived state).
    """
    users, products = diff.endpoint_ids()
    return np.unique(
        np.concatenate(
            [_map_users(users, current), _map_products(products, current)]
        )
    )


@dataclass(frozen=True)
class AffectedSet:
    """The DynLP affected-vertex computation, step by step."""

    #: Mapped residual frontier ∪ diff endpoints (before boundary filter).
    candidates: np.ndarray
    #: Candidates on the label boundary: unlabeled with a labeled
    #: MFL-input neighbor — the only vertices iteration 1 can change.
    frontier: np.ndarray

    @property
    def num_candidates(self) -> int:
        return int(self.candidates.size)

    @property
    def num_affected(self) -> int:
        return int(self.frontier.size)


def affected_vertices(
    diff: WindowDiff,
    previous: WindowGraph,
    current: WindowGraph,
    *,
    residual_frontier: np.ndarray,
    labeled_vertices: np.ndarray,
) -> AffectedSet:
    """Compute the affected vertex set of one slide.

    ``residual_frontier`` is the previous run's final frontier (previous
    window's vertex ids); ``labeled_vertices`` are the current window's
    seed vertices (every vertex with a pinned warm-start or black-list
    label).  The returned ``frontier`` is safe to hand the engines as the
    initial sparse iteration — see the module docstring for why it covers
    every vertex the dense warm pass could change.
    """
    labeled_vertices = np.unique(
        np.asarray(labeled_vertices, dtype=np.int64)
    )
    candidates = np.union1d(
        map_previous_vertices(residual_frontier, previous, current),
        diff_endpoint_vertices(diff, current),
    )
    # Label-boundary filter (host-side, like the window build itself):
    # expanding the labeled set through the reversed CSR costs
    # O(vol(labeled)) — small, since labels live only on fraud clusters.
    if labeled_vertices.size and candidates.size:
        batch = mfl.expand_edges(current.graph.reversed(), labeled_vertices)
        boundary = np.unique(batch.neighbor_ids.astype(np.int64, copy=False))
        frontier = np.intersect1d(
            candidates, boundary, assume_unique=True
        )
        frontier = frontier[
            ~np.isin(frontier, labeled_vertices, assume_unique=True)
        ]
    else:
        frontier = np.empty(0, dtype=np.int64)
    return AffectedSet(candidates=candidates, frontier=frontier)


# ----------------------------------------------------------------------
# Slide planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IncrementalPlan:
    """How one slide's detection should run.

    ``mode`` is ``"incremental"`` (seed the engines with ``frontier``) or
    ``"full"`` (dense warm recompute); ``reason`` says why:

    ``"ok"``
        incremental mode engaged;
    ``"cold"``
        no previous detection to re-converge from;
    ``"no-residual"``
        the previous run did not expose a residual frontier (dense or
        fallback engine);
    ``"unsupported-engine"``
        the configured engine cannot accept an initial frontier;
    ``"cutover"``
        the affected set exceeded ``cutover_ratio`` of the window, so the
        dense pass is the better schedule.
    """

    mode: str
    reason: str
    frontier: Optional[np.ndarray] = None
    num_affected: int = 0
    num_candidates: int = 0
    affected_ratio: float = 0.0

    @property
    def incremental(self) -> bool:
        return self.mode == "incremental"

    def as_event(self) -> dict:
        """The plan decision as journal-event payload fields."""
        return {
            "mode": self.mode,
            "reason": self.reason,
            "num_affected": int(self.num_affected),
            "num_candidates": int(self.num_candidates),
            "affected_ratio": float(self.affected_ratio),
        }


def full_plan(reason: str) -> IncrementalPlan:
    """A plan that falls back to the dense warm recompute."""
    return IncrementalPlan(mode="full", reason=reason)


def plan_slide(
    diff: WindowDiff,
    previous: WindowGraph,
    current: WindowGraph,
    *,
    residual_frontier: Optional[np.ndarray],
    seeds: Dict[int, int],
    cutover_ratio: float = 0.2,
    engine_supported: bool = True,
) -> IncrementalPlan:
    """Decide between incremental re-convergence and full recompute."""
    if not 0.0 <= cutover_ratio <= 1.0:
        raise PipelineError("cutover_ratio must be in [0, 1]")
    if not engine_supported:
        return full_plan("unsupported-engine")
    if residual_frontier is None:
        return full_plan("no-residual")
    labeled = np.fromiter(seeds.keys(), dtype=np.int64, count=len(seeds))
    affected = affected_vertices(
        diff,
        previous,
        current,
        residual_frontier=residual_frontier,
        labeled_vertices=labeled,
    )
    num_vertices = max(1, int(current.graph.num_vertices))
    ratio = affected.num_affected / num_vertices
    if ratio > cutover_ratio:
        return IncrementalPlan(
            mode="full",
            reason="cutover",
            num_affected=affected.num_affected,
            num_candidates=affected.num_candidates,
            affected_ratio=ratio,
        )
    return IncrementalPlan(
        mode="incremental",
        reason="ok",
        frontier=affected.frontier,
        num_affected=affected.num_affected,
        num_candidates=affected.num_candidates,
        affected_ratio=ratio,
    )
