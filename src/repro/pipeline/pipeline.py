"""End-to-end fraud-detection pipeline with per-stage timing.

Reproduces the Figure 1 flow: transaction window → graph construction →
seeded LP → downstream cluster analysis.  Every stage's *modeled* time is
recorded so the paper's headline pipeline claim — "the LP component
occupies 75 % overhead of TaoBao's automated detection pipeline" (with the
in-house engine) — can be measured, and so can its collapse once GLP
replaces the LP stage.

Graph construction runs on the cluster's ETL layer in production; its cost
is modeled as a throughput over window transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.errors import PipelineError
from repro.pipeline.detector import ClusterDetector, DetectionResult
from repro.pipeline.downstream import ClusterScorer, ScoringResult
from repro.pipeline.metrics import DetectionMetrics, user_detection_metrics
from repro.pipeline.seeds import SeedStore
from repro.pipeline.transactions import TransactionStream
from repro.pipeline.window import WindowGraph, build_window_graph


@dataclass(frozen=True)
class PipelineReport:
    """Timing + quality outcome of one pipeline run over one window."""

    window_days: int
    num_vertices: int
    num_edges: int
    construction_seconds: float
    lp_seconds: float
    downstream_seconds: float
    num_clusters: int
    num_fraud_clusters: int
    metrics: DetectionMetrics

    @property
    def total_seconds(self) -> float:
        return (
            self.construction_seconds
            + self.lp_seconds
            + self.downstream_seconds
        )

    @property
    def lp_fraction(self) -> float:
        """LP's share of the pipeline (the paper's 75 % claim)."""
        total = self.total_seconds
        return self.lp_seconds / total if total else 0.0


class FraudDetectionPipeline:
    """Orchestrates the full detection flow for one engine choice."""

    def __init__(
        self,
        stream: TransactionStream,
        detector: ClusterDetector,
        scorer: Optional[ClusterScorer] = None,
        *,
        seed_store: Optional[SeedStore] = None,
        construction_rate: float = 9e8,
    ) -> None:
        if construction_rate <= 0:
            raise PipelineError("construction_rate must be positive")
        self.stream = stream
        self.detector = detector
        self.scorer = scorer if scorer is not None else ClusterScorer()
        self.seed_store = (
            seed_store
            if seed_store is not None
            else SeedStore(stream.blacklist())
        )
        self.construction_rate = construction_rate

    # ------------------------------------------------------------------
    def run_window(
        self, window_days: int, *, start_day: Optional[int] = None
    ) -> PipelineReport:
        """Run the pipeline over one window and report stage timings."""
        if start_day is None:
            start_day = self.stream.config.num_days - window_days
        window = build_window_graph(self.stream, start_day, window_days)
        return self.run_on_window(window)

    def run_on_window(self, window: WindowGraph) -> PipelineReport:
        """Run the pipeline over an already-built window graph."""
        transactions = self.stream.window_transactions(
            window.start_day, window.num_days
        )
        construction_seconds = transactions.size / self.construction_rate

        seeds = self.seed_store.window_seeds(window)
        with obs.span(
            "pipeline-window",
            cat="pipeline",
            window_days=window.num_days,
            num_vertices=window.graph.num_vertices,
        ):
            detection: DetectionResult = self.detector.detect(window, seeds)
            with obs.span("downstream-scoring", cat="pipeline"):
                scoring: ScoringResult = self.scorer.score(
                    window, detection.clusters
                )

        fraud = scoring.fraud_clusters()
        flagged = (
            DetectionResult(
                clusters=[s.cluster for s in fraud],
                lp_result=detection.lp_result,
            ).flagged_users()
        )
        metrics = user_detection_metrics(
            flagged, self.stream, active_users=window.users
        )
        m = obs.metrics()
        if m is not None:
            m.observe(
                "pipeline_construction_seconds", construction_seconds
            )
            m.observe("pipeline_downstream_seconds", scoring.seconds)
            m.observe(
                "pipeline_total_modeled_seconds",
                construction_seconds + detection.lp_seconds + scoring.seconds,
            )
            m.inc("pipeline_windows_total")
        return PipelineReport(
            window_days=window.num_days,
            num_vertices=window.graph.num_vertices,
            num_edges=window.graph.num_edges,
            construction_seconds=construction_seconds,
            lp_seconds=detection.lp_seconds,
            downstream_seconds=scoring.seconds,
            num_clusters=len(detection.clusters),
            num_fraud_clusters=len(fraud),
            metrics=metrics,
        )

    def run_windows(self, window_days_list: List[int]) -> List[PipelineReport]:
        """Run the pipeline for several window lengths (Table 4 sweep)."""
        return [self.run_window(days) for days in window_days_list]
