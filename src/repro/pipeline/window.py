"""Sliding windows and per-window graph construction.

TaoBao's pipeline maintains "sliding windows containing the transactions in
the past 10-100 days" and builds a graph per window connecting the entities
in the transactions (Section 5.4, Table 4).  This module slices the
transaction stream into windows and compacts each window's touched entities
into a bipartite user-product CSR graph:

* window vertex ids ``[0, num_window_users)`` are the touched users (in
  ascending global-id order), followed by the touched products;
* edge weights are per-pair transaction counts (the dedup-sum of the
  builder);
* the graph is symmetrized — LP propagates both ways through products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import PipelineError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.pipeline.transactions import TransactionStream
from repro.types import VERTEX_DTYPE


@dataclass(frozen=True)
class WindowGraph:
    """A window's compacted graph plus the id mappings back to the stream.

    Attributes
    ----------
    graph:
        Undirected bipartite CSR graph over the window's touched entities.
    users:
        Global user ids of window vertices ``[0, len(users))``.
    products:
        Global product ids of window vertices ``[len(users), ...)``.
    start_day, num_days:
        The window bounds (inclusive start, exclusive end).
    """

    graph: CSRGraph
    users: np.ndarray
    products: np.ndarray
    start_day: int
    num_days: int

    @property
    def num_users(self) -> int:
        return int(self.users.size)

    def window_vertex_of_user(self, user_ids: np.ndarray) -> np.ndarray:
        """Map global user ids to window vertex ids (-1 when absent)."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        # Guard before indexing: ``&`` does not short-circuit, so folding
        # the emptiness test into the ``found`` mask would still evaluate
        # ``self.users[positions]`` and raise on a zero-user window.
        if self.users.size == 0:
            return np.full(user_ids.shape, -1, dtype=np.int64)
        positions = np.searchsorted(self.users, user_ids)
        positions = np.clip(positions, 0, self.users.size - 1)
        found = self.users[positions] == user_ids
        return np.where(found, positions, -1).astype(np.int64)

    def user_of_window_vertex(self, vertices: np.ndarray) -> np.ndarray:
        """Map window vertex ids back to global user ids (-1 for products)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        result = np.full(vertices.size, -1, dtype=np.int64)
        is_user = vertices < self.num_users
        result[is_user] = self.users[vertices[is_user]]
        return result


def build_window_graph(
    stream: TransactionStream,
    start_day: int,
    num_days: int,
    *,
    name: Optional[str] = None,
) -> WindowGraph:
    """Build the interaction graph of one sliding window."""
    transactions = stream.window_transactions(start_day, num_days)
    users = transactions["user"]
    products = transactions["product"]

    window_users, user_index = np.unique(users, return_inverse=True)
    window_products, product_index = np.unique(products, return_inverse=True)
    num_users = window_users.size

    src = user_index.astype(VERTEX_DTYPE)
    dst = (product_index + num_users).astype(VERTEX_DTYPE)
    num_vertices = num_users + window_products.size
    graph_name = name if name is not None else f"window-{num_days}d@{start_day}"
    graph = from_edge_arrays(
        src,
        dst,
        num_vertices,
        weights=np.ones(src.size, dtype=np.float64),
        symmetrize=True,
        name=graph_name,
    )
    return WindowGraph(
        graph=graph,
        users=window_users,
        products=window_products,
        start_day=start_day,
        num_days=num_days,
    )


class SlidingWindow:
    """Iterate the stream's windows of a fixed length.

    ``step_days`` controls the slide (defaults to the window length, i.e.
    tumbling windows — the Table 4 evaluation uses one window per length).
    """

    def __init__(
        self,
        stream: TransactionStream,
        window_days: int,
        *,
        step_days: Optional[int] = None,
    ) -> None:
        if window_days <= 0:
            raise PipelineError("window_days must be positive")
        if window_days > stream.config.num_days:
            raise PipelineError(
                f"window of {window_days} days exceeds the stream length "
                f"({stream.config.num_days} days)"
            )
        self.stream = stream
        self.window_days = window_days
        self.step_days = step_days if step_days is not None else window_days
        if self.step_days <= 0:
            raise PipelineError("step_days must be positive")

    def __iter__(self) -> Iterator[WindowGraph]:
        start = 0
        while start + self.window_days <= self.stream.config.num_days:
            yield build_window_graph(self.stream, start, self.window_days)
            start += self.step_days

    def latest(self) -> WindowGraph:
        """The most recent complete window.

        The stream-length guard of ``__init__`` can be invalidated after
        construction (``window_days``/``step_days`` reconfigured, or the
        underlying stream swapped for a shorter one), which used to yield
        a window with a negative ``start_day`` that silently selected the
        wrong transactions.  Re-check explicitly at call time.
        """
        start = self.stream.config.num_days - self.window_days
        if start < 0:
            raise PipelineError(
                f"window of {self.window_days} days exceeds the stream "
                f"length ({self.stream.config.num_days} days); no "
                "complete window exists"
            )
        return build_window_graph(self.stream, start, self.window_days)
