"""The LP cluster-detection stage.

Runs :class:`~repro.algorithms.seeded.SeededFraudLP` on a window graph from
the seed store's labels, then extracts the "small susceptible clusters" the
downstream stage consumes.  The engine is pluggable — the Figure 7
experiment swaps between GLP (single/multi GPU, hybrid) and the in-house
distributed baseline without touching this stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.algorithms.seeded import SeededFraudLP
from repro.core.results import LPResult
from repro.errors import PipelineError
from repro.pipeline.window import WindowGraph


@dataclass(frozen=True)
class DetectedCluster:
    """One suspicious cluster surfaced by the LP stage."""

    label: int
    #: Window vertex ids of all members (users and products).
    vertices: np.ndarray
    #: Global user ids of the user members.
    users: np.ndarray
    #: Number of seed users that anchored the cluster.
    num_seeds: int


@dataclass
class DetectionResult:
    """Clusters plus the raw LP run for timing analysis."""

    clusters: List[DetectedCluster]
    lp_result: LPResult

    @property
    def lp_seconds(self) -> float:
        return self.lp_result.total_seconds

    def flagged_users(self) -> np.ndarray:
        """Global ids of every user in any detected cluster."""
        if not self.clusters:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([c.users for c in self.clusters]))


class ClusterDetector:
    """Seeded-LP detection over window graphs.

    Parameters
    ----------
    engine:
        Any engine with a ``run(graph, program, ...)`` method (GLPEngine,
        HybridEngine, MultiGPUEngine, a CPU baseline, ...).
    max_iterations:
        LP iteration budget (the paper runs 20).
    max_hops:
        Propagation radius; fraud rings are local, so a small bound keeps
        clusters tight and iteration counts low.
    min_cluster_size / max_cluster_size:
        Size band of "small susceptible clusters" handed downstream.
    retry_policy:
        Serving-grade in-run recovery: forwarded to engines advertising
        ``supports_recovery`` so transient device faults retry from the
        BSP checkpoint instead of failing the whole slide (ladder
        fallbacks and CPU baselines never see it).
    """

    def __init__(
        self,
        engine,
        *,
        max_iterations: int = 20,
        max_hops: Optional[int] = None,
        min_cluster_size: int = 3,
        max_cluster_size: int = 500,
        retry_policy=None,
    ) -> None:
        if min_cluster_size < 1 or max_cluster_size < min_cluster_size:
            raise PipelineError("invalid cluster size band")
        self.engine = engine
        self.max_iterations = max_iterations
        self.max_hops = max_hops
        self.min_cluster_size = min_cluster_size
        self.max_cluster_size = max_cluster_size
        self.retry_policy = retry_policy

    def detect(
        self,
        window: WindowGraph,
        seeds: Dict[int, int],
        *,
        engine=None,
        initial_frontier: Optional[np.ndarray] = None,
    ) -> DetectionResult:
        """Run seeded LP on ``window`` and extract suspicious clusters.

        ``engine`` overrides the configured engine for this call only —
        the hook :class:`~repro.pipeline.incremental.SlidingWindowDetector`
        uses to step down its degradation ladder without rebuilding the
        detector.

        ``initial_frontier`` is the incremental-slide affected set (see
        :mod:`repro.pipeline.dynlp`); it is forwarded only to engines that
        advertise ``supports_incremental``, so ladder fallbacks and
        baselines silently run the usual full detection.
        """
        if not seeds:
            raise PipelineError("seed store contributed no seeds to window")
        run_engine = engine if engine is not None else self.engine
        started = time.perf_counter()
        program = SeededFraudLP(seeds, max_hops=self.max_hops)
        run_kwargs: Dict[str, object] = {}
        if initial_frontier is not None and getattr(
            run_engine, "supports_incremental", False
        ):
            run_kwargs["initial_frontier"] = initial_frontier
        if self.retry_policy is not None and getattr(
            run_engine, "supports_recovery", False
        ):
            run_kwargs["retry_policy"] = self.retry_policy
        with obs.span(
            "lp-detect",
            cat="pipeline",
            window=window.graph.name,
            seeds=len(seeds),
        ):
            lp_result = run_engine.run(
                window.graph,
                program,
                max_iterations=self.max_iterations,
                **run_kwargs,
            )
        labels = lp_result.labels

        clusters: List[DetectedCluster] = []
        seed_vertices = np.fromiter(seeds.keys(), dtype=np.int64, count=len(seeds))
        seed_labels = np.fromiter(seeds.values(), dtype=np.int64, count=len(seeds))
        for label, members in program.clusters(labels).items():
            if not self.min_cluster_size <= members.size <= self.max_cluster_size:
                continue
            users = window.user_of_window_vertex(members)
            users = users[users >= 0]
            num_seeds = int(
                np.isin(seed_vertices[seed_labels == label], members).sum()
            )
            clusters.append(
                DetectedCluster(
                    label=int(label),
                    vertices=members,
                    users=users,
                    num_seeds=num_seeds,
                )
            )
        clusters.sort(key=lambda c: c.label)
        m = obs.metrics()
        if m is not None:
            m.observe(
                "pipeline_lp_modeled_seconds", lp_result.total_seconds
            )
            m.observe(
                "pipeline_detect_wall_seconds",
                time.perf_counter() - started,
            )
            m.inc("pipeline_detections_total")
            m.inc("pipeline_clusters_total", len(clusters))
        obs.emit(
            "slide.detect",
            engine=getattr(run_engine, "name", type(run_engine).__name__),
            clusters=len(clusters),
            iterations=lp_result.num_iterations,
            modeled_seconds=lp_result.total_seconds,
        )
        return DetectionResult(clusters=clusters, lp_result=lp_result)
