"""Downstream cluster analysis (the GNN stage's stand-in).

The paper hands detected clusters to "more sophisticated algorithms, e.g.
graph neural nets, to discover new frauds".  We have no trained GNN — and
none is needed to reproduce the paper's system claims — so this stage scores
clusters with the structural features fraud GNNs learn from:

* **density** — fraud rings are unusually dense;
* **seed fraction** — clusters anchored by many black-listed users;
* **weight concentration** — repeated hammering of few products.

The *timing model* matters more than the classifier: per-cluster inference
cost is charged per cluster edge at GNN-like rates, so the pipeline's stage
shares (LP = 75 %) can be measured end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import PipelineError
from repro.pipeline.detector import DetectedCluster
from repro.pipeline.window import WindowGraph


@dataclass(frozen=True)
class ScoredCluster:
    """A detected cluster with its suspicion score and features."""

    cluster: DetectedCluster
    score: float
    density: float
    seed_fraction: float
    weight_per_edge: float

    @property
    def is_fraud(self) -> bool:
        return self.score >= 0.5


@dataclass
class ScoringResult:
    """All scored clusters plus the stage's modeled inference time."""

    scored: List[ScoredCluster]
    seconds: float

    def fraud_clusters(self) -> List[ScoredCluster]:
        return [s for s in self.scored if s.is_fraud]


class ClusterScorer:
    """Feature-based cluster classifier with a GNN-like cost model.

    Parameters
    ----------
    edges_per_second:
        Inference throughput per cluster edge.  GNN message passing over
        ~3 layers with feature matrices is orders of magnitude slower per
        edge than LP's label reads; the default reproduces the paper's
        stage balance (LP ~75 % of the pipeline, the rest split between
        graph construction and downstream analysis).
    """

    def __init__(self, *, edges_per_second: float = 8e6) -> None:
        if edges_per_second <= 0:
            raise PipelineError("edges_per_second must be positive")
        self.edges_per_second = edges_per_second

    def score(
        self, window: WindowGraph, clusters: List[DetectedCluster]
    ) -> ScoringResult:
        """Score every cluster; returns results plus modeled stage time."""
        graph = window.graph
        scored: List[ScoredCluster] = []
        total_edges = 0
        for cluster in clusters:
            members = cluster.vertices
            member_set = np.zeros(graph.num_vertices, dtype=bool)
            member_set[members] = True
            internal_edges = 0
            internal_weight = 0.0
            for v in members:
                nbrs = graph.neighbors(int(v))
                inside = member_set[nbrs]
                internal_edges += int(inside.sum())
                internal_weight += float(
                    graph.neighbor_weights(int(v))[inside].sum()
                )
            total_edges += internal_edges
            n = members.size
            possible = n * (n - 1)
            density = internal_edges / possible if possible else 0.0
            seed_fraction = (
                cluster.num_seeds / cluster.users.size
                if cluster.users.size
                else 0.0
            )
            weight_per_edge = (
                internal_weight / internal_edges if internal_edges else 0.0
            )
            # Logistic blend of the three features; weights chosen so a
            # dense, seed-anchored, repeat-heavy cluster scores ~1.
            z = (
                6.0 * density
                + 4.0 * seed_fraction
                + 0.4 * np.log1p(weight_per_edge)
                - 2.5
            )
            score = float(1.0 / (1.0 + np.exp(-z)))
            scored.append(
                ScoredCluster(
                    cluster=cluster,
                    score=score,
                    density=density,
                    seed_fraction=seed_fraction,
                    weight_per_edge=weight_per_edge,
                )
            )
        seconds = total_edges / self.edges_per_second
        return ScoringResult(scored=scored, seconds=seconds)
