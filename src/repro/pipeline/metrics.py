"""Detection-quality metrics against the planted ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.pipeline.detector import DetectedCluster
from repro.pipeline.transactions import TransactionStream


@dataclass(frozen=True)
class DetectionMetrics:
    """User-level precision/recall of the flagged set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def user_detection_metrics(
    flagged_users: np.ndarray,
    stream: TransactionStream,
    *,
    active_users: Optional[np.ndarray] = None,
) -> DetectionMetrics:
    """Score a flagged-user set against the stream's ring membership.

    ``active_users`` restricts ground truth to users present in the scored
    window — rings dormant in the window can't be detected and shouldn't
    count as misses.
    """
    membership = stream.ring_membership()
    fraud_users = np.flatnonzero(membership >= 0)
    if active_users is not None:
        fraud_users = fraud_users[np.isin(fraud_users, active_users)]
    flagged = np.unique(np.asarray(flagged_users, dtype=np.int64))
    tp = int(np.isin(flagged, fraud_users).sum())
    fp = int(flagged.size - tp)
    fn = int(fraud_users.size - tp)
    return DetectionMetrics(
        true_positives=tp, false_positives=fp, false_negatives=fn
    )


def cluster_purity(
    clusters: List[DetectedCluster], stream: TransactionStream
) -> Dict[int, float]:
    """Per-cluster fraction of user members belonging to one true ring."""
    membership = stream.ring_membership()
    purity: Dict[int, float] = {}
    for cluster in clusters:
        if cluster.users.size == 0:
            purity[cluster.label] = 0.0
            continue
        rings = membership[cluster.users]
        rings = rings[rings >= 0]
        if rings.size == 0:
            purity[cluster.label] = 0.0
            continue
        _, counts = np.unique(rings, return_counts=True)
        purity[cluster.label] = float(counts.max() / cluster.users.size)
    return purity
