"""Synthetic e-commerce transaction stream with planted fraud rings.

The paper's pipeline consumes "sliding windows of recent purchases/clicks"
from TaoBao.  That stream is proprietary, so this module generates the
closest synthetic equivalent:

* **normal traffic** — users drawn near-uniformly, products by a Zipf
  popularity law (the defining skew of e-commerce interaction graphs);
* **fraud rings** — small groups of colluding accounts that repeatedly
  interact with a small pool of ring-controlled products (the
  dense-small-cluster signature seeded LP is deployed to find);
* a fraction of ring members is *black-listed* up front, forming the seed
  store the detection stage starts from.

Transactions carry ``(day, user, product, amount)`` so the window stage can
slice by day and weight edges by interaction counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import PipelineError
from repro.graph.generators.bipartite import zipf_popularity

#: Structured dtype of one transaction record.
TRANSACTION_DTYPE = np.dtype(
    [
        ("day", np.int32),
        ("user", np.int64),
        ("product", np.int64),
        ("amount", np.float64),
    ]
)


@dataclass(frozen=True)
class TransactionStreamConfig:
    """Parameters of the synthetic stream.

    The defaults generate a stream whose 10..100-day windows reproduce the
    Table 4 growth curve at ~1/10000 of TaoBao's scale.
    """

    num_users: int = 60_000
    num_products: int = 45_000
    num_days: int = 100
    transactions_per_day: int = 17_000
    zipf_exponent: float = 1.05
    #: Fraction of each day's normal users drawn from a "regulars" pool
    #: (drives the sublinear vertex growth of Table 4).
    regular_fraction: float = 0.7
    regulars_pool_fraction: float = 0.15
    num_rings: int = 40
    ring_size: int = 12
    ring_products: int = 4
    ring_transactions_per_day: int = 30
    #: Fraction of ring members known (black-listed) in advance.
    seed_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_products <= 0:
            raise PipelineError("user/product universes must be non-empty")
        if self.num_days <= 0 or self.transactions_per_day < 0:
            raise PipelineError("stream length must be positive")
        if self.num_rings * self.ring_size > self.num_users:
            raise PipelineError("fraud rings exceed the user universe")
        if not 0.0 < self.seed_fraction <= 1.0:
            raise PipelineError("seed_fraction must be in (0, 1]")


@dataclass
class FraudRing:
    """Ground truth of one planted ring."""

    ring_id: int
    members: np.ndarray
    products: np.ndarray
    seeded_members: np.ndarray


class TransactionStream:
    """A fully materialized synthetic transaction stream."""

    def __init__(self, config: TransactionStreamConfig = TransactionStreamConfig()) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.rings: List[FraudRing] = []
        self.transactions = self._generate()

    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self.config.num_users

    @property
    def num_products(self) -> int:
        return self.config.num_products

    def ring_membership(self) -> np.ndarray:
        """``membership[user] = ring_id`` or -1 for honest users."""
        membership = np.full(self.config.num_users, -1, dtype=np.int64)
        for ring in self.rings:
            membership[ring.members] = ring.ring_id
        return membership

    def blacklist(self) -> dict:
        """Seed mapping ``{user_id: ring_id}`` of known-bad accounts."""
        seeds = {}
        for ring in self.rings:
            for user in ring.seeded_members:
                seeds[int(user)] = ring.ring_id
        return seeds

    def window_transactions(self, start_day: int, num_days: int) -> np.ndarray:
        """Transactions with ``start_day <= day < start_day + num_days``."""
        if num_days <= 0:
            raise PipelineError("num_days must be positive")
        days = self.transactions["day"]
        mask = (days >= start_day) & (days < start_day + num_days)
        return self.transactions[mask]

    # ------------------------------------------------------------------
    def _generate(self) -> np.ndarray:
        cfg = self.config
        rng = self._rng

        # Reserve the top of the user id space for ring members, so ground
        # truth stays easy to audit in tests.
        ring_base = cfg.num_users - cfg.num_rings * cfg.ring_size
        for ring_id in range(cfg.num_rings):
            members = np.arange(
                ring_base + ring_id * cfg.ring_size,
                ring_base + (ring_id + 1) * cfg.ring_size,
                dtype=np.int64,
            )
            products = rng.choice(
                cfg.num_products, size=cfg.ring_products, replace=False
            ).astype(np.int64)
            num_seeded = max(1, int(round(cfg.seed_fraction * cfg.ring_size)))
            seeded = members[:num_seeded]
            self.rings.append(
                FraudRing(
                    ring_id=ring_id,
                    members=members,
                    products=products,
                    seeded_members=seeded,
                )
            )

        chunks = []
        popularity = zipf_popularity(cfg.num_products, cfg.zipf_exponent)
        regulars_pool = max(1, int(cfg.regulars_pool_fraction * ring_base))
        for day in range(cfg.num_days):
            # Normal traffic: a mix of a regulars pool and the long tail.
            n = cfg.transactions_per_day
            n_regular = int(cfg.regular_fraction * n)
            users = np.concatenate(
                [
                    rng.integers(0, regulars_pool, n_regular, dtype=np.int64),
                    rng.integers(0, ring_base, n - n_regular, dtype=np.int64),
                ]
            )
            products = rng.choice(
                cfg.num_products, size=n, p=popularity
            ).astype(np.int64)
            amounts = rng.lognormal(mean=3.0, sigma=1.0, size=n)
            chunk = np.empty(n, dtype=TRANSACTION_DTYPE)
            chunk["day"] = day
            chunk["user"] = users
            chunk["product"] = products
            chunk["amount"] = amounts
            chunks.append(chunk)

            # Ring traffic: members hammer ring products (and sprinkle a
            # little camouflage on popular products).
            for ring in self.rings:
                m = cfg.ring_transactions_per_day
                r_users = rng.choice(ring.members, size=m).astype(np.int64)
                camouflage = rng.random(m) < 0.1
                r_products = np.where(
                    camouflage,
                    rng.choice(cfg.num_products, size=m, p=popularity),
                    rng.choice(ring.products, size=m),
                ).astype(np.int64)
                r_chunk = np.empty(m, dtype=TRANSACTION_DTYPE)
                r_chunk["day"] = day
                r_chunk["user"] = r_users
                r_chunk["product"] = r_products
                r_chunk["amount"] = rng.lognormal(2.0, 0.5, m)
                chunks.append(r_chunk)

        return np.concatenate(chunks)
