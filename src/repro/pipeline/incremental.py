"""Incremental sliding-window maintenance and warm-started detection.

Production pipelines do not rebuild a 100-day window from scratch every
day: they *slide* it — add the newest day's transactions, retire the
oldest — and they warm-start LP from the previous window's labels, which
converges in a couple of iterations because most of the graph is unchanged.

:class:`IncrementalWindowBuilder` maintains per-(user, product) interaction
counts under ``add_day`` / ``retire_day`` and materializes the current
:class:`~repro.pipeline.window.WindowGraph` on demand.

:func:`warm_start_seeds` carries a previous detection's labels into the
next window's seed set, so rings already found keep their identity across
windows (and LP re-converges fast).

:class:`SlidingWindowDetector` ties the two together into the serving
loop: slide the window, warm-start the seeds from the previous detection,
and hand the graph to a (preferably frontier-mode) engine — after
iteration 1 only the delta neighborhoods of the ~1 % changed edges are
reprocessed.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.errors import PipelineError
from repro.graph.builder import from_edge_arrays
from repro.pipeline.detector import ClusterDetector, DetectionResult
from repro.pipeline.dynlp import (
    MAX_PACKED_USERS,
    PRODUCT_BITS as _PRODUCT_BITS,
    PRODUCT_MASK as _PRODUCT_MASK,
    IncrementalPlan,
    WindowDiff,
    compute_window_diff,
    full_plan,
    plan_slide,
)
from repro.pipeline.seeds import SeedStore
from repro.pipeline.transactions import TransactionStream
from repro.pipeline.window import WindowGraph
from repro.types import NO_LABEL, VERTEX_DTYPE


class IncrementalWindowBuilder:
    """Maintain a sliding window's interaction counts day by day.

    The per-(user, product) counts are kept as parallel sorted arrays
    (packed int64 keys + float64 counts); folding a day in or out is one
    ``np.unique`` aggregation and a sorted merge instead of a Python loop
    over individual transactions.
    """

    def __init__(self, stream: TransactionStream) -> None:
        if stream.config.num_products > _PRODUCT_MASK:
            raise PipelineError("too many products for packed pair keys")
        # The user id occupies the key's high bits; ids at or above
        # 2**(63-PRODUCT_BITS) would shift into the sign bit and collide
        # after wrapping, silently merging distinct pairs.
        if stream.config.num_users > MAX_PACKED_USERS:
            raise PipelineError(
                f"too many users ({stream.config.num_users}) for packed "
                f"int64 pair keys (max {MAX_PACKED_USERS})"
            )
        self.stream = stream
        self._pair_keys = np.empty(0, dtype=np.int64)
        self._pair_counts = np.empty(0, dtype=np.float64)
        self._days: Set[int] = set()
        #: The edge diff of the most recent :meth:`slide`.
        self.last_diff: Optional[WindowDiff] = None

    # ------------------------------------------------------------------
    @property
    def days(self) -> Set[int]:
        """The set of days currently inside the window."""
        return set(self._days)

    @property
    def num_pairs(self) -> int:
        """Distinct (user, product) pairs with non-zero weight."""
        return int(self._pair_keys.size)

    def add_day(self, day: int) -> None:
        """Fold one day's transactions into the window."""
        if day in self._days:
            raise PipelineError(f"day {day} already in the window")
        self._apply(day, +1.0)
        self._days.add(day)

    def retire_day(self, day: int) -> None:
        """Remove one day's transactions from the window."""
        if day not in self._days:
            raise PipelineError(f"day {day} not in the window")
        self._apply(day, -1.0)
        self._days.remove(day)

    def slide(self) -> WindowDiff:
        """Advance the window by one day (retire oldest, add next).

        Returns the slide's explicit edge diff — the added / removed /
        reweighted (user, product) pairs — which the incremental serving
        loop turns into an affected-vertex frontier
        (:mod:`repro.pipeline.dynlp`).
        """
        if not self._days:
            raise PipelineError("cannot slide an empty window")
        oldest = min(self._days)
        newest = max(self._days)
        if newest + 1 >= self.stream.config.num_days:
            raise PipelineError("stream exhausted")
        # ``_apply`` replaces the arrays rather than mutating them, so the
        # pre-slide references stay valid for diffing.
        before_keys = self._pair_keys
        before_counts = self._pair_counts
        self.retire_day(oldest)
        self.add_day(newest + 1)
        diff = compute_window_diff(
            before_keys, before_counts, self._pair_keys, self._pair_counts
        )
        self.last_diff = diff
        return diff

    def snapshot(self) -> dict:
        """Copy the window state so a failed slide can be rolled back."""
        return {
            "pair_keys": self._pair_keys.copy(),
            "pair_counts": self._pair_counts.copy(),
            "days": set(self._days),
            "last_diff": self.last_diff,
        }

    def restore(self, snapshot: dict) -> None:
        """Reset the window to a :meth:`snapshot`."""
        self._pair_keys = snapshot["pair_keys"].copy()
        self._pair_counts = snapshot["pair_counts"].copy()
        self._days = set(snapshot["days"])
        self.last_diff = snapshot["last_diff"]

    def _apply(self, day: int, sign: float) -> None:
        """Fold one day's transactions in (+1) or out (-1), vectorized.

        Aggregates the day to unique (user, product) pairs with
        ``np.unique``, merges them into the sorted running arrays, and
        drops pairs whose count retires to zero — the exact semantics of
        the old per-transaction dict loop (counts are sums of ±1.0, which
        float64 represents exactly).
        """
        transactions = self.stream.window_transactions(day, 1)
        if transactions.size == 0:
            return
        day_keys = (
            transactions["user"].astype(np.int64) << _PRODUCT_BITS
        ) | transactions["product"].astype(np.int64)
        day_keys, day_counts = np.unique(day_keys, return_counts=True)

        merged_keys = np.concatenate([self._pair_keys, day_keys])
        merged_counts = np.concatenate(
            [self._pair_counts, sign * day_counts]
        )
        keys, inverse = np.unique(merged_keys, return_inverse=True)
        counts = np.bincount(
            inverse, weights=merged_counts, minlength=keys.size
        )
        keep = counts > 0.0
        self._pair_keys = keys[keep]
        self._pair_counts = counts[keep]

    # ------------------------------------------------------------------
    def build(self) -> WindowGraph:
        """Materialize the current window as a :class:`WindowGraph`."""
        if not self._days:
            raise PipelineError("window is empty")
        users = self._pair_keys >> _PRODUCT_BITS
        products = self._pair_keys & _PRODUCT_MASK
        weights = self._pair_counts.copy()

        window_users, user_index = np.unique(users, return_inverse=True)
        window_products, product_index = np.unique(
            products, return_inverse=True
        )
        num_users = window_users.size
        start = min(self._days)
        graph = from_edge_arrays(
            user_index.astype(VERTEX_DTYPE),
            (product_index + num_users).astype(VERTEX_DTYPE),
            num_users + window_products.size,
            weights=weights,
            symmetrize=True,
            name=f"window-inc-{len(self._days)}d@{start}",
        )
        return WindowGraph(
            graph=graph,
            users=window_users,
            products=window_products,
            start_day=start,
            num_days=len(self._days),
        )


def warm_start_seeds(
    previous: WindowGraph,
    previous_labels: np.ndarray,
    current: WindowGraph,
    base_seeds: Dict[int, int],
    *,
    max_carryover: Optional[int] = None,
    carry_products: bool = False,
) -> Dict[int, int]:
    """Carry a previous detection into the next window's seed set.

    Every user labeled in the previous window (and still present in the
    current one) becomes a seed with its old cluster label; the black-list
    ``base_seeds`` always win on conflict.  ``max_carryover`` caps the
    number of carried users (strongest first = lowest previous vertex id).
    With ``carry_products``, labeled products are carried the same way —
    this is what makes consecutive windows *fully* warm: without it every
    product re-labels from scratch in iteration 1, dragging most of the
    graph back onto the frontier.

    Returns the merged ``{current_window_vertex: label}`` mapping.
    """
    labeled = np.flatnonzero(previous_labels != NO_LABEL)
    users = previous.user_of_window_vertex(labeled)
    keep = users >= 0
    users = users[keep]
    labels = previous_labels[labeled[keep]]
    if max_carryover is not None:
        users = users[:max_carryover]
        labels = labels[:max_carryover]

    current_vertices = current.window_vertex_of_user(users)
    present = current_vertices >= 0
    merged = {
        int(v): int(l)
        for v, l in zip(current_vertices[present], labels[present])
    }
    # Guard before indexing: ``&`` does not short-circuit, so folding the
    # emptiness test into the ``found`` mask still evaluates
    # ``current.products[positions]`` and raises on an empty window side.
    if carry_products and current.products.size > 0:
        prev_products = labeled[labeled >= previous.num_users]
        product_ids = previous.products[prev_products - previous.num_users]
        positions = np.searchsorted(current.products, product_ids)
        positions = np.clip(positions, 0, current.products.size - 1)
        found = current.products[positions] == product_ids
        product_labels = previous_labels[prev_products]
        for position, label in zip(
            positions[found], product_labels[found]
        ):
            merged[int(position) + current.num_users] = int(label)
    merged.update(base_seeds)
    return merged


class SlidingWindowDetector:
    """Warm-started fraud detection over a sliding transaction window.

    The production serving loop of Section 6: maintain the window
    incrementally, carry the previous detection's labels forward as seeds,
    and re-run seeded LP.  Consecutive windows share ~99 % of their edges,
    so a frontier-mode engine (``GLPEngine(frontier="auto")`` inside the
    ``detector``) collapses every post-slide run to delta neighborhoods
    after iteration 1 — most vertices start already carrying their
    converged label, leaving almost nothing on the frontier.

    Parameters
    ----------
    stream:
        The transaction source.
    detector:
        The LP detection stage (wraps the engine of your choice).
    seed_store:
        Black-list store; defaults to the stream's planted black-list.
    degrade:
        Step the detection down the engine ladder (hybrid, then the CPU
        serial baseline) instead of raising when the configured engine
        hits device OOM or an unrecovered fault.  The window state and
        warm-start labels survive a crashed slide either way — a failed
        ``slide()`` rolls both back so the same slide can be replayed.
    incremental:
        Plan each slide DynLP-style (:mod:`repro.pipeline.dynlp`): compute
        the affected vertex set from the edge diff and the previous run's
        residual frontier and hand it to the engine as an initial
        frontier, so re-convergence costs O(changes) instead of a dense
        pass.  Falls back to the full warm recompute automatically when
        the plan cannot prove identity cheaply (cold start, no residual
        frontier, unsupported engine, or the affected set exceeding
        ``cutover_ratio``) — and on every degradation-ladder fallback, so
        an injected fault can never serve stale labels.
    cutover_ratio:
        Affected-vertex fraction of the window above which incremental
        mode cuts over to the full recompute.
    """

    def __init__(
        self,
        stream: TransactionStream,
        detector: ClusterDetector,
        *,
        seed_store: Optional[SeedStore] = None,
        degrade: bool = True,
        incremental: bool = False,
        cutover_ratio: float = 0.2,
    ) -> None:
        self.stream = stream
        self.detector = detector
        self.seed_store = (
            seed_store if seed_store is not None else SeedStore(stream.blacklist())
        )
        self.builder = IncrementalWindowBuilder(stream)
        self.degrade = degrade
        self.incremental = incremental
        self.cutover_ratio = cutover_ratio
        self._previous: Optional[Tuple[WindowGraph, np.ndarray]] = None
        #: Previous detection's residual frontier (previous window ids).
        self._residual_frontier: Optional[np.ndarray] = None
        #: The most recent slide's :class:`IncrementalPlan` (or None).
        self.last_plan: Optional[IncrementalPlan] = None

    # ------------------------------------------------------------------
    def start(
        self, start_day: int, window_days: int
    ) -> Tuple[WindowGraph, DetectionResult]:
        """Build the initial window and run a cold detection."""
        if self._previous is not None or self.builder.days:
            raise PipelineError("detector already started; use slide()")
        for day in range(start_day, start_day + window_days):
            self.builder.add_day(day)
        with obs.correlate(slide_id=obs.mint_id("slide"), attempt_id=""):
            obs.emit(
                "slide.start",
                kind="cold",
                start_day=start_day,
                window_days=window_days,
            )
            return self._detect()

    def slide(self) -> Tuple[WindowGraph, DetectionResult]:
        """Advance one day and run a warm-started detection.

        On failure the builder state and the warm-start labels are rolled
        back to the pre-slide snapshot, so calling ``slide()`` again
        replays the same day instead of silently skipping it.
        """
        if self._previous is None:
            raise PipelineError("call start() before slide()")
        snapshot = self.builder.snapshot()
        previous = self._previous
        residual = self._residual_frontier
        days = self.builder.days
        with obs.correlate(slide_id=obs.mint_id("slide"), attempt_id=""):
            obs.emit(
                "slide.start",
                kind="slide",
                retire_day=min(days),
                add_day=max(days) + 1,
                window_days=len(days),
            )
            diff = self.builder.slide()
            diff_summary = {
                "added": diff.num_added,
                "removed": diff.num_removed,
                "reweighted": diff.num_reweighted,
                "change_ratio": diff.change_ratio,
            }
            obs.emit("slide.diff", **diff_summary)
            obs.annotate("slide_diff", diff_summary)
            m = obs.metrics()
            if m is not None:
                m.inc(
                    "pipeline_window_diff_pairs_total",
                    diff.num_added,
                    kind="added",
                )
                m.inc(
                    "pipeline_window_diff_pairs_total",
                    diff.num_removed,
                    kind="removed",
                )
                m.inc(
                    "pipeline_window_diff_pairs_total",
                    diff.num_reweighted,
                    kind="reweighted",
                )
                m.set_gauge("pipeline_window_diff_ratio", diff.change_ratio)
            try:
                return self._detect(diff=diff)
            except Exception as error:
                self.builder.restore(snapshot)
                self._previous = previous
                self._residual_frontier = residual
                m = obs.metrics()
                if m is not None:
                    m.inc("pipeline_slide_replays_total")
                obs.emit(
                    "slide.replay",
                    error=type(error).__name__,
                    kind=getattr(error, "kind", ""),
                )
                raise

    # ------------------------------------------------------------------
    def _detect(
        self, diff: Optional[WindowDiff] = None
    ) -> Tuple[WindowGraph, DetectionResult]:
        build_started = time.perf_counter()
        with obs.span("window-build", cat="pipeline"):
            window = self.builder.build()
        m = obs.metrics()
        if m is not None:
            m.observe(
                "pipeline_window_build_seconds",
                time.perf_counter() - build_started,
            )
        base_seeds = self.seed_store.window_seeds(window)
        seeds = base_seeds
        if self._previous is not None:
            prev_window, prev_labels = self._previous
            with obs.span("warm-start-seeds", cat="pipeline"):
                seeds = warm_start_seeds(
                    prev_window, prev_labels, window, base_seeds,
                    carry_products=True,
                )
        if not seeds:
            raise PipelineError("no seeds fall inside the current window")
        if m is not None:
            # ``base_seeds`` always win on conflict (they are merged last),
            # so the carried share is exactly the size difference.
            carried = len(seeds) - len(base_seeds)
            m.inc("pipeline_warm_start_seeds_total", carried, kind="carried")
            m.inc(
                "pipeline_warm_start_seeds_total",
                len(base_seeds),
                kind="base",
            )
            m.set_gauge(
                "pipeline_warm_start_hit_rate",
                carried / len(seeds) if seeds else 0.0,
            )
        plan = full_plan("cold")
        if self.incremental and diff is not None and self._previous is not None:
            engine = self.detector.engine
            engine_ok = (
                getattr(engine, "supports_incremental", False)
                and getattr(engine, "frontier", None) is not None
                and engine.frontier.enabled
            )
            with obs.span(
                "incremental-plan", cat="pipeline", changed=diff.num_changed
            ):
                plan = plan_slide(
                    diff,
                    self._previous[0],
                    window,
                    residual_frontier=self._residual_frontier,
                    seeds=seeds,
                    cutover_ratio=self.cutover_ratio,
                    engine_supported=engine_ok,
                )
        self.last_plan = plan
        obs.emit("slide.plan", **plan.as_event())
        if m is not None and self.incremental:
            m.inc(
                "pipeline_incremental_total",
                mode=plan.mode,
                reason=plan.reason,
            )
            m.observe("pipeline_affected_vertices", plan.num_affected)
            m.set_gauge("pipeline_affected_ratio", plan.affected_ratio)
        result = self._run_detection(
            window,
            seeds,
            initial_frontier=plan.frontier if plan.incremental else None,
        )
        self._previous = (window, result.lp_result.labels)
        self._residual_frontier = result.lp_result.final_frontier
        if m is not None:
            m.observe(
                "pipeline_serving_latency_seconds",
                time.perf_counter() - build_started,
            )
            m.observe(
                "pipeline_e2e_modeled_seconds",
                result.lp_result.total_seconds,
            )
        obs.emit(
            "slide.end",
            serving_seconds=time.perf_counter() - build_started,
            modeled_seconds=result.lp_result.total_seconds,
            clusters=len(result.clusters),
        )
        return window, result

    # ------------------------------------------------------------------
    def _run_detection(
        self,
        window: WindowGraph,
        seeds: Dict[int, int],
        initial_frontier: Optional[np.ndarray] = None,
    ) -> DetectionResult:
        """Detect, stepping down the engine ladder on device failure.

        Only the primary attempt receives ``initial_frontier``: ladder
        fallbacks rerun the *full* warm detection, so a device fault
        mid-incremental-slide can degrade the engine but never the
        answer (no stale labels).
        """
        from repro.core.hybrid import _record_degradation
        from repro.errors import DeviceFault, OutOfDeviceMemoryError

        try:
            return self.detector.detect(
                window, seeds, initial_frontier=initial_frontier
            )
        except (OutOfDeviceMemoryError, DeviceFault) as fault:
            source = getattr(self.detector.engine, "name", "engine")
            if not self.degrade:
                obs.flight_dump(
                    "unrecovered-fault",
                    engine=source,
                    kind=getattr(fault, "kind", "oom"),
                    error=type(fault).__name__,
                )
                raise
            for fallback in self._fallback_engines():
                _record_degradation(source, fallback.name, fault)
                with obs.span(
                    "detector-degrade",
                    cat="resilience",
                    source=source,
                    target=fallback.name,
                    kind=getattr(fault, "kind", "oom"),
                ):
                    try:
                        return self.detector.detect(
                            window, seeds, engine=fallback
                        )
                    except (OutOfDeviceMemoryError, DeviceFault) as next_fault:
                        fault = next_fault
                        source = fallback.name
            obs.flight_dump(
                "unrecovered-fault",
                engine=source,
                kind=getattr(fault, "kind", "oom"),
                error=type(fault).__name__,
            )
            raise fault

    def _fallback_engines(self) -> list:
        """The remaining ladder rungs below the configured engine.

        Hybrid handles graphs the all-resident engine cannot; the serial
        CPU baseline needs no device at all, so the ladder always ends on
        an engine injected faults cannot reach.
        """
        from repro.baselines.cpu_serial import SerialEngine
        from repro.core.hybrid import HybridEngine

        primary = self.detector.engine
        fallbacks: list = []
        if not isinstance(primary, HybridEngine):
            spec = getattr(getattr(primary, "device", None), "spec", None)
            fallbacks.append(
                HybridEngine(spec=spec) if spec is not None else HybridEngine()
            )
        fallbacks.append(SerialEngine())
        return fallbacks
