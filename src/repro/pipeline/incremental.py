"""Incremental sliding-window maintenance and warm-started detection.

Production pipelines do not rebuild a 100-day window from scratch every
day: they *slide* it — add the newest day's transactions, retire the
oldest — and they warm-start LP from the previous window's labels, which
converges in a couple of iterations because most of the graph is unchanged.

:class:`IncrementalWindowBuilder` maintains per-(user, product) interaction
counts under ``add_day`` / ``retire_day`` and materializes the current
:class:`~repro.pipeline.window.WindowGraph` on demand.

:func:`warm_start_seeds` carries a previous detection's labels into the
next window's seed set, so rings already found keep their identity across
windows (and LP re-converges fast).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.errors import PipelineError
from repro.graph.builder import from_edge_arrays
from repro.pipeline.transactions import TransactionStream
from repro.pipeline.window import WindowGraph
from repro.types import NO_LABEL, VERTEX_DTYPE


class IncrementalWindowBuilder:
    """Maintain a sliding window's interaction counts day by day."""

    def __init__(self, stream: TransactionStream) -> None:
        self.stream = stream
        self._counts: Dict[tuple, float] = {}
        self._days: Set[int] = set()

    # ------------------------------------------------------------------
    @property
    def days(self) -> Set[int]:
        """The set of days currently inside the window."""
        return set(self._days)

    @property
    def num_pairs(self) -> int:
        """Distinct (user, product) pairs with non-zero weight."""
        return len(self._counts)

    def add_day(self, day: int) -> None:
        """Fold one day's transactions into the window."""
        if day in self._days:
            raise PipelineError(f"day {day} already in the window")
        self._apply(day, +1.0)
        self._days.add(day)

    def retire_day(self, day: int) -> None:
        """Remove one day's transactions from the window."""
        if day not in self._days:
            raise PipelineError(f"day {day} not in the window")
        self._apply(day, -1.0)
        self._days.remove(day)

    def slide(self) -> None:
        """Advance the window by one day (retire oldest, add next)."""
        if not self._days:
            raise PipelineError("cannot slide an empty window")
        oldest = min(self._days)
        newest = max(self._days)
        if newest + 1 >= self.stream.config.num_days:
            raise PipelineError("stream exhausted")
        self.retire_day(oldest)
        self.add_day(newest + 1)

    def _apply(self, day: int, sign: float) -> None:
        transactions = self.stream.window_transactions(day, 1)
        for user, product in zip(
            transactions["user"], transactions["product"]
        ):
            key = (int(user), int(product))
            new_value = self._counts.get(key, 0.0) + sign
            if new_value <= 0.0:
                self._counts.pop(key, None)
            else:
                self._counts[key] = new_value

    # ------------------------------------------------------------------
    def build(self) -> WindowGraph:
        """Materialize the current window as a :class:`WindowGraph`."""
        if not self._days:
            raise PipelineError("window is empty")
        if self._counts:
            pairs = np.array(list(self._counts.keys()), dtype=np.int64)
            weights = np.fromiter(
                self._counts.values(), dtype=np.float64, count=len(self._counts)
            )
            users, products = pairs[:, 0], pairs[:, 1]
        else:
            users = np.empty(0, dtype=np.int64)
            products = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)

        window_users, user_index = np.unique(users, return_inverse=True)
        window_products, product_index = np.unique(
            products, return_inverse=True
        )
        num_users = window_users.size
        start = min(self._days)
        graph = from_edge_arrays(
            user_index.astype(VERTEX_DTYPE),
            (product_index + num_users).astype(VERTEX_DTYPE),
            num_users + window_products.size,
            weights=weights,
            symmetrize=True,
            name=f"window-inc-{len(self._days)}d@{start}",
        )
        return WindowGraph(
            graph=graph,
            users=window_users,
            products=window_products,
            start_day=start,
            num_days=len(self._days),
        )


def warm_start_seeds(
    previous: WindowGraph,
    previous_labels: np.ndarray,
    current: WindowGraph,
    base_seeds: Dict[int, int],
    *,
    max_carryover: Optional[int] = None,
) -> Dict[int, int]:
    """Carry a previous detection into the next window's seed set.

    Every user labeled in the previous window (and still present in the
    current one) becomes a seed with its old cluster label; the black-list
    ``base_seeds`` always win on conflict.  ``max_carryover`` caps the
    number of carried users (strongest first = lowest previous vertex id).

    Returns the merged ``{current_window_vertex: label}`` mapping.
    """
    labeled = np.flatnonzero(previous_labels != NO_LABEL)
    users = previous.user_of_window_vertex(labeled)
    keep = users >= 0
    users = users[keep]
    labels = previous_labels[labeled[keep]]
    if max_carryover is not None:
        users = users[:max_carryover]
        labels = labels[:max_carryover]

    current_vertices = current.window_vertex_of_user(users)
    present = current_vertices >= 0
    merged = {
        int(v): int(l)
        for v, l in zip(current_vertices[present], labels[present])
    }
    merged.update(base_seeds)
    return merged
