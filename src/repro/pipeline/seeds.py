"""The black-list seed store.

TaoBao's pipeline "invokes LP with the stored seeds to discover small
susceptible clusters" (Section 5.4).  The store maps known-bad user ids to
cluster labels, persists across windows, and translates global user ids to
per-window vertex ids for the detector.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.errors import PipelineError
from repro.pipeline.window import WindowGraph


class SeedStore:
    """Mapping of black-listed user ids to fraud-cluster labels."""

    def __init__(self, seeds: Optional[Dict[int, int]] = None) -> None:
        self._seeds: Dict[int, int] = {}
        if seeds:
            for user, label in seeds.items():
                self.add(user, label)

    def add(self, user: int, label: int) -> None:
        """Black-list ``user`` under cluster ``label``."""
        if user < 0:
            raise PipelineError("user ids must be non-negative")
        if label < 0:
            raise PipelineError("cluster labels must be non-negative")
        self._seeds[int(user)] = int(label)

    def add_batch(self, users: Iterable[int], labels: Iterable[int]) -> None:
        for user, label in zip(users, labels):
            self.add(int(user), int(label))

    def remove(self, user: int) -> None:
        """Un-blacklist a user (appeals / false-positive cleanup)."""
        self._seeds.pop(int(user), None)

    def __contains__(self, user: int) -> bool:
        return int(user) in self._seeds

    def __len__(self) -> int:
        return len(self._seeds)

    def labels(self) -> Dict[int, int]:
        """A copy of the full user → label mapping."""
        return dict(self._seeds)

    def window_seeds(self, window: WindowGraph) -> Dict[int, int]:
        """Translate the store to ``{window_vertex: label}`` for a window.

        Users absent from the window are silently skipped — their rings may
        simply have been inactive in this period.
        """
        if not self._seeds:
            return {}
        users = np.fromiter(self._seeds.keys(), dtype=np.int64, count=len(self._seeds))
        labels = np.fromiter(self._seeds.values(), dtype=np.int64, count=len(self._seeds))
        vertices = window.window_vertex_of_user(users)
        present = vertices >= 0
        return {
            int(v): int(l) for v, l in zip(vertices[present], labels[present])
        }
