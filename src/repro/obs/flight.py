"""Flight recorder: bounded event ring buffer + post-mortem bundles.

Production post-mortems rarely need the whole history — they need the
last few hundred events before the crash plus the state that explains
them.  The :class:`FlightRecorder` keeps a bounded ring of the journal's
most recent events (it is fed by :func:`repro.obs.emit`, so it costs one
``deque.append`` per event and nothing when observability is off) and,
when something unrecoverable happens, :meth:`dump` captures a
*post-mortem bundle*:

* the trigger (``unrecovered-fault`` / ``degradation``) and its details,
* the ambient correlation IDs (``run_id`` / ``slide_id`` / ``attempt_id``),
* the last-N journal events,
* a full metrics snapshot,
* the active fault plan and every fault it has fired so far
  (via the import-free :mod:`repro.gpusim.hooks` registry),
* the live device-memory allocation table (per-category live bytes and
  watermarks) when a :class:`repro.obs.memory.MemoryTracker` is
  installed — on an OOM this is the table at the moment of death,
* session context annotations — the latest checkpoint pointer and slide
  diff summary the resilience/pipeline layers registered via
  :func:`repro.obs.annotate`.

Bundles accumulate in memory (``recorder.bundles``) and are additionally
written to ``dump_dir`` as ``postmortem-<seq>.json`` when a directory is
configured (CLI: ``--flight-dir``).  The dump triggers live in
:meth:`SlidingWindowDetector._run_detection` /
:func:`repro.core.hybrid._record_degradation` — the two places a fault
escapes the recovery layer.
"""

from __future__ import annotations

import collections
import json
import os
from typing import Deque, Dict, List, Optional

#: Bump when the bundle payload changes incompatibly.
FLIGHT_SCHEMA_VERSION = 1

#: Default ring capacity — enough for several slides' causal chains.
DEFAULT_CAPACITY = 256


def _active_fault_plan() -> Optional[dict]:
    """The installed fault injector's plan + fired events, if any.

    Duck-typed through :mod:`repro.gpusim.hooks` so ``repro.obs`` never
    imports ``repro.resilience`` (which imports ``repro.obs``).
    """
    from repro.gpusim import hooks

    injector = hooks.faults()
    if injector is None:
        return None
    plan = getattr(injector, "plan", None)
    events = getattr(injector, "events", [])
    return {
        "plan": plan.render() if plan is not None else "",
        "fired": [event.as_dict() for event in events],
    }


def _active_memory_snapshot() -> Optional[dict]:
    """The installed memory tracker's allocation table, if any.

    Duck-typed like :func:`_active_fault_plan`: when a
    :class:`repro.obs.memory.MemoryTracker` is installed, an OOM
    post-mortem carries exactly what was device-resident (per-category
    live bytes and watermarks) at the moment the allocation failed.
    """
    from repro.gpusim import hooks

    tracker = hooks.memory()
    if tracker is None:
        return None
    snapshot = getattr(tracker, "allocation_snapshot", None)
    if snapshot is None:
        return None
    return snapshot()


class FlightRecorder:
    """Bounded ring of recent journal events + post-mortem dumps."""

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self._ring: Deque[dict] = collections.deque(maxlen=capacity)
        self.bundles: List[dict] = []
        self._dumped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, event: dict) -> None:
        """Feed one journal record into the ring (oldest falls out)."""
        self._ring.append(event)

    def tail(self) -> List[dict]:
        """The buffered events, oldest first."""
        return list(self._ring)

    # ------------------------------------------------------------------
    def dump(
        self,
        *,
        trigger: str,
        ids: Optional[Dict[str, str]] = None,
        context: Optional[Dict[str, object]] = None,
        metrics: Optional[dict] = None,
        details: Optional[Dict[str, object]] = None,
    ) -> dict:
        """Capture a post-mortem bundle (and write it when configured)."""
        self._dumped += 1
        ids = ids or {}
        bundle = {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "trigger": trigger,
            "run_id": ids.get("run_id", ""),
            "slide_id": ids.get("slide_id", ""),
            "attempt_id": ids.get("attempt_id", ""),
            "details": dict(details or {}),
            "context": dict(context or {}),
            "fault_plan": _active_fault_plan(),
            "memory": _active_memory_snapshot(),
            "metrics": metrics if metrics is not None else {"metrics": []},
            "events": self.tail(),
        }
        self.bundles.append(bundle)
        if self.dump_dir is not None:
            os.makedirs(self.dump_dir, exist_ok=True)
            path = os.path.join(
                self.dump_dir, f"postmortem-{self._dumped:03d}.json"
            )
            with open(path, "w") as fh:
                json.dump(bundle, fh, indent=2, sort_keys=True, default=str)
                fh.write("\n")
            bundle["path"] = path
        return bundle
