"""repro.obs — tracing, metrics, journal and profiling for the whole stack.

Integrated layers (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nested spans with a Chrome ``trace_event``
  exporter (host spans on the wall clock, kernel/memcpy spans on the
  simulator's modeled clock);
* :mod:`repro.obs.metrics` — named counters / gauges / histograms with
  labeled dimensions, exported as JSON or prometheus text;
* :mod:`repro.obs.journal` — a structured JSONL event journal with
  correlation IDs (``run_id`` / ``slide_id`` / ``attempt_id``) threading
  every slide's plan → attempts → recovery → degradation chain;
* :mod:`repro.obs.flight` — a bounded ring buffer that dumps post-mortem
  bundles on unrecovered faults and ladder degradations;
* :mod:`repro.obs.slo` — declarative TOML SLO specs evaluated over the
  metrics registry with multi-window burn-rate alerting;
* :mod:`repro.obs.profile` — an nvprof-style per-kernel report aggregated
  from the device launch timeline;
* :mod:`repro.obs.memory` — device-memory telemetry: a per-device
  allocation timeline with semantic categories, Chrome-trace counter
  tracks, watermark reports and a ``device_footprint`` planner-accuracy
  gate, installed through the :mod:`repro.gpusim.hooks` registry.

Observability is **off by default** and activated per-session::

    with obs.observe() as session:
        result = GLPEngine().run(graph, ClassicLP())
    session.tracer.write("trace.json")
    session.metrics.write("metrics.json")
    session.journal.write("journal.jsonl")

Instrumented code calls the module-level helpers (:func:`span`,
:func:`metrics`, :func:`tracer`, :func:`emit`, :func:`correlate`,
:func:`session`); with no active session they cost one global read and
change **nothing** — labels, counters and timings are bitwise identical,
which ``tests/obs/test_identity.py`` enforces differentially.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional

from repro.obs.advisor import AdvisorReport, Finding, KernelDiagnosis
from repro.obs.flight import FlightRecorder
from repro.obs.journal import Journal, mint_run_id
from repro.obs.memory import MemoryTracker, alloc_scope
from repro.obs.memory import track as track_memory
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import KernelRow, MemcpyRow, ProfileReport
from repro.obs.trace import Tracer

__all__ = [
    "AdvisorReport",
    "Counter",
    "Finding",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Journal",
    "KernelDiagnosis",
    "KernelRow",
    "MemcpyRow",
    "MemoryTracker",
    "MetricsRegistry",
    "ObsSession",
    "ProfileReport",
    "Tracer",
    "alloc_scope",
    "annotate",
    "correlate",
    "disable",
    "emit",
    "enable",
    "flight",
    "flight_dump",
    "journal",
    "metrics",
    "mint_id",
    "observe",
    "session",
    "span",
    "tracer",
    "track_memory",
]


class ObsSession:
    """One observability session: tracer, metrics, journal and flight.

    The session also owns the correlation-ID state: ``run_id`` is minted
    once at construction; :func:`mint_id` hands out per-kind sequential
    IDs (``slide-0001``, ``attempt-0003``, ...) and :func:`correlate`
    scopes them so every :func:`emit` inside the scope carries them.
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        journal: bool = True,
        flight_capacity: int = 256,
        run_id: Optional[str] = None,
    ) -> None:
        self.run_id = run_id if run_id is not None else mint_run_id()
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.journal: Optional[Journal] = (
            Journal(run_id=self.run_id) if journal else None
        )
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(capacity=flight_capacity) if journal else None
        )
        #: Ambient correlation IDs stamped onto every journal event.
        self.ids: Dict[str, str] = {"slide_id": "", "attempt_id": ""}
        #: Session context notes included in post-mortem bundles
        #: (latest checkpoint pointer, slide diff summary, ...).
        self.context: Dict[str, object] = {}
        self._id_counters: Dict[str, int] = {}

    def mint_id(self, kind: str) -> str:
        """The next sequential correlation ID of ``kind``."""
        n = self._id_counters.get(kind, 0) + 1
        self._id_counters[kind] = n
        return f"{kind}-{n:04d}"

    def correlation_ids(self) -> Dict[str, str]:
        """The ambient IDs, run_id included (for bundles/reports)."""
        return {"run_id": self.run_id, **self.ids}


#: The active session; ``None`` means observability is disabled.
_ACTIVE: Optional[ObsSession] = None

#: Shared no-op context for disabled spans (nullcontext is reentrant).
_NULL_SPAN = contextlib.nullcontext()


def session() -> Optional[ObsSession]:
    """The active session, or ``None`` when observability is off."""
    return _ACTIVE


def enable(
    *,
    trace: bool = True,
    metrics: bool = True,
    journal: bool = True,
    flight_capacity: int = 256,
) -> ObsSession:
    """Start a fresh session and make it the active one."""
    global _ACTIVE
    _ACTIVE = ObsSession(
        trace=trace,
        metrics=metrics,
        journal=journal,
        flight_capacity=flight_capacity,
    )
    return _ACTIVE


def disable() -> None:
    """Deactivate observability (instrumentation reverts to no-ops)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def observe(
    *,
    trace: bool = True,
    metrics: bool = True,
    journal: bool = True,
    flight_capacity: int = 256,
) -> Iterator[ObsSession]:
    """Scoped :func:`enable` / :func:`disable` (restores the previous)."""
    global _ACTIVE
    previous = _ACTIVE
    current = ObsSession(
        trace=trace,
        metrics=metrics,
        journal=journal,
        flight_capacity=flight_capacity,
    )
    _ACTIVE = current
    try:
        yield current
    finally:
        _ACTIVE = previous


def tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` (hot paths guard on this)."""
    s = _ACTIVE
    return s.tracer if s is not None else None


def metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry, or ``None``."""
    s = _ACTIVE
    return s.metrics if s is not None else None


def journal() -> Optional[Journal]:
    """The active journal, or ``None``."""
    s = _ACTIVE
    return s.journal if s is not None else None


def flight() -> Optional[FlightRecorder]:
    """The active flight recorder, or ``None``."""
    s = _ACTIVE
    return s.flight if s is not None else None


def span(name: str, *, cat: str = "host", **args):
    """A host wall-clock span, or a shared no-op context when disabled."""
    s = _ACTIVE
    if s is None or s.tracer is None:
        return _NULL_SPAN
    if s.journal is not None:
        ids = s.ids
        if ids["slide_id"]:
            args.setdefault("slide_id", ids["slide_id"])
        if ids["attempt_id"]:
            args.setdefault("attempt_id", ids["attempt_id"])
    return s.tracer.span(name, cat=cat, args=args or None)


# ---------------------------------------------------------------------------
# Journal / correlation helpers — all no-ops (one global read) when off.


def emit(event: str, **fields) -> None:
    """Append one journal event with the ambient correlation IDs."""
    s = _ACTIVE
    if s is None or s.journal is None:
        return
    record = s.journal.record(
        event,
        slide_id=s.ids["slide_id"],
        attempt_id=s.ids["attempt_id"],
        fields=fields,
    )
    if s.flight is not None:
        s.flight.record(record)


def mint_id(kind: str) -> str:
    """Mint a sequential correlation ID, or ``""`` when disabled."""
    s = _ACTIVE
    if s is None or s.journal is None:
        return ""
    return s.mint_id(kind)


@contextlib.contextmanager
def correlate(**ids: str) -> Iterator[None]:
    """Scope ambient correlation IDs (``slide_id=`` / ``attempt_id=``)."""
    s = _ACTIVE
    if s is None or s.journal is None:
        yield
        return
    previous = {key: s.ids.get(key, "") for key in ids}
    s.ids.update(ids)
    try:
        yield
    finally:
        s.ids.update(previous)


def annotate(key: str, value: object) -> None:
    """Attach session context included in post-mortem bundles."""
    s = _ACTIVE
    if s is None or s.journal is None:
        return
    s.context[key] = value


def flight_dump(trigger: str, **details) -> Optional[dict]:
    """Capture a post-mortem bundle from the active session, if any."""
    s = _ACTIVE
    if s is None or s.flight is None:
        return None
    emit("flight.dump", trigger=trigger, **details)
    return s.flight.dump(
        trigger=trigger,
        ids=s.correlation_ids(),
        context=s.context,
        metrics=s.metrics.to_dict() if s.metrics is not None else None,
        details=details,
    )
