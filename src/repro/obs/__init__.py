"""repro.obs — tracing, metrics and profiling for the whole stack.

Three integrated layers (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nested spans with a Chrome ``trace_event``
  exporter (host spans on the wall clock, kernel/memcpy spans on the
  simulator's modeled clock);
* :mod:`repro.obs.metrics` — named counters / gauges / histograms with
  labeled dimensions, exported as JSON or prometheus text;
* :mod:`repro.obs.profile` — an nvprof-style per-kernel report aggregated
  from the device launch timeline.

Observability is **off by default** and activated per-session::

    with obs.observe() as session:
        result = GLPEngine().run(graph, ClassicLP())
    session.tracer.write("trace.json")
    session.metrics.write("metrics.json")

Instrumented code calls the module-level helpers (:func:`span`,
:func:`metrics`, :func:`tracer`, :func:`session`); with no active session
they cost one global read and change **nothing** — labels, counters and
timings are bitwise identical, which ``tests/obs/test_identity.py``
enforces differentially.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.advisor import AdvisorReport, Finding, KernelDiagnosis
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import KernelRow, MemcpyRow, ProfileReport
from repro.obs.trace import Tracer

__all__ = [
    "AdvisorReport",
    "Counter",
    "Finding",
    "Gauge",
    "Histogram",
    "KernelDiagnosis",
    "KernelRow",
    "MemcpyRow",
    "MetricsRegistry",
    "ObsSession",
    "ProfileReport",
    "Tracer",
    "disable",
    "enable",
    "metrics",
    "observe",
    "session",
    "span",
    "tracer",
]


class ObsSession:
    """One observability session: a tracer plus a metrics registry."""

    def __init__(self, *, trace: bool = True, metrics: bool = True) -> None:
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )


#: The active session; ``None`` means observability is disabled.
_ACTIVE: Optional[ObsSession] = None

#: Shared no-op context for disabled spans (nullcontext is reentrant).
_NULL_SPAN = contextlib.nullcontext()


def session() -> Optional[ObsSession]:
    """The active session, or ``None`` when observability is off."""
    return _ACTIVE


def enable(*, trace: bool = True, metrics: bool = True) -> ObsSession:
    """Start a fresh session and make it the active one."""
    global _ACTIVE
    _ACTIVE = ObsSession(trace=trace, metrics=metrics)
    return _ACTIVE


def disable() -> None:
    """Deactivate observability (instrumentation reverts to no-ops)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def observe(
    *, trace: bool = True, metrics: bool = True
) -> Iterator[ObsSession]:
    """Scoped :func:`enable` / :func:`disable` (restores the previous)."""
    global _ACTIVE
    previous = _ACTIVE
    current = ObsSession(trace=trace, metrics=metrics)
    _ACTIVE = current
    try:
        yield current
    finally:
        _ACTIVE = previous


def tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` (hot paths guard on this)."""
    s = _ACTIVE
    return s.tracer if s is not None else None


def metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry, or ``None``."""
    s = _ACTIVE
    return s.metrics if s is not None else None


def span(name: str, *, cat: str = "host", **args):
    """A host wall-clock span, or a shared no-op context when disabled."""
    s = _ACTIVE
    if s is None or s.tracer is None:
        return _NULL_SPAN
    return s.tracer.span(name, cat=cat, args=args or None)
