"""Span tracer with a Chrome ``trace_event`` exporter.

A full run renders as a timeline in ``chrome://tracing`` / Perfetto:

* **Host spans** (engine iterations, window builds, detection stages) are
  timed on the *wall clock* and live on the ``host (wall clock)`` process
  track.  They nest — the tracer keeps a span stack, and the exporter emits
  Chrome "complete" (``ph: "X"``) events whose nesting Perfetto renders as
  a flame graph.
* **Device spans** (kernel launches, PCIe memcpys) are timed on the
  simulator's *modeled clock* — the cumulative roofline seconds of the
  owning :class:`~repro.gpusim.device.Device` — and live on the
  ``gpusim (modeled clock)`` process track, one thread lane per device
  index.  The two clocks are unrelated; keeping them on separate process
  tracks is what makes the mixed timeline honest.

The tracer is deliberately dumb: append-only event dicts, microsecond
timestamps, no I/O until :meth:`Tracer.write`.  When constructed with
``enabled=False`` every record call is a no-op so instrumented code can
leave its hooks in place permanently.
"""

from __future__ import annotations

import contextlib
import json
import time
from typing import Dict, Iterator, List, Optional

#: Bump when the trace export changes incompatibly (extra top-level keys
#: are legal in the Chrome trace_event "object format").
SCHEMA_VERSION = 1

#: Synthetic pid of the wall-clock (host) process track.
HOST_PID = 1
#: Synthetic pid of the modeled-clock (simulated device) process track.
DEVICE_PID = 2


class Tracer:
    """Collect nested host spans and flat device spans as trace events."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[dict] = []
        self._origin = time.perf_counter()
        self._device_tids: Dict[int, bool] = {}
        self._depth = 0

    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[dict]:
        """The raw (metadata-free) event list, for tests and reports."""
        return list(self._events)

    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "host",
        args: Optional[dict] = None,
    ) -> Iterator[None]:
        """A nested wall-clock span on the host track."""
        if not self.enabled:
            yield
            return
        start = self._now_us()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self._events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": cat,
                    "pid": HOST_PID,
                    "tid": 1,
                    "ts": start,
                    "dur": self._now_us() - start,
                    **({"args": args} if args else {}),
                }
            )

    def host_event(
        self,
        name: str,
        start_perf_counter: float,
        *,
        cat: str = "host",
        args: Optional[dict] = None,
    ) -> None:
        """Record a host span measured externally.

        ``start_perf_counter`` is a ``time.perf_counter()`` reading taken
        when the work began; the event closes at the current time.  This is
        what hot loops use instead of the :meth:`span` context manager —
        one clock read up front, one call at the end, nothing held open
        across exceptions.
        """
        if not self.enabled:
            return
        ts = (start_perf_counter - self._origin) * 1e6
        self._events.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "pid": HOST_PID,
                "tid": 1,
                "ts": ts,
                "dur": self._now_us() - ts,
                **({"args": args} if args else {}),
            }
        )

    def device_span(
        self,
        device_index: int,
        name: str,
        start_seconds: float,
        duration_seconds: float,
        *,
        cat: str = "kernel",
        args: Optional[dict] = None,
    ) -> None:
        """A modeled-clock span on device ``device_index``'s lane.

        ``start_seconds`` is the device's cumulative modeled time when the
        event began (kernel + transfer seconds already elapsed), so events
        recorded in launch order lay out sequentially without overlap.
        """
        if not self.enabled:
            return
        self._device_tids[device_index] = True
        self._events.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "pid": DEVICE_PID,
                "tid": device_index,
                "ts": start_seconds * 1e6,
                "dur": duration_seconds * 1e6,
                **({"args": args} if args else {}),
            }
        )

    def counter_event(
        self,
        device_index: int,
        ts_seconds: float,
        values: Dict[str, int],
        *,
        name: Optional[str] = None,
    ) -> None:
        """One sample of a modeled-clock counter track (``ph: "C"``).

        Chrome/Perfetto key counter tracks by ``(pid, name)``, so every
        device gets exactly one track — ``gpu{i} device memory`` on the
        modeled-clock process — rendered as a stacked area chart of the
        per-category byte series in ``values``.  Samples arrive in
        modeled-clock order (the clock only advances), so ``ts`` is
        monotone within each track.
        """
        if not self.enabled:
            return
        self._device_tids[device_index] = True
        self._events.append(
            {
                "ph": "C",
                "name": name or f"gpu{device_index} device memory",
                "cat": "memory",
                "pid": DEVICE_PID,
                "tid": device_index,
                "ts": ts_seconds * 1e6,
                "args": {key: int(v) for key, v in values.items()},
            }
        )

    def instant(self, name: str, *, cat: str = "host", args=None) -> None:
        """A zero-duration marker on the host track."""
        if not self.enabled:
            return
        self._events.append(
            {
                "ph": "i",
                "s": "t",
                "name": name,
                "cat": cat,
                "pid": HOST_PID,
                "tid": 1,
                "ts": self._now_us(),
                **({"args": args} if args else {}),
            }
        )

    # ------------------------------------------------------------------
    def _metadata_events(self) -> List[dict]:
        meta = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "host (wall clock)"},
            },
            {
                "ph": "M",
                "name": "process_name",
                "pid": DEVICE_PID,
                "tid": 0,
                "args": {"name": "gpusim (modeled clock)"},
            },
        ]
        for tid in sorted(self._device_tids):
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": DEVICE_PID,
                    "tid": tid,
                    "args": {"name": f"gpu{tid}"},
                }
            )
        return meta

    def chrome_trace(self) -> dict:
        """The full ``trace_event`` document (metadata + events)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "traceEvents": self._metadata_events() + self._events,
            "displayTimeUnit": "ms",
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)

    def write(self, path: str) -> None:
        """Dump the trace to ``path`` (open in Perfetto / chrome://tracing)."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
