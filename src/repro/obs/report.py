"""Fused run reports: journal + metrics + profiler + advisor + SLOs.

``repro obs report`` turns the machine-readable artifacts one serving run
leaves behind into a single human-readable (markdown) or machine-readable
(JSON) report: per-slide causal chains reconstructed from the journal's
correlation IDs, metric highlights, SLO verdicts, the profiler's top
kernels, the advisor's findings and the device-memory watermark report
(``--mem-out``).  Inputs that were requested but missing or empty render
as explicit "not collected" rows rather than failing the build.

All inputs are the plain exported documents (``Journal`` JSONL records,
``MetricsRegistry.to_dict()``, ``ProfileReport.to_dict()``,
``AdvisorReport``/SLO analysis dicts) so the report can be built live at
the end of a pipeline run or offline from files in CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: Bump when the JSON report payload changes incompatibly.
REPORT_SCHEMA_VERSION = 1

#: Counter families surfaced in the highlights section, in order.
_HIGHLIGHT_COUNTERS = (
    "pipeline_detections_total",
    "pipeline_clusters_total",
    "pipeline_slide_replays_total",
    "pipeline_incremental_total",
    "resilience_faults_injected_total",
    "resilience_retries_total",
    "resilience_resumes_total",
    "resilience_degradations_total",
)

#: Histogram families surfaced in the highlights section, in order.
_HIGHLIGHT_HISTOGRAMS = (
    "pipeline_e2e_modeled_seconds",
    "pipeline_serving_latency_seconds",
    "pipeline_lp_modeled_seconds",
    "pipeline_affected_vertices",
)


def summarize_journal(records: Sequence[dict]) -> dict:
    """Reconstruct per-slide causal chains from journal records.

    ``records`` may include the ``journal.meta`` header; events are
    grouped by ``slide_id`` and reduced to one summary per slide (plan,
    attempts, faults, recoveries, degradations, replay, outcome).
    """
    meta = next(
        (r for r in records if r.get("event") == "journal.meta"), None
    )
    events = [
        r
        for r in records
        if r.get("event") not in (None, "journal.meta")
    ]
    slides: Dict[str, dict] = {}
    order: List[str] = []
    for record in events:
        sid = record.get("slide_id", "")
        if not sid:
            continue
        if sid not in slides:
            order.append(sid)
            slides[sid] = {
                "slide_id": sid,
                "kind": "",
                "plan": None,
                "diff": None,
                "attempts": [],
                "faults": 0,
                "recoveries": 0,
                "degradations": [],
                "replayed": False,
                "detect": None,
                "end": None,
                "dumps": 0,
            }
        slide = slides[sid]
        event = record["event"]
        if event == "slide.start":
            slide["kind"] = record.get("kind", "")
        elif event == "slide.plan":
            slide["plan"] = {
                "mode": record.get("mode", ""),
                "reason": record.get("reason", ""),
                "num_affected": record.get("num_affected", 0),
                "affected_ratio": record.get("affected_ratio", 0.0),
            }
        elif event == "slide.diff":
            slide["diff"] = {
                "added": record.get("added", 0),
                "removed": record.get("removed", 0),
                "reweighted": record.get("reweighted", 0),
                "change_ratio": record.get("change_ratio", 0.0),
            }
        elif event == "engine.attempt.start":
            slide["attempts"].append(
                {
                    "attempt_id": record.get("attempt_id", ""),
                    "engine": record.get("engine", ""),
                    "outcome": "incomplete",
                }
            )
        elif event == "engine.attempt.end":
            if slide["attempts"]:
                slide["attempts"][-1]["outcome"] = record.get(
                    "outcome", "ok"
                )
        elif event == "engine.attempt.fault":
            slide["faults"] += 1
            if slide["attempts"]:
                slide["attempts"][-1]["outcome"] = (
                    f"fault:{record.get('kind', '?')}"
                )
        elif event == "recovery.fault":
            slide["recoveries"] += 1
        elif event == "resilience.degradation":
            slide["degradations"].append(
                f"{record.get('source', '?')}->{record.get('target', '?')}"
            )
        elif event == "slide.replay":
            slide["replayed"] = True
        elif event == "slide.detect":
            slide["detect"] = {
                "engine": record.get("engine", ""),
                "clusters": record.get("clusters", 0),
                "iterations": record.get("iterations", 0),
                "modeled_seconds": record.get("modeled_seconds", 0.0),
            }
        elif event == "slide.end":
            slide["end"] = {
                "serving_seconds": record.get("serving_seconds", 0.0),
                "modeled_seconds": record.get("modeled_seconds", 0.0),
                "clusters": record.get("clusters", 0),
            }
        elif event == "flight.dump":
            slide["dumps"] += 1
    return {
        "run_id": (meta or {}).get(
            "run_id", events[0]["run_id"] if events else ""
        ),
        "num_events": len(events),
        "slides": [slides[sid] for sid in order],
    }


def _metric_entries(metrics_doc: Optional[dict], name: str) -> List[dict]:
    if not metrics_doc:
        return []
    return [
        entry
        for entry in metrics_doc.get("metrics", [])
        if entry.get("name") == name
    ]


def metric_highlights(metrics_doc: Optional[dict]) -> dict:
    """The counter/latency families the run report surfaces."""
    counters = []
    for name in _HIGHLIGHT_COUNTERS:
        entries = _metric_entries(metrics_doc, name)
        if entries:
            counters.append(
                {
                    "name": name,
                    "total": sum(e.get("value", 0) for e in entries),
                    "series": [
                        {
                            "labels": e.get("labels", {}),
                            "value": e.get("value", 0),
                        }
                        for e in entries
                    ],
                }
            )
    histograms = []
    for name in _HIGHLIGHT_HISTOGRAMS:
        entries = _metric_entries(metrics_doc, name)
        if entries:
            entry = entries[0]
            histograms.append(
                {
                    "name": name,
                    "count": entry.get("count", 0),
                    "p50": entry.get("p50", 0.0),
                    "p95": entry.get("p95", 0.0),
                    "p99": entry.get("p99", 0.0),
                    "max": entry.get("max", 0.0),
                }
            )
    return {"counters": counters, "histograms": histograms}


def memory_highlights(memory_doc: Optional[dict]) -> Optional[dict]:
    """The watermark-report slice the run report surfaces.

    Per-device peaks plus the planner-accuracy rows; the event timeline
    stays in the full ``--mem-out`` document.
    """
    if not memory_doc:
        return None
    return {
        "reconciled": memory_doc.get("reconciled", False),
        "devices": [
            {
                "device": dev.get("device"),
                "peak_bytes": dev.get("peak_bytes", 0),
                "capacity_bytes": dev.get("capacity_bytes", 0),
                "peak_fraction": dev.get("peak_fraction", 0.0),
                "categories_at_peak": dev.get("categories_at_peak", {}),
                "oom_count": dev.get("oom_count", 0),
            }
            for dev in memory_doc.get("devices", [])
        ],
        "planner": memory_doc.get("planner", {}),
        "findings": (memory_doc.get("analysis") or {}).get("findings", []),
    }


def build_report(
    *,
    journal_records: Optional[Sequence[dict]] = None,
    metrics_doc: Optional[dict] = None,
    slo_doc: Optional[dict] = None,
    profile_doc: Optional[dict] = None,
    advisor_doc: Optional[dict] = None,
    postmortems: Optional[Sequence[dict]] = None,
    memory_doc: Optional[dict] = None,
    not_collected: Optional[Sequence[str]] = None,
) -> dict:
    """The fused machine-readable run report.

    ``not_collected`` names inputs that were requested but missing or
    empty on disk; they render as explicit "not collected" rows instead
    of silently vanishing (or crashing the report build).
    """
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "journal": (
            summarize_journal(journal_records)
            if journal_records is not None
            else None
        ),
        "metrics": metric_highlights(metrics_doc),
        "slo": slo_doc,
        "profile": profile_doc,
        "advisor": advisor_doc,
        "memory": memory_highlights(memory_doc),
        "postmortems": [
            {
                "trigger": bundle.get("trigger", ""),
                "slide_id": bundle.get("slide_id", ""),
                "attempt_id": bundle.get("attempt_id", ""),
                "details": bundle.get("details", {}),
                "num_events": len(bundle.get("events", [])),
            }
            for bundle in (postmortems or [])
        ],
        "not_collected": sorted(set(not_collected or [])),
    }


# ---------------------------------------------------------------------------
# Markdown rendering.


def _fmt_seconds(value: float) -> str:
    return f"{float(value):.3e}"


def _render_slides(journal: dict, lines: List[str]) -> None:
    lines.append("## Slides")
    lines.append("")
    lines.append(
        "| slide | kind | plan | affected | attempts | faults | "
        "recoveries | degradations | outcome | clusters | modeled s |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|---|---|")
    for slide in journal["slides"]:
        plan = slide["plan"] or {}
        plan_str = (
            f"{plan.get('mode', '-')}/{plan.get('reason', '-')}"
            if plan
            else "-"
        )
        if slide["replayed"]:
            outcome = "replayed"
        elif slide["end"] is not None:
            outcome = "ok"
        else:
            outcome = "failed"
        engines = " -> ".join(
            dict.fromkeys(a["engine"] for a in slide["attempts"])
        )
        end = slide["end"] or {}
        lines.append(
            f"| {slide['slide_id']} | {slide['kind'] or '-'} | {plan_str} "
            f"| {plan.get('num_affected', '-') if plan else '-'} "
            f"| {len(slide['attempts'])} ({engines or '-'}) "
            f"| {slide['faults']} | {slide['recoveries']} "
            f"| {', '.join(slide['degradations']) or '-'} "
            f"| {outcome} | {end.get('clusters', '-')} "
            f"| {_fmt_seconds(end['modeled_seconds']) if end else '-'} |"
        )
    lines.append("")


def _render_slo(slo_doc: dict, lines: List[str]) -> None:
    lines.append("## SLO verdicts")
    lines.append("")
    verdicts = slo_doc.get("verdicts", [])
    if verdicts:
        lines.append("| objective | kind | measured | target | status |")
        lines.append("|---|---|---|---|---|")
        for verdict in verdicts:
            if verdict.get("missing"):
                status = "missing"
            elif not verdict.get("ok", True):
                status = "**BREACH**"
            elif verdict.get("alerting"):
                status = "**BURNING**"
            else:
                status = "ok"
            lines.append(
                f"| {verdict['name']} | {verdict['kind']} "
                f"| {verdict['measured']:.6g} | {verdict['objective']:.6g} "
                f"| {status} |"
            )
    else:
        lines.append(
            f"findings: {slo_doc.get('num_errors', 0)} error(s), "
            f"{slo_doc.get('num_warnings', 0)} warning(s)"
        )
    for finding in slo_doc.get("findings", []):
        lines.append(
            f"- `{finding['rule']}` {finding['location']}: "
            f"{finding['message']}"
        )
    lines.append("")


def _render_memory(memory: dict, lines: List[str]) -> None:
    lines.append("## Device memory")
    lines.append("")
    lines.append(
        "reconciled: "
        + ("yes" if memory.get("reconciled", False) else "**NO**")
    )
    lines.append("")
    devices = memory.get("devices", [])
    if devices:
        lines.append("| device | peak | capacity | used | at peak | OOMs |")
        lines.append("|---|---|---|---|---|---|")
        for dev in devices:
            at_peak = ", ".join(
                f"{cat}={size:,} B"
                for cat, size in sorted(
                    (dev.get("categories_at_peak") or {}).items()
                )
            )
            lines.append(
                f"| gpu{dev.get('device', '?')} "
                f"| {dev.get('peak_bytes', 0):,} B "
                f"| {dev.get('capacity_bytes', 0):,} B "
                f"| {dev.get('peak_fraction', 0.0):.1%} "
                f"| {at_peak or '-'} | {dev.get('oom_count', 0)} |"
            )
        lines.append("")
    accuracy = (memory.get("planner") or {}).get("accuracy", [])
    if accuracy:
        lines.append("| engine | device | predicted | measured | error |")
        lines.append("|---|---|---|---|---|")
        for row in accuracy:
            flag = "" if row.get("within_threshold", True) else " ⚠"
            lines.append(
                f"| {row.get('engine', '?')} | gpu{row.get('device', '?')} "
                f"| {row.get('predicted_bytes', 0):,} B "
                f"| {row.get('measured_peak_bytes', 0):,} B "
                f"| {row.get('error_ratio', 0.0):+.1%}{flag} |"
            )
        lines.append("")
    for finding in memory.get("findings", []):
        lines.append(
            f"- `{finding.get('rule', '?')}` "
            f"{finding.get('location', '?')}: "
            f"{finding.get('message', '')}"
        )
    if memory.get("findings"):
        lines.append("")


def render_markdown(report: dict) -> str:
    """Render a :func:`build_report` document as markdown."""
    journal = report.get("journal")
    lines: List[str] = ["# Serving run report", ""]
    if journal:
        lines.append(
            f"run `{journal['run_id']}` — {journal['num_events']} journal "
            f"event(s), {len(journal['slides'])} slide(s)"
        )
        lines.append("")
        _render_slides(journal, lines)
    slo_doc = report.get("slo")
    if slo_doc:
        _render_slo(slo_doc, lines)
    highlights = report.get("metrics") or {}
    if highlights.get("histograms") or highlights.get("counters"):
        lines.append("## Metric highlights")
        lines.append("")
        if highlights.get("histograms"):
            lines.append("| histogram | count | p50 | p95 | p99 | max |")
            lines.append("|---|---|---|---|---|---|")
            for h in highlights["histograms"]:
                lines.append(
                    f"| {h['name']} | {h['count']} "
                    f"| {_fmt_seconds(h['p50'])} | {_fmt_seconds(h['p95'])} "
                    f"| {_fmt_seconds(h['p99'])} | {_fmt_seconds(h['max'])} |"
                )
            lines.append("")
        for counter in highlights.get("counters", []):
            lines.append(f"- `{counter['name']}`: {counter['total']:g}")
        lines.append("")
    postmortems = report.get("postmortems") or []
    if postmortems:
        lines.append("## Post-mortems")
        lines.append("")
        for bundle in postmortems:
            lines.append(
                f"- **{bundle['trigger']}** at {bundle['slide_id'] or '?'}"
                f" ({bundle['num_events']} buffered event(s)):"
                f" {json.dumps(bundle['details'], sort_keys=True)}"
            )
        lines.append("")
    profile_doc = report.get("profile")
    if profile_doc:
        lines.append("## Top kernels (modeled)")
        lines.append("")
        lines.append("| kernel | launches | seconds |")
        lines.append("|---|---|---|")
        for row in profile_doc.get("kernels", [])[:5]:
            lines.append(
                f"| {row.get('name', '?')} | {row.get('launches', 0)} "
                f"| {_fmt_seconds(row.get('seconds', 0.0))} |"
            )
        lines.append("")
    advisor_doc = report.get("advisor")
    if advisor_doc:
        lines.append("## Advisor findings")
        lines.append("")
        findings = advisor_doc.get("findings", [])
        if findings:
            for finding in findings[:10]:
                lines.append(
                    f"- `{finding.get('kernel', '?')}` "
                    f"[{finding.get('verdict', '?')}]: "
                    f"{finding.get('message', '')}"
                )
        else:
            lines.append("- none")
        lines.append("")
    memory = report.get("memory")
    if memory:
        _render_memory(memory, lines)
    not_collected = report.get("not_collected") or []
    if not_collected:
        lines.append("## Not collected")
        lines.append("")
        for kind in not_collected:
            lines.append(f"- {kind}: not collected (file missing or empty)")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
