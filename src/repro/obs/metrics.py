"""Metrics registry: named counters, gauges and streaming histograms.

Every metric is identified by a name plus a set of labeled dimensions
(``engine="GLP"``, ``mode="sparse"`` ...), prometheus-style; one registry
instance collects everything a run emits and exports it as JSON or
prometheus text exposition format.

Histograms keep a bounded ring of the most recent raw observations
(``Histogram.MAX_SAMPLES``, default 8192) and compute p50/p95/p99 at
export time over that tail, which keeps the hot path to one append and
memory O(1) under a long-running service.  ``count``/``sum``/``min``/
``max`` stay exact over *every* observation; percentiles are exact until
the ring wraps and thereafter describe the trailing window — the right
bias for serving SLOs, whose burn-rate windows already look only at the
most recent observations.  Live-registry and snapshot percentiles are
computed from the same retained ring, so SLO verdicts agree between the
two sources.

The metric families the instrumented code emits are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ObservabilityError

Number = Union[int, float]
_LabelKey = Tuple[Tuple[str, str], ...]

#: Bump when the JSON export changes incompatibly.
SCHEMA_VERSION = 1

#: Percentiles every histogram reports.
PERCENTILES = (50.0, 95.0, 99.0)


def _escape_label_value(value: str) -> str:
    """Escape a prometheus label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    format reserves inside quoted label values; unescaped they split or
    corrupt the series line (engine names and fault kinds are free-form
    strings, so hostile values must round-trip).
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Streaming distribution with bounded memory and percentile export.

    Raw observations are retained in a fixed-size ring (the most recent
    ``max_samples``); ``count``/``sum``/``min``/``max`` are maintained as
    exact running aggregates over the full stream.  Percentiles (and the
    :attr:`values` tail the SLO burn-rate windows consume) are computed
    over the retained ring only — exact until the ring wraps, a
    trailing-window estimate afterwards.
    """

    kind = "histogram"

    #: Default ring capacity.  Large enough that pipeline runs (hundreds
    #: of slides) keep exact percentiles, small enough that a service
    #: observing millions of requests stays O(1) in memory.
    MAX_SAMPLES = 8192

    def __init__(self, max_samples: int = MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ObservabilityError("histogram needs max_samples >= 1")
        self._max_samples = int(max_samples)
        self._values: List[float] = []
        self._cursor = 0  # next overwrite position once the ring is full
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: Number) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._values) < self._max_samples:
            self._values.append(value)
        else:
            self._values[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._max_samples

    @property
    def count(self) -> int:
        """Exact number of observations (not bounded by the ring)."""
        return self._count

    @property
    def max_samples(self) -> int:
        return self._max_samples

    @property
    def values(self) -> Tuple[float, ...]:
        """Retained observations in arrival order (SLO burn-rate windows).

        At most :attr:`max_samples` entries — the most recent tail of the
        stream once the ring has wrapped.
        """
        return tuple(self._values[self._cursor:] + self._values[:self._cursor])

    @property
    def sum(self) -> float:
        """Exact sum of every observation."""
        return self._sum

    def percentile(self, q: float) -> float:
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def snapshot(self) -> dict:
        out = {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }
        for q in PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metrics of one observability session, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, _LabelKey], object] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, str]):
        seen = self._kinds.get(name)
        if seen is not None and seen != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as a {seen}"
            )
        self._kinds[name] = kind
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _METRIC_TYPES[kind]()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get("histogram", name, labels)

    # Convenience one-liners for instrumented call sites.
    def inc(self, name: str, amount: Number = 1, **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: Number, **labels: str) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: Number, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def series(self):
        """Live series iterator: ``(kind, name, labels_dict, metric)``."""
        for (kind, name, labels) in sorted(self._metrics):
            yield kind, name, dict(labels), self._metrics[(kind, name, labels)]

    def to_dict(self) -> dict:
        """Flat export: one entry per (name, labels) series."""
        series = []
        for (kind, name, labels) in sorted(self._metrics):
            metric = self._metrics[(kind, name, labels)]
            series.append(
                {
                    "name": name,
                    "type": kind,
                    "labels": dict(labels),
                    **metric.snapshot(),
                }
            )
        return {"schema_version": SCHEMA_VERSION, "metrics": series}

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=2))

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition (histograms as summary quantiles)."""
        lines: List[str] = []
        by_name: Dict[str, List] = {}
        for (kind, name, labels) in sorted(self._metrics):
            by_name.setdefault(name, []).append(
                (kind, labels, self._metrics[(kind, name, labels)])
            )
        for name, entries in sorted(by_name.items()):
            kind = entries[0][0]
            prom_type = "summary" if kind == "histogram" else kind
            lines.append(f"# TYPE {name} {prom_type}")
            for _, labels, metric in entries:
                base = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in labels
                )
                if kind == "histogram":
                    for q in PERCENTILES:
                        qlabel = f'quantile="{q / 100:g}"'
                        sel = f"{{{base + ',' if base else ''}{qlabel}}}"
                        lines.append(
                            f"{name}{sel} {metric.percentile(q):.9g}"
                        )
                    sel = f"{{{base}}}" if base else ""
                    lines.append(f"{name}_count{sel} {metric.count}")
                    lines.append(f"{name}_sum{sel} {metric.sum:.9g}")
                else:
                    sel = f"{{{base}}}" if base else ""
                    lines.append(f"{name}{sel} {metric.value:.9g}")
        return "\n".join(lines) + "\n"
