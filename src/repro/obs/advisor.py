"""Roofline bottleneck advisor: per-kernel cause attribution + findings.

The profiler (:mod:`repro.obs.profile`) tells you *where* modeled time
goes; this module tells you *why*.  It replays each
:class:`~repro.gpusim.device.LaunchRecord` of the device timeline through
the same roofline decomposition the timing model uses
(:func:`repro.gpusim.timing.kernel_time`) and attributes every launch's
modeled seconds to one of six causes:

====================  ==================================================
``global_memory``     DRAM sector traffic (the roofline's memory side,
                      charged when the launch is memory-bound)
``compute_issue``     useful warp-issue slots + shared-memory lane ops
``divergence``        issue slots wasted on idle SIMT lanes
``bank_conflicts``    shared-memory bank-conflict replay cycles
``atomics``           serialized atomic cycles (shared + global)
``launch_overhead``   the fixed per-launch cost
====================  ==================================================

The attribution is *exact by construction*: the dominant component is
computed as the residual of the launch's total modeled time minus the
other components, so per kernel the causes sum to the kernel's modeled
seconds to within floating-point noise (``tests/obs/test_advisor.py``
enforces 1e-9).  Because ``max(compute, memory)`` hides the loser under
the roofline, the hidden side is reported per kernel
(``memory_seconds`` / ``compute_seconds``) but attributed zero time.

On top of the per-kernel breakdown the advisor emits ranked *findings*
— human-readable bottleneck statements with paper-grounded remediation
hints — and a machine-readable *verdict* per kernel (``memory-bound`` /
``conflict-bound`` / ``atomic-bound`` / ``divergence-bound`` /
``compute-bound`` / ``latency-bound``).  PCIe transfers are diagnosed
separately (``transfer-bound`` finding above a configurable share), so
the kernel section still reconciles against the run's kernel time.
Device-memory pressure likewise gets its own finding-level
``memory-capacity-bound`` verdict (with spill/shard hints) when a
device's peak residency exceeds :data:`MEMORY_PRESSURE_THRESHOLD` of
capacity — close enough to ``run_auto``'s 0.9 admission line that the
next growth step would force a ladder degradation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.gpusim.counters import PerfCounters
from repro.gpusim.timing import KernelTiming

#: Attribution buckets, in report order.
CAUSE_KEYS = (
    "global_memory",
    "compute_issue",
    "divergence",
    "bank_conflicts",
    "atomics",
    "launch_overhead",
)

#: Machine-readable verdict for each dominant cause.
CAUSE_TO_VERDICT = {
    "global_memory": "memory-bound",
    "compute_issue": "compute-bound",
    "divergence": "divergence-bound",
    "bank_conflicts": "conflict-bound",
    "atomics": "atomic-bound",
    "launch_overhead": "latency-bound",
}

#: Every verdict ``KernelDiagnosis.verdict`` may produce (kernel-side).
KERNEL_VERDICTS = frozenset(CAUSE_TO_VERDICT.values())

#: Section 4 / Section 5 remediation hints per verdict.
HINTS = {
    "memory-bound": (
        "global-memory traffic dominates: skip unchanged vertices with "
        "frontier/delta propagation, keep CSR reads coalesced, and avoid "
        "re-reading the label array (Section 4.2; simulator.md §5)"
    ),
    "conflict-bound": (
        "shared-memory bank conflicts serialize the CMS/HT updates: "
        "consider CMS row padding (odd stride) or hashing labels before "
        "bank indexing so same-bank lanes spread out (Section 4.2)"
    ),
    "atomic-bound": (
        "atomic serialization dominates: move counting off global atomics "
        "into the shared-memory CMS+HT path, or warp-aggregate updates "
        "before issuing the atomic (Section 4.2, Table 3)"
    ),
    "divergence-bound": (
        "SIMT lanes idle on imbalanced degrees: map low-degree vertices "
        "with the warp-centric multi-vertex (warp-ballot) strategy so "
        "whole warps stay packed (Section 4.2, Table 3)"
    ),
    "compute-bound": (
        "issue-rate bound with packed lanes: reduce per-edge instruction "
        "count or let the shared-memory CMS+HT path absorb more vertices "
        "(raise the high-degree threshold, Section 5.3)"
    ),
    "latency-bound": (
        "fixed launch overhead dominates these short kernels: fuse the "
        "per-iteration map kernels (PickLabel/UpdateVertex) or batch "
        "several iterations per launch"
    ),
    "transfer-bound": (
        "PCIe transfers dominate elapsed time: ship per-iteration label "
        "deltas instead of full arrays and overlap copies with kernels "
        "(hybrid streaming, Section 3.1; paper's <10% target)"
    ),
    "memory-capacity-bound": (
        "device memory is nearly full: spill cold CSR chunks to the host "
        "(hybrid overflow streaming, Section 3.1), shard the graph across "
        "devices (multi-GPU edge partitioning), or drop the reversed CSR "
        "by running dense instead of frontier mode"
    ),
}

#: Findings below this share of total kernel time are noise, not advice.
FINDING_MIN_SHARE = 0.01

#: Transfer share of elapsed time above which a transfer finding fires
#: (the paper's Section 5.4 "<10% visible transfer overhead" target).
TRANSFER_SHARE_THRESHOLD = 0.10

#: Peak-allocation share of device capacity above which a
#: ``memory-capacity-bound`` finding fires (run_auto's ladder admits
#: GLP residency up to 0.9 of capacity, so 0.8 flags runs one growth
#: step away from a forced degradation).
MEMORY_PRESSURE_THRESHOLD = 0.80


def attribute_launch(
    timing: KernelTiming, counters: PerfCounters, spec
) -> Dict[str, float]:
    """Attribute one launch's modeled seconds to the six causes.

    The returned values sum to ``timing.total_seconds`` exactly (the
    dominant bucket is the residual of the total minus the others).
    """
    causes = dict.fromkeys(CAUSE_KEYS, 0.0)
    total = timing.total_seconds
    overhead = timing.launch_overhead
    causes["launch_overhead"] = overhead
    if timing.memory_bound:
        # The whole exposed roofline is DRAM traffic; compute hides under.
        causes["global_memory"] = total - overhead
        return causes
    throughput = spec.warp_throughput
    causes["bank_conflicts"] = counters.shared_bank_conflicts / throughput
    causes["atomics"] = (
        counters.shared_atomic_serialized_ops * spec.shared_atomic_cost_cycles
        + counters.global_atomic_serialized_ops
        * spec.global_atomic_cost_cycles
    ) / throughput
    wasted_slots = max(
        0.0,
        counters.warp_instructions
        - counters.active_lane_sum / spec.warp_size,
    )
    causes["divergence"] = wasted_slots / throughput
    # Useful issue slots + shared-memory lane ops, as the exact residual.
    causes["compute_issue"] = (
        total
        - overhead
        - causes["bank_conflicts"]
        - causes["atomics"]
        - causes["divergence"]
    )
    return causes


@dataclass
class KernelDiagnosis:
    """Accumulated cause attribution of every launch sharing one name."""

    name: str
    launches: int = 0
    seconds: float = 0.0
    #: Exposed roofline seconds per cause (sums to ``seconds``).
    causes: Dict[str, float] = field(
        default_factory=lambda: dict.fromkeys(CAUSE_KEYS, 0.0)
    )
    #: Raw roofline sides, for the "hidden under the max" context.
    memory_seconds: float = 0.0
    compute_seconds: float = 0.0
    memory_bound_launches: int = 0
    counters: PerfCounters = field(default_factory=PerfCounters)

    def accumulate(
        self, timing: KernelTiming, counters: PerfCounters, spec
    ) -> None:
        self.launches += 1
        self.seconds += timing.total_seconds
        for cause, value in attribute_launch(timing, counters, spec).items():
            self.causes[cause] += value
        self.memory_seconds += timing.memory_seconds
        self.compute_seconds += timing.compute_seconds
        if timing.memory_bound:
            self.memory_bound_launches += 1
        self.counters.add(counters)

    # ------------------------------------------------------------------
    @property
    def dominant_cause(self) -> str:
        """The cause carrying the most attributed seconds."""
        return max(CAUSE_KEYS, key=lambda c: self.causes[c])

    @property
    def verdict(self) -> str:
        """Machine-readable bottleneck class of this kernel."""
        return CAUSE_TO_VERDICT[self.dominant_cause]

    def cause_shares(self) -> Dict[str, float]:
        """Each cause's fraction of this kernel's modeled seconds."""
        if self.seconds <= 0.0:
            return dict.fromkeys(CAUSE_KEYS, 0.0)
        return {c: v / self.seconds for c, v in self.causes.items()}

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "launches": self.launches,
            "seconds": self.seconds,
            "verdict": self.verdict,
            "causes": dict(self.causes),
            "cause_shares": self.cause_shares(),
            "memory_seconds": self.memory_seconds,
            "compute_seconds": self.compute_seconds,
            "memory_bound_launches": self.memory_bound_launches,
        }


@dataclass(frozen=True)
class Finding:
    """One ranked, human-readable bottleneck statement."""

    kernel: str
    verdict: str
    #: Seconds attributed to the finding's cause.
    seconds: float
    #: Share of the run's total kernel time those seconds represent
    #: (transfer findings use the share of elapsed time instead).
    severity: float
    message: str
    hint: str

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "verdict": self.verdict,
            "seconds": self.seconds,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


#: Human labels for the cause buckets (used in finding messages).
_CAUSE_LABELS = {
    "global_memory": "global-memory traffic",
    "compute_issue": "warp issue throughput",
    "divergence": "warp divergence / idle lanes",
    "bank_conflicts": "shared-memory bank conflicts",
    "atomics": "atomic serialization",
    "launch_overhead": "kernel launch overhead",
}


class AdvisorReport:
    """Bottleneck attribution of one or more devices' launch timelines."""

    def __init__(
        self,
        kernels: List[KernelDiagnosis],
        *,
        transfer_summary: Optional[dict] = None,
        num_devices: int = 1,
        memory_summary: Optional[List[dict]] = None,
    ) -> None:
        self.kernels = sorted(
            kernels, key=lambda k: k.seconds, reverse=True
        )
        self.transfer_summary = transfer_summary or {
            "h2d": {"count": 0, "bytes": 0, "seconds": 0.0},
            "d2h": {"count": 0, "bytes": 0, "seconds": 0.0},
        }
        self.num_devices = num_devices
        #: Per-device peak residency rows: ``{"device", "peak_bytes",
        #: "capacity_bytes"}`` — drives the memory-capacity-bound finding.
        self.memory_summary = memory_summary or []
        self.findings = self._rank_findings()

    # ------------------------------------------------------------------
    @classmethod
    def from_devices(cls, devices: Sequence) -> "AdvisorReport":
        """Diagnose the timelines of one or more simulated devices."""
        if not devices:
            raise ObservabilityError("no devices to advise on")
        kernels: Dict[str, KernelDiagnosis] = {}
        transfers = {
            "h2d": {"count": 0, "bytes": 0, "seconds": 0.0},
            "d2h": {"count": 0, "bytes": 0, "seconds": 0.0},
        }
        memory_summary = []
        for device in devices:
            for record in device.timeline:
                diag = kernels.get(record.name)
                if diag is None:
                    diag = kernels[record.name] = KernelDiagnosis(
                        name=record.name
                    )
                diag.accumulate(record.timing, record.counters, device.spec)
            summary = device.transfer_summary()
            for direction in ("h2d", "d2h"):
                for key in transfers[direction]:
                    transfers[direction][key] += summary[direction][key]
            memory_summary.append(
                {
                    "device": device.index,
                    "peak_bytes": int(device.peak_allocated_bytes),
                    "capacity_bytes": int(device.spec.global_mem_bytes),
                }
            )
        return cls(
            list(kernels.values()),
            transfer_summary=transfers,
            num_devices=len(devices),
            memory_summary=memory_summary,
        )

    @classmethod
    def from_engine(cls, engine) -> "AdvisorReport":
        """Diagnose whatever devices ``engine`` drives."""
        devices = getattr(engine, "devices", None)
        if devices is None:
            device = getattr(engine, "device", None)
            if device is None:
                raise ObservabilityError(
                    f"engine {engine!r} exposes no simulated device"
                )
            devices = [device]
        return cls.from_devices(devices)

    # ------------------------------------------------------------------
    @property
    def kernel_seconds(self) -> float:
        """Total attributed kernel time (reconciles with the profiler)."""
        return sum(k.seconds for k in self.kernels)

    @property
    def transfer_seconds(self) -> float:
        return (
            self.transfer_summary["h2d"]["seconds"]
            + self.transfer_summary["d2h"]["seconds"]
        )

    @property
    def transfer_fraction(self) -> float:
        """Transfer share of elapsed (kernel + transfer) time."""
        elapsed = self.kernel_seconds + self.transfer_seconds
        if elapsed <= 0.0:
            return 0.0
        return self.transfer_seconds / elapsed

    def total_causes(self) -> Dict[str, float]:
        """Run-wide seconds per cause, across all kernels."""
        totals = dict.fromkeys(CAUSE_KEYS, 0.0)
        for kernel in self.kernels:
            for cause, value in kernel.causes.items():
                totals[cause] += value
        return totals

    def verdicts(self) -> Dict[str, str]:
        """``{kernel name: verdict}`` — the baseline layer's fingerprint."""
        return {k.name: k.verdict for k in self.kernels}

    # ------------------------------------------------------------------
    def _rank_findings(self) -> List[Finding]:
        total = self.kernel_seconds
        findings: List[Finding] = []
        for kernel in self.kernels:
            if kernel.seconds <= 0.0 or total <= 0.0:
                continue
            cause = kernel.dominant_cause
            seconds = kernel.causes[cause]
            severity = seconds / total
            if severity < FINDING_MIN_SHARE:
                continue
            verdict = kernel.verdict
            share_of_kernel = seconds / kernel.seconds
            message = (
                f"{kernel.name} loses {share_of_kernel:.0%} of its modeled "
                f"time ({seconds * 1e6:.3f}us over {kernel.launches} "
                f"launches) to {_CAUSE_LABELS[cause]}"
            )
            findings.append(
                Finding(
                    kernel=kernel.name,
                    verdict=verdict,
                    seconds=seconds,
                    severity=severity,
                    message=message,
                    hint=HINTS[verdict],
                )
            )
        if self.transfer_fraction > TRANSFER_SHARE_THRESHOLD:
            findings.append(
                Finding(
                    kernel="[memcpy]",
                    verdict="transfer-bound",
                    seconds=self.transfer_seconds,
                    severity=self.transfer_fraction,
                    message=(
                        f"H2D/D2H transfers take "
                        f"{self.transfer_fraction:.0%} of elapsed time "
                        f"({self.transfer_seconds * 1e6:.3f}us over "
                        f"{self.transfer_summary['h2d']['count']} H2D + "
                        f"{self.transfer_summary['d2h']['count']} D2H "
                        f"copies)"
                    ),
                    hint=HINTS["transfer-bound"],
                )
            )
        for row in self.memory_summary:
            capacity = row.get("capacity_bytes", 0)
            if not capacity:
                continue
            fraction = row.get("peak_bytes", 0) / capacity
            if fraction <= MEMORY_PRESSURE_THRESHOLD:
                continue
            findings.append(
                Finding(
                    kernel=f"[gpu{row.get('device', 0)} memory]",
                    verdict="memory-capacity-bound",
                    seconds=0.0,
                    severity=fraction,
                    message=(
                        f"peak device residency "
                        f"{row['peak_bytes']} B is {fraction:.0%} of "
                        f"capacity ({capacity} B); the next growth step "
                        f"forces a ladder degradation"
                    ),
                    hint=HINTS["memory-capacity-bound"],
                )
            )
        findings.sort(key=lambda f: f.severity, reverse=True)
        return findings

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "num_devices": self.num_devices,
            "kernel_seconds": self.kernel_seconds,
            "transfer_seconds": self.transfer_seconds,
            "transfer_fraction": self.transfer_fraction,
            "total_causes": self.total_causes(),
            "memory": [dict(row) for row in self.memory_summary],
            "kernels": [k.as_dict() for k in self.kernels],
            "findings": [f.as_dict() for f in self.findings],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self, *, top: Optional[int] = None) -> str:
        """The human-readable advisor report."""
        lines = [
            f"==== roofline bottleneck advisor ({self.num_devices} "
            f"device{'s' if self.num_devices > 1 else ''}) ===="
        ]
        if not self.kernels:
            lines.append("no kernel launches recorded")
            return "\n".join(lines)
        lines.append(
            f"kernel time {self.kernel_seconds * 1e6:.3f}us, transfers "
            f"{self.transfer_seconds * 1e6:.3f}us "
            f"({self.transfer_fraction:.1%} of elapsed)"
        )
        header = (
            f"{'Time(%)':>8}  {'Time':>11}  {'Calls':>6}  "
            f"{'Verdict':>16}  {'DomCause%':>9}  Name"
        )
        lines.append("")
        lines.append(header)
        lines.append("-" * len(header))
        total = self.kernel_seconds
        for kernel in self.kernels:
            share = kernel.seconds / total if total else 0.0
            dom = kernel.cause_shares()[kernel.dominant_cause]
            lines.append(
                f"{share:>7.2%}  {kernel.seconds * 1e6:>9.3f}us  "
                f"{kernel.launches:>6}  {kernel.verdict:>16}  "
                f"{dom:>8.1%}  {kernel.name}"
            )
        lines.append("")
        lines.append("findings (ranked by attributed share):")
        findings = self.findings if top is None else self.findings[:top]
        if not findings:
            lines.append("  none above the reporting threshold")
        for rank, finding in enumerate(findings, 1):
            lines.append(
                f"  {rank}. [{finding.verdict}] {finding.message}"
            )
            lines.append(f"     hint: {finding.hint}")
        return "\n".join(lines)
