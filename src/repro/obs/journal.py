"""Structured event journal with correlation IDs.

The journal is the serving path's flight log: one append-only sequence of
structured events, each stamped with the correlation IDs the active
:class:`~repro.obs.ObsSession` mints — ``run_id`` (one per session),
``slide_id`` (one per window slide) and ``attempt_id`` (one per engine
execution attempt).  A slide's full causal chain — diff, DynLP plan,
engine attempts, injected faults, recovery decisions, ladder
degradations, final latency — is then one ``grep slide-0003`` away.

Events are plain dicts with a fixed envelope::

    {"seq": 7, "ts_us": 1234, "event": "engine.attempt.fault",
     "run_id": "run-1f2e...", "slide_id": "slide-0003",
     "attempt_id": "attempt-0005", ...payload fields...}

``seq`` is strictly increasing within a journal; ``ts_us`` is integer
microseconds of host wall clock since the journal was created (the same
``perf_counter`` origin convention :mod:`repro.obs.trace` uses).  The
JSONL export leads with a ``journal.meta`` header line carrying
``schema_version``, which ``benchmarks/check_obs_schema.py --journal``
validates in CI.

Instrumented code never imports this module directly — it calls
:func:`repro.obs.emit` / :func:`repro.obs.correlate` /
:func:`repro.obs.mint_id`, which are no-ops (one global read) when no
session is active, preserving the zero-perturbation contract.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Dict, Iterator, List, Optional

#: Bump when the event envelope changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: Envelope keys payload fields may not override.
_RESERVED = ("seq", "ts_us", "event", "run_id", "slide_id", "attempt_id")


def mint_run_id() -> str:
    """A fresh globally-unique run correlation ID."""
    return f"run-{uuid.uuid4().hex[:12]}"


def _jsonable(value):
    """Coerce numpy scalars and other oddballs to JSON-clean values."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if item is not None:
        try:
            # numpy scalars: .item() yields the matching Python scalar.
            scalar = item()
            if isinstance(scalar, (str, bool, int, float)):
                return scalar
        except (TypeError, ValueError):
            pass
    return str(value)


class Journal:
    """Append-only structured event log for one observability session."""

    def __init__(self, *, run_id: Optional[str] = None) -> None:
        self.run_id = run_id if run_id is not None else mint_run_id()
        self._origin = time.perf_counter()
        self._seq = 0
        # The serving path journals from the event loop *and* from the
        # slide executor thread; the lock keeps ``seq`` strictly
        # increasing and the append ordered under that concurrency.
        self._lock = threading.Lock()
        self.events: List[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def record(
        self,
        event: str,
        *,
        slide_id: str = "",
        attempt_id: str = "",
        fields: Optional[Dict[str, object]] = None,
    ) -> dict:
        """Append one event and return the stored record."""
        with self._lock:
            self._seq += 1
            record = {
                "seq": self._seq,
                "ts_us": int((time.perf_counter() - self._origin) * 1e6),
                "event": str(event),
                "run_id": self.run_id,
                "slide_id": slide_id,
                "attempt_id": attempt_id,
            }
            if fields:
                for key, value in fields.items():
                    if key not in _RESERVED:
                        record[key] = _jsonable(value)
            self.events.append(record)
            return record

    # ------------------------------------------------------------------
    def events_for(
        self,
        *,
        event: Optional[str] = None,
        slide_id: Optional[str] = None,
        attempt_id: Optional[str] = None,
    ) -> List[dict]:
        """Events matching every given filter, in ``seq`` order."""
        out = []
        for record in self.events:
            if event is not None and record["event"] != event:
                continue
            if slide_id is not None and record["slide_id"] != slide_id:
                continue
            if attempt_id is not None and record["attempt_id"] != attempt_id:
                continue
            out.append(record)
        return out

    def slide_ids(self) -> List[str]:
        """Distinct non-empty slide IDs in first-seen order."""
        seen: List[str] = []
        for record in self.events:
            sid = record["slide_id"]
            if sid and sid not in seen:
                seen.append(sid)
        return seen

    # ------------------------------------------------------------------
    def meta(self) -> dict:
        """The JSONL header record."""
        return {
            "seq": 0,
            "ts_us": 0,
            "event": "journal.meta",
            "run_id": self.run_id,
            "slide_id": "",
            "attempt_id": "",
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "num_events": len(self.events),
        }

    def lines(self) -> Iterator[str]:
        yield json.dumps(self.meta(), sort_keys=True)
        for record in self.events:
            yield json.dumps(record, sort_keys=True, default=str)

    def to_jsonl(self) -> str:
        return "\n".join(self.lines()) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())


def read_journal(path: str) -> List[dict]:
    """Parse a JSONL journal file back into records (header first)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
