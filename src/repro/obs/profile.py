"""nvprof-style per-kernel profiler report over the device timeline.

Every :meth:`Device.launch` already records a
:class:`~repro.gpusim.device.LaunchRecord` with the launch's counter delta
and roofline timing; this module aggregates those records into the table
``nvprof --print-gpu-summary`` would print on real hardware:

====================  =================================================
``launches``          kernel launch count
``seconds``           total modeled kernel time (sums to the run's
                      kernel time exactly — the timeline *is* the run)
``avg/min/max``       per-launch modeled time spread
``global_txn``        global-memory sector transactions (32 B)
``lane_utilization``  SIMT lane occupancy, launch-weighted
``bank_conflicts``    shared-memory bank-conflict replays
``atomic_serialized`` serialized atomic ops (global + shared)
====================  =================================================

PCIe memcpys appear as bracketed pseudo-rows (``[memcpy HtoD]``), exactly
like nvprof, listed in a separate section so the kernel section's time
column still reconciles against :attr:`LPResult.total_seconds`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.gpusim.counters import PerfCounters

#: Bump when the JSON export changes incompatibly.
SCHEMA_VERSION = 1

#: Columns ``--sort-by`` accepts, mapped to row attributes.
SORT_KEYS = {
    "time": "seconds",
    "launches": "launches",
    "transactions": "global_transactions",
    "bank_conflicts": "shared_bank_conflicts",
    "atomics": "atomic_serialized_ops",
    "name": "name",
}


@dataclass
class KernelRow:
    """Aggregated statistics of every launch sharing one kernel name."""

    name: str
    launches: int = 0
    seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    counters: PerfCounters = field(default_factory=PerfCounters)

    def accumulate(self, seconds: float, counters: PerfCounters) -> None:
        self.launches += 1
        self.seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        self.counters.add(counters)

    @property
    def avg_seconds(self) -> float:
        return self.seconds / self.launches if self.launches else 0.0

    @property
    def global_transactions(self) -> int:
        return self.counters.global_transactions

    @property
    def lane_utilization(self) -> float:
        return self.counters.lane_utilization

    @property
    def shared_bank_conflicts(self) -> int:
        return self.counters.shared_bank_conflicts

    @property
    def atomic_serialized_ops(self) -> int:
        return (
            self.counters.global_atomic_serialized_ops
            + self.counters.shared_atomic_serialized_ops
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "launches": self.launches,
            "seconds": self.seconds,
            "avg_seconds": self.avg_seconds,
            "min_seconds": 0.0 if self.launches == 0 else self.min_seconds,
            "max_seconds": self.max_seconds,
            "global_transactions": self.global_transactions,
            "lane_utilization": self.lane_utilization,
            "shared_bank_conflicts": self.shared_bank_conflicts,
            "atomic_serialized_ops": self.atomic_serialized_ops,
            "counters": self.counters.as_dict(include_derived=True),
        }


@dataclass(frozen=True)
class MemcpyRow:
    """One PCIe transfer direction, aggregated (nvprof's bracketed rows)."""

    name: str
    count: int
    bytes: int
    seconds: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "bytes": self.bytes,
            "seconds": self.seconds,
        }


class ProfileReport:
    """Per-kernel aggregation of one or more devices' launch timelines."""

    def __init__(
        self,
        rows: List[KernelRow],
        memcpys: List[MemcpyRow],
        *,
        num_devices: int = 1,
    ) -> None:
        self.rows = rows
        self.memcpys = memcpys
        self.num_devices = num_devices

    # ------------------------------------------------------------------
    @classmethod
    def from_devices(cls, devices: Sequence) -> "ProfileReport":
        """Aggregate the timelines of one or more simulated devices."""
        if not devices:
            raise ObservabilityError("no devices to profile")
        rows: Dict[str, KernelRow] = {}
        h2d = {"count": 0, "bytes": 0, "seconds": 0.0}
        d2h = {"count": 0, "bytes": 0, "seconds": 0.0}
        for device in devices:
            for record in device.timeline:
                row = rows.get(record.name)
                if row is None:
                    row = rows[record.name] = KernelRow(name=record.name)
                row.accumulate(record.seconds, record.counters)
            summary = device.transfer_summary()
            for bucket, key in ((h2d, "h2d"), (d2h, "d2h")):
                for k in bucket:
                    bucket[k] += summary[key][k]
        memcpys = [
            MemcpyRow(name="[memcpy HtoD]", **h2d),
            MemcpyRow(name="[memcpy DtoH]", **d2h),
        ]
        return cls(
            list(rows.values()),
            [m for m in memcpys if m.count],
            num_devices=len(devices),
        )

    @classmethod
    def from_engine(cls, engine) -> "ProfileReport":
        """Profile whatever devices ``engine`` drives."""
        devices = getattr(engine, "devices", None)
        if devices is None:
            device = getattr(engine, "device", None)
            if device is None:
                raise ObservabilityError(
                    f"engine {engine!r} exposes no simulated device"
                )
            devices = [device]
        return cls.from_devices(devices)

    # ------------------------------------------------------------------
    @property
    def kernel_seconds(self) -> float:
        """Total modeled kernel time (the table's reconciliation total)."""
        return sum(row.seconds for row in self.rows)

    @property
    def transfer_seconds(self) -> float:
        return sum(row.seconds for row in self.memcpys)

    @property
    def total_launches(self) -> int:
        return sum(row.launches for row in self.rows)

    def sorted_rows(self, sort_by: str = "time") -> List[KernelRow]:
        try:
            attr = SORT_KEYS[sort_by]
        except KeyError:
            raise ObservabilityError(
                f"unknown sort key {sort_by!r}; expected one of "
                f"{sorted(SORT_KEYS)}"
            ) from None
        reverse = sort_by != "name"
        return sorted(
            self.rows, key=lambda r: getattr(r, attr), reverse=reverse
        )

    # ------------------------------------------------------------------
    def to_dict(self, *, sort_by: str = "time") -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "num_devices": self.num_devices,
            "kernel_seconds": self.kernel_seconds,
            "transfer_seconds": self.transfer_seconds,
            "total_launches": self.total_launches,
            "kernels": [r.as_dict() for r in self.sorted_rows(sort_by)],
            "memcpys": [m.as_dict() for m in self.memcpys],
        }

    def to_json(
        self, *, sort_by: str = "time", indent: Optional[int] = None
    ) -> str:
        return json.dumps(self.to_dict(sort_by=sort_by), indent=indent)

    def to_text(self, *, sort_by: str = "time") -> str:
        """The nvprof-style table."""
        total = self.kernel_seconds
        header = (
            f"{'Time(%)':>8}  {'Time':>11}  {'Calls':>6}  {'Avg':>11}  "
            f"{'GlobalTxn':>12}  {'LaneUtil':>8}  {'BankConf':>9}  "
            f"{'AtomSer':>8}  Name"
        )
        lines = [
            f"==== modeled GPU activities "
            f"({self.num_devices} device{'s' if self.num_devices > 1 else ''}) ====",
            header,
            "-" * len(header),
        ]
        for row in self.sorted_rows(sort_by):
            share = row.seconds / total if total else 0.0
            lines.append(
                f"{share:>7.2%}  {_fmt_time(row.seconds):>11}  "
                f"{row.launches:>6}  {_fmt_time(row.avg_seconds):>11}  "
                f"{row.global_transactions:>12,}  "
                f"{row.lane_utilization:>8.1%}  "
                f"{row.shared_bank_conflicts:>9,}  "
                f"{row.atomic_serialized_ops:>8,}  {row.name}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'':>8}  {_fmt_time(total):>11}  {self.total_launches:>6}  "
            f"{'':>11}  {'':>12}  {'':>8}  {'':>9}  {'':>8}  [kernel total]"
        )
        for row in self.memcpys:
            avg = row.seconds / row.count if row.count else 0.0
            lines.append(
                f"{'':>8}  {_fmt_time(row.seconds):>11}  {row.count:>6}  "
                f"{_fmt_time(avg):>11}  "
                f"{row.bytes:>12,}B {'':>8}  {'':>9}  {'':>8}  {row.name}"
            )
        return "\n".join(lines)


def _fmt_time(seconds: float) -> str:
    """Engineering-format a modeled duration (nvprof style)."""
    if seconds >= 1.0:
        return f"{seconds:.4f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.4f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"
