"""Declarative SLOs with multi-window burn-rate alerting.

A TOML spec declares the service objectives the serving path must hold —
slide end-to-end p95/p99 on the modeled clock, the incremental-fallback
rate, the degradation rate, the recovery budget — and
:func:`evaluate_slos` judges them against a
:class:`~repro.obs.metrics.MetricsRegistry` (live) or its JSON export.
Verdicts are emitted as :class:`~repro.analysis.findings.AnalysisReport`
findings (source ``"slo"``), the same machine-readable currency the
sanitizer / linter / chaos gates already speak, so
``benchmarks/check_obs_schema.py --slo`` validates them in CI.

Three objective kinds::

    [[slo]]
    name = "slide-e2e-p95"          # latency: percentile <= objective
    kind = "latency"
    metric = "pipeline_e2e_modeled_seconds"
    percentile = 95.0
    objective = 0.050               # seconds on the metric's clock

      [[slo.windows]]               # burn-rate windows (latency only)
      observations = 20             # trailing-N observations ("slow")
      max_burn_rate = 1.0

      [[slo.windows]]
      observations = 5              # trailing-N observations ("fast")
      max_burn_rate = 4.0

    [[slo]]
    name = "incremental-fallback-rate"
    kind = "ratio"                  # sum(numerator) / sum(denominator)
    numerator = "pipeline_incremental_total"
    denominator = "pipeline_incremental_total"
    objective = 0.5                 # max allowed fraction
      [slo.numerator_labels]
      mode = "full"

    [[slo]]
    name = "degradation-budget"
    kind = "counter-max"            # sum(metric) <= objective
    metric = "resilience_degradations_total"
    objective = 0

Label tables select series by *subset* match: a series matches when every
spec label equals the series' value; all matching series are summed (for
latency, their raw observations are concatenated).

Burn rate follows the SRE playbook, transposed from wall-clock windows to
*event-count* windows because the simulator's runs are deterministic
sequences of observations, not a continuous clock: a latency SLO at
percentile ``p`` grants an error budget of ``(100 - p) / 100`` — that
fraction of observations may exceed the objective.  Over a trailing
window of N observations, ``burn_rate = bad_fraction / budget``; 1.0
means the budget is being consumed exactly at the allowed rate.  An SLO
*alerts* only when **every** configured window exceeds its
``max_burn_rate`` (the multi-window AND: the fast window proves the
problem is current, the slow window proves it is sustained).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.findings import AnalysisReport, Finding
from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, PERCENTILES

#: Bump when the spec or verdict payload changes incompatibly.
SLO_SCHEMA_VERSION = 1

KINDS = ("latency", "ratio", "counter-max")


@dataclass(frozen=True)
class BurnWindow:
    """One trailing-observation burn-rate window."""

    observations: int
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.observations < 1:
            raise ObservabilityError("burn window needs >= 1 observation")
        if self.max_burn_rate <= 0:
            raise ObservabilityError("max_burn_rate must be > 0")


@dataclass(frozen=True)
class SLO:
    """One declared objective."""

    name: str
    kind: str
    objective: float
    description: str = ""
    metric: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    percentile: float = 95.0
    numerator: str = ""
    numerator_labels: Tuple[Tuple[str, str], ...] = ()
    denominator: str = ""
    denominator_labels: Tuple[Tuple[str, str], ...] = ()
    windows: Tuple[BurnWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ObservabilityError(
                f"SLO {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.kind in ("latency", "counter-max") and not self.metric:
            raise ObservabilityError(f"SLO {self.name!r}: metric required")
        if self.kind == "ratio" and not (self.numerator and self.denominator):
            raise ObservabilityError(
                f"SLO {self.name!r}: numerator and denominator required"
            )
        if self.kind == "latency" and not 0.0 < self.percentile < 100.0:
            raise ObservabilityError(
                f"SLO {self.name!r}: percentile must be in (0, 100)"
            )
        if self.windows and self.kind != "latency":
            raise ObservabilityError(
                f"SLO {self.name!r}: burn windows apply to latency SLOs only"
            )

    @property
    def budget(self) -> float:
        """Allowed bad-observation fraction of a latency SLO."""
        return (100.0 - self.percentile) / 100.0


@dataclass
class SLOVerdict:
    """One SLO judged against one metrics source."""

    slo: SLO
    ok: bool
    measured: float
    detail: str = ""
    missing: bool = False
    alerting: bool = False
    burn: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "objective": float(self.slo.objective),
            "ok": bool(self.ok),
            "measured": float(self.measured),
            "detail": self.detail,
            "missing": bool(self.missing),
            "alerting": bool(self.alerting),
            "burn": list(self.burn),
        }


@dataclass
class SLOReport:
    """All verdicts of one evaluation."""

    verdicts: List[SLOVerdict] = field(default_factory=list)

    @property
    def breached(self) -> List[SLOVerdict]:
        return [v for v in self.verdicts if not v.ok and not v.missing]

    @property
    def alerting(self) -> List[SLOVerdict]:
        return [v for v in self.verdicts if v.alerting]

    @property
    def ok(self) -> bool:
        return not self.breached

    def analysis_report(self) -> AnalysisReport:
        """Verdicts as findings (source ``"slo"``) for gating and CI."""
        report = AnalysisReport(source="slo", checked=len(self.verdicts))
        for verdict in self.verdicts:
            where = f"slo:{verdict.slo.name}"
            if verdict.missing:
                report.add(
                    Finding(
                        rule="slo-missing-metric",
                        message=verdict.detail or "metric not observed",
                        location=where,
                    )
                )
                continue
            if not verdict.ok:
                report.add(
                    Finding(
                        rule="slo-breach",
                        message=(
                            f"{verdict.detail or verdict.slo.kind}: measured "
                            f"{verdict.measured:.6g} vs objective "
                            f"{verdict.slo.objective:.6g}"
                        ),
                        location=where,
                    )
                )
            if verdict.alerting:
                rates = ", ".join(
                    f"last {b['observations']}: {b['burn_rate']:.2f}x"
                    f" (max {b['max_burn_rate']:g}x)"
                    for b in verdict.burn
                )
                report.add(
                    Finding(
                        rule="slo-burn-rate",
                        message=f"error budget burning too fast ({rates})",
                        location=where,
                    )
                )
        return report

    def as_dict(self) -> dict:
        doc = self.analysis_report().as_dict()
        doc["verdicts"] = [v.as_dict() for v in self.verdicts]
        return doc

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def to_text(self) -> str:
        lines = []
        for verdict in self.verdicts:
            if verdict.missing:
                status = "MISSING"
            elif not verdict.ok:
                status = "BREACH"
            elif verdict.alerting:
                status = "BURNING"
            else:
                status = "ok"
            lines.append(
                f"  [{status:>7}] {verdict.slo.name}: measured "
                f"{verdict.measured:.6g} vs objective "
                f"{verdict.slo.objective:.6g}"
                + (f" ({verdict.detail})" if verdict.detail else "")
            )
        summary = (
            f"slo: {len(self.verdicts)} objective(s), "
            f"{len(self.breached)} breached, {len(self.alerting)} burning"
        )
        return "\n".join([summary] + lines)


# ---------------------------------------------------------------------------
# Spec loading (TOML with a minimal fallback parser for py<3.11).


def _labels_tuple(table: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in table.items()))


def _parse_toml_minimal(text: str) -> dict:
    """Tiny TOML subset parser: array-of-tables, dotted tables, scalars.

    Mirrors the fallback convention of :mod:`repro.bench.baseline` —
    enough for SLO specs on interpreters without :mod:`tomllib`.
    """
    doc: Dict[str, object] = {}
    current: Dict[str, object] = doc

    def descend(parts: Sequence[str], *, append_last: bool) -> dict:
        node: Dict[str, object] = doc
        for i, part in enumerate(parts):
            last = i == len(parts) - 1
            if last and append_last:
                entries = node.setdefault(part, [])
                if not isinstance(entries, list):
                    raise ObservabilityError(
                        f"TOML key {part!r} is not an array of tables"
                    )
                entries.append({})
                return entries[-1]
            nxt = node.get(part)
            if isinstance(nxt, list):
                if not nxt:
                    raise ObservabilityError(f"empty table array {part!r}")
                node = nxt[-1]
            elif isinstance(nxt, dict):
                node = nxt
            else:
                node[part] = {}
                node = node[part]
        return node

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            parts = line[2:-2].strip().split(".")
            current = descend(parts, append_last=True)
            continue
        if line.startswith("[") and line.endswith("]"):
            parts = line[1:-1].strip().split(".")
            current = descend(parts, append_last=False)
            continue
        if "=" not in line:
            raise ObservabilityError(f"cannot parse TOML line: {raw!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.split("#", 1)[0].strip()
        if value.startswith('"') and value.endswith('"'):
            current[key] = value[1:-1]
        elif value in ("true", "false"):
            current[key] = value == "true"
        else:
            number = float(value)
            current[key] = int(number) if number.is_integer() else number
    return doc


def _load_toml(text: str) -> dict:
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
        return _parse_toml_minimal(text)
    return tomllib.loads(text)


def parse_slo_spec(text: str) -> List[SLO]:
    """Parse a TOML SLO spec document."""
    doc = _load_toml(text)
    version = doc.get("schema_version", SLO_SCHEMA_VERSION)
    if version != SLO_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported SLO spec schema_version {version!r}"
        )
    tables = doc.get("slo", [])
    if not tables:
        raise ObservabilityError("SLO spec declares no [[slo]] tables")
    slos = []
    for table in tables:
        if "name" not in table or "kind" not in table:
            raise ObservabilityError("every [[slo]] needs name and kind")
        windows = tuple(
            BurnWindow(
                observations=int(w["observations"]),
                max_burn_rate=float(w["max_burn_rate"]),
            )
            for w in table.get("windows", [])
        )
        slos.append(
            SLO(
                name=str(table["name"]),
                kind=str(table["kind"]),
                objective=float(table.get("objective", 0.0)),
                description=str(table.get("description", "")),
                metric=str(table.get("metric", "")),
                labels=_labels_tuple(table.get("labels", {})),
                percentile=float(table.get("percentile", 95.0)),
                numerator=str(table.get("numerator", "")),
                numerator_labels=_labels_tuple(
                    table.get("numerator_labels", {})
                ),
                denominator=str(table.get("denominator", "")),
                denominator_labels=_labels_tuple(
                    table.get("denominator_labels", {})
                ),
                windows=windows,
            )
        )
    names = [slo.name for slo in slos]
    if len(set(names)) != len(names):
        raise ObservabilityError("duplicate SLO names in spec")
    return slos


def load_slo_spec(path: str) -> List[SLO]:
    with open(path) as fh:
        return parse_slo_spec(fh.read())


# ---------------------------------------------------------------------------
# Evaluation.


class _Series:
    """One (name, labels) series normalized from either metrics source."""

    __slots__ = ("name", "kind", "labels", "snapshot", "values")

    def __init__(self, name, kind, labels, snapshot, values=None):
        self.name = name
        self.kind = kind
        self.labels = labels
        self.snapshot = snapshot
        self.values = values  # raw observations (live registries only)


def _index(metrics: Union[MetricsRegistry, dict]) -> List[_Series]:
    out = []
    if isinstance(metrics, MetricsRegistry):
        for kind, name, labels, metric in metrics.series():
            values = metric.values if kind == "histogram" else None
            out.append(
                _Series(name, kind, labels, metric.snapshot(), values)
            )
        return out
    for entry in metrics.get("metrics", []):
        out.append(
            _Series(
                entry["name"],
                entry.get("type", "counter"),
                dict(entry.get("labels", {})),
                entry,
            )
        )
    return out


def _matches(series: _Series, name: str, labels) -> bool:
    if series.name != name:
        return False
    return all(series.labels.get(k) == v for k, v in labels)


def _sum_values(index, name, labels) -> Optional[float]:
    """Sum counter/gauge values (histograms contribute their count)."""
    total, found = 0.0, False
    for series in index:
        if not _matches(series, name, labels):
            continue
        found = True
        if series.kind == "histogram":
            total += float(series.snapshot.get("count", 0))
        else:
            total += float(series.snapshot.get("value", 0.0))
    return total if found else None


def _burn_rates(slo: SLO, observations: Sequence[float]) -> List[dict]:
    burn = []
    for window in slo.windows:
        tail = list(observations[-window.observations:])
        if tail:
            bad = sum(1 for value in tail if value > slo.objective)
            bad_fraction = bad / len(tail)
        else:
            bad_fraction = 0.0
        # ``budget`` > 0 is guaranteed by the percentile-range validation.
        rate = bad_fraction / slo.budget
        burn.append(
            {
                "observations": window.observations,
                "seen": len(tail),
                "bad_fraction": bad_fraction,
                "burn_rate": float(rate),
                "max_burn_rate": window.max_burn_rate,
                "exceeded": bool(rate > window.max_burn_rate),
            }
        )
    return burn


def _evaluate_latency(slo: SLO, index) -> SLOVerdict:
    matching = [
        s for s in index
        if _matches(s, slo.metric, slo.labels) and s.kind == "histogram"
    ]
    if not matching or all(
        float(s.snapshot.get("count", 0)) == 0 for s in matching
    ):
        return SLOVerdict(
            slo,
            ok=True,
            measured=0.0,
            missing=True,
            detail=f"no observations of {slo.metric}",
        )
    raw: List[float] = []
    for series in matching:
        if series.values is not None:
            raw.extend(series.values)
    if raw:
        measured = float(np.percentile(raw, slo.percentile))
        detail = f"p{slo.percentile:g} over {len(raw)} observation(s)"
        burn = _burn_rates(slo, raw)
    else:
        # Snapshot-only source: exact percentiles exist for the exported
        # ones; otherwise take the conservative max across series.
        key = f"p{slo.percentile:g}"
        if slo.percentile not in PERCENTILES:
            return SLOVerdict(
                slo,
                ok=True,
                measured=0.0,
                missing=True,
                detail=(
                    f"percentile p{slo.percentile:g} unavailable in metric "
                    f"snapshots (exported: "
                    f"{', '.join(f'p{p:g}' for p in PERCENTILES)})"
                ),
            )
        measured = max(float(s.snapshot.get(key, 0.0)) for s in matching)
        detail = f"{key} from snapshot ({len(matching)} series)"
        burn = []  # burn-rate windows need raw observations
    alerting = bool(burn) and all(b["exceeded"] for b in burn)
    return SLOVerdict(
        slo,
        ok=measured <= slo.objective,
        measured=measured,
        detail=detail,
        alerting=alerting,
        burn=burn,
    )


def _evaluate_ratio(slo: SLO, index) -> SLOVerdict:
    numerator = _sum_values(index, slo.numerator, slo.numerator_labels)
    denominator = _sum_values(
        index, slo.denominator, slo.denominator_labels
    )
    if denominator is None or denominator == 0.0:
        return SLOVerdict(
            slo,
            ok=True,
            measured=0.0,
            missing=True,
            detail=f"denominator {slo.denominator} not observed",
        )
    measured = (numerator or 0.0) / denominator
    return SLOVerdict(
        slo,
        ok=measured <= slo.objective,
        measured=measured,
        detail=(
            f"{numerator or 0.0:g}/{denominator:g} "
            f"{slo.numerator} over {slo.denominator}"
        ),
    )


def _evaluate_counter_max(slo: SLO, index) -> SLOVerdict:
    total = _sum_values(index, slo.metric, slo.labels)
    # An unobserved counter is a clean zero, not a missing signal: the
    # degradation/replay counters only materialize on their first event.
    measured = total if total is not None else 0.0
    return SLOVerdict(
        slo,
        ok=measured <= slo.objective,
        measured=measured,
        detail=f"sum of {slo.metric}",
    )


_EVALUATORS = {
    "latency": _evaluate_latency,
    "ratio": _evaluate_ratio,
    "counter-max": _evaluate_counter_max,
}


def evaluate_slos(
    slos: Sequence[SLO], metrics: Union[MetricsRegistry, dict]
) -> SLOReport:
    """Judge every SLO against a registry or its JSON export."""
    index = _index(metrics)
    return SLOReport(
        verdicts=[_EVALUATORS[slo.kind](slo, index) for slo in slos]
    )
