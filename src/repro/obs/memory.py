"""Device-memory telemetry: allocation tracker, residency timeline and
watermark profiler.

Device memory is the load-bearing resource of the whole reproduction —
:func:`repro.core.hybrid.device_footprint` decides the GPU→hybrid→CPU
degradation ladder, hybrid spilling is charged against it, and injected
OOMs drive the resilience story.  This module gives it the observability
the kernel clock already has:

* a :class:`MemoryTracker` installed through the import-free
  :mod:`repro.gpusim.hooks` registry (:func:`hooks.set_memory`) receives
  every ``Device.alloc``/``free``/``free_all``/``h2d``/``d2h``/stream
  event and maintains per-device live-bytes and high-water-mark time
  series on the **modeled clock** (``device.elapsed_seconds``);
* every allocation is tagged with a semantic **category** — one of
  :data:`CATEGORIES` — threaded from the engines via the
  :func:`alloc_scope` context manager (which sets the ambient
  :func:`hooks.memscope` tag the device copies onto each
  :class:`~repro.gpusim.device.DeviceArray`);
* the timeline is exported as Chrome-trace **counter tracks** (one per
  device, ``ph: "C"``) next to the existing kernel/memcpy span lanes
  whenever an :mod:`repro.obs` session with a tracer is active;
* :meth:`MemoryTracker.report` emits a watermark report whose
  per-category live bytes reconcile **exactly** to
  ``Device.allocated_bytes`` at every tracked event (violations are
  recorded, never silently dropped);
* engine planners call :meth:`MemoryTracker.note_prediction` so
  :meth:`MemoryTracker.planner_accuracy` can validate ``device_footprint``
  estimates against measured peaks;
  :meth:`MemoryTracker.analysis_report` turns >10 % errors into
  :class:`~repro.analysis.findings.AnalysisReport` findings
  (``memory-planner-underestimate`` is a ladder-correctness bug,
  ``memory-planner-overestimate`` forces needless CPU fallbacks);
* :meth:`MemoryTracker.allocation_snapshot` is duck-typed by
  :mod:`repro.obs.flight` so OOM post-mortems carry the live allocation
  table at the moment of death.

With no tracker installed every device forward is one module read plus a
``None`` check — the same zero-perturbation contract the sanitizer,
fault-injection and obs layers honor, enforced differentially by
``tests/obs/test_identity.py``.
"""

from __future__ import annotations

import contextlib
import json
from typing import Dict, Iterator, List, Optional

from repro.gpusim import hooks

#: Bump when the watermark-report payload changes incompatibly.
MEMORY_SCHEMA_VERSION = 1

#: The semantic allocation categories engines tag residency with.
CATEGORIES = (
    "csr",
    "reversed-csr",
    "labels",
    "frontier",
    "exchange",
    "scratch",
)

#: Relative error above which a planner prediction becomes a finding.
PLANNER_ERROR_THRESHOLD = 0.10


@contextlib.contextmanager
def alloc_scope(category: str, origin: str = "") -> Iterator[None]:
    """Tag device allocations made inside the block with ``category``.

    Sets the ambient :func:`repro.gpusim.hooks.memscope` tag (restoring
    the previous one on exit); :meth:`Device._register` copies it onto
    each new :class:`~repro.gpusim.device.DeviceArray`.  Safe to leave in
    place permanently: with no tracker installed the tag is one module
    global write and perturbs nothing.
    """
    if category not in CATEGORIES:
        raise ValueError(
            f"unknown allocation category {category!r}; "
            f"expected one of {CATEGORIES}"
        )
    previous = hooks.memscope()
    hooks.set_memscope((category, origin))
    try:
        yield
    finally:
        hooks.set_memscope(previous)


def _new_direction() -> dict:
    return {
        "count": 0,
        "bytes": 0,
        "seconds": 0.0,
        "streamed_count": 0,
        "streamed_bytes": 0,
    }


class MemoryTracker:
    """Per-device allocation timeline, watermarks and planner accuracy.

    Install with :func:`track` (or :meth:`install` / :meth:`uninstall`);
    all callbacks are read-only observers of the device, so tracked and
    untracked runs stay bitwise identical.
    """

    def __init__(self, *, max_events_per_device: int = 8192) -> None:
        self.max_events_per_device = max_events_per_device
        #: id(device) -> per-device state dict (see :meth:`_state`).
        self._devices: Dict[int, dict] = {}
        #: Planner predictions keyed by (engine, device index): last wins.
        self._predictions: Dict[tuple, dict] = {}

    # ------------------------------------------------------------------
    # Install / uninstall
    # ------------------------------------------------------------------
    def install(self) -> "MemoryTracker":
        hooks.set_memory(self)
        return self

    def uninstall(self) -> None:
        if hooks.memory() is self:
            hooks.set_memory(None)

    # ------------------------------------------------------------------
    # Per-device state
    # ------------------------------------------------------------------
    def _state(self, device, *, exclude=None) -> dict:
        state = self._devices.get(id(device))
        if state is None:
            state = {
                "index": device.index,
                "spec": device.spec.name,
                "capacity_bytes": int(device.spec.global_mem_bytes),
                "live": {},  # category -> live bytes
                "live_total": 0,
                "peak_bytes": 0,
                "peak_ts": 0.0,
                "categories_at_peak": {},
                "category_peaks": {},  # category -> its own peak
                "events": [],
                "num_events": 0,
                "dropped_events": 0,
                "mismatches": 0,
                "transfers": {
                    "h2d": _new_direction(),
                    "d2h": _new_direction(),
                },
                "exchange_bytes": 0,
                "exchange_seconds": 0.0,
                "freed_all_bytes": 0,
                "freed_all_calls": 0,
                "oom_count": 0,
                # Stitched modeled clock: reset_timing() rewinds
                # device.elapsed_seconds between runs (window slides),
                # so the tracker carries its own origin to keep every
                # device's timeline monotone across runs.
                "ts_origin": 0.0,
                "last_raw_ts": 0.0,
            }
            # Adopt anything already resident so reconciliation holds
            # even when the tracker attaches mid-session.  ``exclude``
            # is the handle an in-flight on_alloc is about to count —
            # the device registers it before the callback fires, so
            # adopting it here would double-count it.
            for handle in device.live_allocations():
                if handle is exclude:
                    continue
                cat = handle.category
                state["live"][cat] = state["live"].get(cat, 0) + handle.nbytes
                state["live_total"] += handle.nbytes
                if state["live"][cat] > state["category_peaks"].get(cat, 0):
                    state["category_peaks"][cat] = state["live"][cat]
            if state["live_total"]:
                state["peak_bytes"] = state["live_total"]
                state["peak_ts"] = float(device.elapsed_seconds)
                state["categories_at_peak"] = dict(state["live"])
            self._devices[id(device)] = state
        return state

    def _stitched_ts(self, device, state: dict) -> float:
        raw = float(device.elapsed_seconds)
        if raw < state["last_raw_ts"]:
            # The modeled clock was reset (reset_timing between runs):
            # fold the finished run's span into the origin.
            state["ts_origin"] += state["last_raw_ts"]
        state["last_raw_ts"] = raw
        return state["ts_origin"] + raw

    def _record(self, device, state: dict, op: str, **fields) -> None:
        ts = self._stitched_ts(device, state)
        live_total = state["live_total"]
        allocated = int(device.allocated_bytes)
        reconciled = live_total == allocated
        if not reconciled:
            state["mismatches"] += 1
        event = {
            "ts": ts,
            "op": op,
            "device": state["index"],
            "live_bytes": live_total,
            "device_allocated_bytes": allocated,
            "reconciled": reconciled,
            **fields,
        }
        state["num_events"] += 1
        if len(state["events"]) < self.max_events_per_device:
            state["events"].append(event)
        else:
            state["dropped_events"] += 1
        if live_total > state["peak_bytes"]:
            state["peak_bytes"] = live_total
            state["peak_ts"] = ts
            state["categories_at_peak"] = dict(state["live"])
        self._emit_counter(state, ts)

    def _emit_counter(self, state: dict, ts: float) -> None:
        """One Chrome counter sample on this device's track (if tracing)."""
        # Imported lazily: repro.obs imports this module at package init.
        from repro import obs

        tracer = obs.tracer()
        if tracer is None:
            return
        counter = getattr(tracer, "counter_event", None)
        if counter is None:
            return
        # Every category ever seen on this device, so a freed category's
        # series drops back to zero instead of holding its last value.
        values = {
            cat: int(state["live"].get(cat, 0))
            for cat in sorted(state["category_peaks"])
        }
        counter(state["index"], ts, values)

    # ------------------------------------------------------------------
    # Device hook callbacks (see repro.gpusim.device)
    # ------------------------------------------------------------------
    def on_alloc(self, device, handle, kind: str) -> None:
        state = self._state(device, exclude=handle)
        cat = handle.category
        state["live"][cat] = state["live"].get(cat, 0) + handle.nbytes
        state["live_total"] += handle.nbytes
        if state["live"][cat] > state["category_peaks"].get(cat, 0):
            state["category_peaks"][cat] = state["live"][cat]
        self._record(
            device,
            state,
            kind,
            category=cat,
            origin=handle.origin,
            bytes=handle.nbytes,
        )

    def on_free(self, device, handle) -> None:
        state = self._state(device)
        cat = handle.category
        state["live"][cat] = state["live"].get(cat, 0) - handle.nbytes
        state["live_total"] -= handle.nbytes
        if not state["live"][cat]:
            del state["live"][cat]
        self._record(
            device,
            state,
            "free",
            category=cat,
            origin=handle.origin,
            bytes=handle.nbytes,
        )

    def on_free_all(self, device, released: int, count: int) -> None:
        # The individual frees were already journaled by on_free; this
        # records the sweep itself and the total it released.
        state = self._state(device)
        state["freed_all_bytes"] += int(released)
        state["freed_all_calls"] += 1
        self._record(
            device, state, "free_all", bytes=int(released), freed=int(count)
        )

    def on_transfer(
        self, device, direction: str, nbytes: int, seconds: float,
        *, streamed: bool,
    ) -> None:
        state = self._state(device)
        totals = state["transfers"][direction]
        totals["count"] += 1
        totals["bytes"] += int(nbytes)
        totals["seconds"] += float(seconds)
        if streamed:
            totals["streamed_count"] += 1
            totals["streamed_bytes"] += int(nbytes)
            # Streams leave no allocation behind; tag the traffic with
            # the ambient scope's category (hybrid wraps its delta/
            # frontier shipping in alloc_scope("exchange")).
            scope = hooks.memscope()
            if scope is not None and scope[0] == "exchange":
                state["exchange_bytes"] += int(nbytes)
                state["exchange_seconds"] += float(seconds)

    def on_exchange(self, device, nbytes: int, seconds: float = 0.0) -> None:
        """Inter-GPU exchange traffic modeled without device allocations.

        The multi-GPU engine charges label/frontier exchange straight to
        the transfer clock (no ``DeviceArray`` ever exists), so it reports
        the bytes here explicitly.
        """
        state = self._state(device)
        state["exchange_bytes"] += int(nbytes)
        state["exchange_seconds"] += float(seconds)

    def on_oom(self, device, nbytes: int) -> None:
        state = self._state(device)
        state["oom_count"] += 1
        self._record(device, state, "oom", bytes=int(nbytes))

    # ------------------------------------------------------------------
    # Planner accuracy
    # ------------------------------------------------------------------
    def note_prediction(
        self,
        engine: str,
        device,
        predicted_bytes: int,
        *,
        source: str = "device_footprint",
    ) -> None:
        """Record a planner's residency estimate for this engine+device."""
        state = self._state(device)
        self._predictions[(engine, state["index"])] = {
            "engine": engine,
            "device": state["index"],
            "source": source,
            "predicted_bytes": int(predicted_bytes),
        }

    def planner_accuracy(self) -> List[dict]:
        """Predicted vs measured peak bytes, one row per engine+device."""
        rows = []
        peaks = {
            state["index"]: state["peak_bytes"]
            for state in self._devices.values()
        }
        for key in sorted(self._predictions):
            pred = self._predictions[key]
            measured = int(peaks.get(pred["device"], 0))
            predicted = pred["predicted_bytes"]
            error = (
                (measured - predicted) / predicted if predicted else 0.0
            )
            rows.append(
                {
                    **pred,
                    "measured_peak_bytes": measured,
                    "error_ratio": error,
                    "within_threshold": abs(error)
                    <= PLANNER_ERROR_THRESHOLD,
                }
            )
        return rows

    def analysis_report(self):
        """Planner-accuracy gate as an :class:`AnalysisReport`.

        One ``memory-planner-underestimate`` / ``-overestimate`` finding
        per engine+device whose prediction misses the measured peak by
        more than :data:`PLANNER_ERROR_THRESHOLD`, plus a
        ``memory-unreconciled`` finding per device whose event stream
        ever disagreed with ``Device.allocated_bytes``.
        """
        # Imported lazily: gpusim/obs must stay loadable without analysis.
        from repro.analysis.findings import AnalysisReport, Finding

        report = AnalysisReport(source="memory", checked=len(self._devices))
        for row in self.planner_accuracy():
            if row["within_threshold"]:
                continue
            error_pct = row["error_ratio"] * 100.0
            rule = (
                "memory-planner-underestimate"
                if row["error_ratio"] > 0
                else "memory-planner-overestimate"
            )
            consequence = (
                "the degradation ladder can admit a run that OOMs"
                if row["error_ratio"] > 0
                else "the degradation ladder forces needless fallbacks"
            )
            report.add(
                Finding(
                    rule=rule,
                    message=(
                        f"{row['source']} predicted "
                        f"{row['predicted_bytes']} B but the run peaked at "
                        f"{row['measured_peak_bytes']} B "
                        f"({error_pct:+.1f} %); {consequence}"
                    ),
                    location=f"{row['engine']}@gpu{row['device']}",
                )
            )
        for state in self._sorted_states():
            if state["mismatches"]:
                report.add(
                    Finding(
                        rule="memory-unreconciled",
                        message=(
                            f"{state['mismatches']} event(s) where tracked "
                            "live bytes disagreed with "
                            "Device.allocated_bytes"
                        ),
                        location=f"gpu{state['index']}",
                    )
                )
        return report

    # ------------------------------------------------------------------
    # Reports / snapshots
    # ------------------------------------------------------------------
    @property
    def reconciled(self) -> bool:
        """True while every tracked event matched the device's table."""
        return all(
            state["mismatches"] == 0 for state in self._devices.values()
        )

    def _sorted_states(self) -> List[dict]:
        return sorted(
            self._devices.values(),
            key=lambda state: (state["index"], state["spec"]),
        )

    def transfer_totals(self, device_index: int) -> Optional[dict]:
        """Journaled transfer totals shaped like ``transfer_summary()``."""
        for state in self._sorted_states():
            if state["index"] == device_index:
                return {
                    direction: {
                        "count": totals["count"],
                        "bytes": totals["bytes"],
                        "seconds": totals["seconds"],
                    }
                    for direction, totals in state["transfers"].items()
                }
        return None

    def device_report(self, state: dict) -> dict:
        return {
            "device": state["index"],
            "spec": state["spec"],
            "capacity_bytes": state["capacity_bytes"],
            "live_bytes": state["live_total"],
            "peak_bytes": state["peak_bytes"],
            "peak_ts": state["peak_ts"],
            "peak_fraction": (
                state["peak_bytes"] / state["capacity_bytes"]
                if state["capacity_bytes"]
                else 0.0
            ),
            "categories_at_peak": dict(state["categories_at_peak"]),
            "category_peaks": dict(state["category_peaks"]),
            "num_events": state["num_events"],
            "dropped_events": state["dropped_events"],
            "reconciled": state["mismatches"] == 0,
            "mismatches": state["mismatches"],
            "transfers": {
                direction: dict(totals)
                for direction, totals in state["transfers"].items()
            },
            "exchange_bytes": state["exchange_bytes"],
            "exchange_seconds": state["exchange_seconds"],
            "freed_all_bytes": state["freed_all_bytes"],
            "freed_all_calls": state["freed_all_calls"],
            "oom_count": state["oom_count"],
            "events": list(state["events"]),
        }

    def report(self) -> dict:
        """The full watermark report (see ``docs/observability.md``)."""
        return {
            "schema_version": MEMORY_SCHEMA_VERSION,
            "categories": list(CATEGORIES),
            "reconciled": self.reconciled,
            "devices": [
                self.device_report(state)
                for state in self._sorted_states()
            ],
            "planner": {
                "threshold": PLANNER_ERROR_THRESHOLD,
                "accuracy": self.planner_accuracy(),
            },
            "analysis": self.analysis_report().as_dict(),
        }

    def allocation_snapshot(self) -> dict:
        """The live allocation table, for flight-recorder bundles.

        Per-category aggregates plus the individual live handles (capped),
        taken from the devices' own tables — at OOM time this is exactly
        what was resident when the allocation failed.
        """
        devices = []
        for state in self._sorted_states():
            devices.append(
                {
                    "device": state["index"],
                    "capacity_bytes": state["capacity_bytes"],
                    "live_bytes": state["live_total"],
                    "peak_bytes": state["peak_bytes"],
                    "by_category": dict(sorted(state["live"].items())),
                    "oom_count": state["oom_count"],
                }
            )
        return {
            "schema_version": MEMORY_SCHEMA_VERSION,
            "reconciled": self.reconciled,
            "devices": devices,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")


@contextlib.contextmanager
def track(
    *, max_events_per_device: int = 8192
) -> Iterator[MemoryTracker]:
    """Scoped tracker install: restores the previous tracker on exit."""
    previous = hooks.memory()
    tracker = MemoryTracker(max_events_per_device=max_events_per_device)
    hooks.set_memory(tracker)
    try:
        yield tracker
    finally:
        hooks.set_memory(previous)


# ---------------------------------------------------------------------------
# Rendering


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return (
                f"{int(value)} {unit}"
                if unit == "B"
                else f"{value:.2f} {unit}"
            )
        value /= 1024.0
    return f"{n} B"


def render_memory_report(report: dict) -> str:
    """Human-readable rendering of a watermark report dict."""
    lines = ["device-memory watermark report"]
    lines.append(
        "reconciled: "
        + ("yes" if report.get("reconciled", False) else "NO")
    )
    for dev in report.get("devices", []):
        lines.append(
            f"gpu{dev['device']} ({dev.get('spec', '?')}): peak "
            f"{_fmt_bytes(dev['peak_bytes'])} of "
            f"{_fmt_bytes(dev['capacity_bytes'])} "
            f"({dev.get('peak_fraction', 0.0) * 100.0:.1f} %) at modeled "
            f"t={dev.get('peak_ts', 0.0):.6f} s, "
            f"{dev.get('num_events', 0)} event(s)"
        )
        for cat, nbytes in sorted(dev.get("category_peaks", {}).items()):
            at_peak = dev.get("categories_at_peak", {}).get(cat, 0)
            lines.append(
                f"  {cat:<13} peak {_fmt_bytes(nbytes):>12}   "
                f"at device peak {_fmt_bytes(at_peak)}"
            )
        transfers = dev.get("transfers", {})
        for direction in ("h2d", "d2h"):
            totals = transfers.get(direction)
            if totals:
                lines.append(
                    f"  {direction}: {totals['count']} transfer(s), "
                    f"{_fmt_bytes(totals['bytes'])} "
                    f"({totals.get('streamed_count', 0)} streamed, "
                    f"{_fmt_bytes(totals.get('streamed_bytes', 0))})"
                )
        if dev.get("exchange_bytes"):
            lines.append(
                f"  exchange: {_fmt_bytes(dev['exchange_bytes'])} in "
                f"{dev.get('exchange_seconds', 0.0):.6f} s"
            )
        if dev.get("freed_all_calls"):
            lines.append(
                f"  free_all: {dev['freed_all_calls']} sweep(s) released "
                f"{_fmt_bytes(dev['freed_all_bytes'])}"
            )
        if dev.get("oom_count"):
            lines.append(f"  OOM events: {dev['oom_count']}")
    accuracy = report.get("planner", {}).get("accuracy", [])
    if accuracy:
        lines.append("planner accuracy (device_footprint vs measured peak):")
        for row in accuracy:
            flag = "ok" if row.get("within_threshold") else "MISS"
            lines.append(
                f"  {row['engine']}@gpu{row['device']} "
                f"[{row.get('source', 'device_footprint')}]: predicted "
                f"{_fmt_bytes(row['predicted_bytes'])}, measured "
                f"{_fmt_bytes(row['measured_peak_bytes'])} "
                f"({row['error_ratio'] * 100.0:+.1f} %) {flag}"
            )
    analysis = report.get("analysis", {})
    findings = analysis.get("findings", [])
    if findings:
        lines.append(f"findings ({len(findings)}):")
        for finding in findings:
            lines.append(
                f"  [{finding['severity']}] {finding['rule']}: "
                f"{finding['location']}: {finding['message']}"
            )
    else:
        lines.append("findings: none")
    return "\n".join(lines)
