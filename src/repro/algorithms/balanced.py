"""Balanced label propagation (Ugander & Backstrom, 2013).

The paper cites balanced LP [34] as one of the LP variants data engineers
deploy: partition a graph into ``k`` near-equal parts while keeping
neighbors together (used for sharding massive graphs before distributed
processing).  Vertices still adopt popular neighbor labels, but a label
(= partition) that has grown past its capacity is penalized, steering the
fixpoint toward balanced partitions.

Score: ``freq - penalty * overflow(l)`` where
``overflow(l) = max(0, size(l) - capacity) / capacity``.  The penalty term
depends only on the label, so the score stays monotone in ``freq`` — the
property the CMS pruning requires.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import LPProgram
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


class BalancedLP(LPProgram):
    """Partitioning LP with soft balance constraints.

    Parameters
    ----------
    num_partitions:
        Number of target partitions ``k``.
    penalty:
        Score penalty per unit of relative overflow.  Larger values trade
        edge locality for tighter balance.
    slack:
        Allowed capacity slack: capacity = ``(1 + slack) * n / k``.
    """

    def __init__(
        self,
        num_partitions: int,
        *,
        penalty: float = 4.0,
        slack: float = 0.05,
    ) -> None:
        if num_partitions <= 0:
            raise ProgramError("num_partitions must be positive")
        if penalty < 0:
            raise ProgramError("penalty must be non-negative")
        if slack < 0:
            raise ProgramError("slack must be non-negative")
        self.num_partitions = num_partitions
        self.penalty = penalty
        self.slack = slack
        self.name = f"balanced-lp(k={num_partitions})"
        self._sizes: np.ndarray = np.empty(0, dtype=np.int64)
        self._capacity: float = 1.0

    def init_labels(self, graph: CSRGraph) -> np.ndarray:
        # Round-robin initial assignment: balanced from the start.
        return (
            np.arange(graph.num_vertices, dtype=LABEL_DTYPE)
            % self.num_partitions
        )

    def init_state(self, graph: CSRGraph, labels: np.ndarray) -> None:
        if graph.num_vertices < self.num_partitions:
            raise ProgramError(
                "more partitions than vertices: "
                f"{self.num_partitions} > {graph.num_vertices}"
            )
        self._capacity = max(
            1.0, (1.0 + self.slack) * graph.num_vertices / self.num_partitions
        )
        self._sizes = np.bincount(labels, minlength=self.num_partitions)

    def score(self, vertex_ids, labels, frequencies):
        overflow = np.maximum(
            0.0, self._sizes[labels] - self._capacity
        ) / self._capacity
        return (frequencies - self.penalty * overflow).astype(
            WEIGHT_DTYPE, copy=False
        )

    def on_iteration_end(self, graph, old_labels, new_labels, iteration):
        self._sizes = np.bincount(
            new_labels, minlength=self.num_partitions
        )

    # ------------------------------------------------------------------
    @property
    def partition_sizes(self) -> np.ndarray:
        """Current per-partition vertex counts."""
        return self._sizes

    def imbalance(self) -> float:
        """``max_size / ideal_size`` (1.0 = perfectly balanced)."""
        if self._sizes.size == 0 or self._sizes.sum() == 0:
            return 1.0
        ideal = self._sizes.sum() / self.num_partitions
        return float(self._sizes.max() / ideal)

    def edge_cut_fraction(
        self, graph: CSRGraph, labels: np.ndarray
    ) -> float:
        """Fraction of edges crossing partition boundaries."""
        if graph.num_edges == 0:
            return 0.0
        sources = graph.edge_sources()
        crossing = labels[sources] != labels[graph.indices]
        return float(crossing.mean())
