"""Layered label propagation (Boldi, Rosa, Santini & Vigna, 2011).

Classic LP tends to collapse into a few giant communities.  LLP penalizes a
label by the *global* number of vertices currently holding it: for each
candidate label ``l`` with ``k`` occurrences among the neighbors and ``v``
vertices holding it graph-wide, the score is

``val = k - gamma * (v - k)``

Larger ``gamma`` means stronger resistance to popular labels, hence finer
communities.  The paper's evaluation sweeps ``gamma = 2**i, i = 0..9`` and
runs 20 iterations per value (Section 5.1).

Implementation note: the score rewrites to ``k * (1 + gamma) - gamma * v``,
which is monotone non-decreasing in ``k`` for fixed ``(vertex, label)`` —
the property the CMS pruning requires — since ``v`` depends only on the
label.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import LPProgram
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.types import WEIGHT_DTYPE


class LayeredLP(LPProgram):
    """LLP with density parameter ``gamma``."""

    def __init__(self, gamma: float = 1.0) -> None:
        if gamma < 0:
            raise ProgramError(f"gamma must be non-negative, got {gamma}")
        self.gamma = float(gamma)
        self.name = f"llp(gamma={gamma:g})"
        self._volumes: np.ndarray = np.empty(0, dtype=np.int64)

    def init_state(self, graph: CSRGraph, labels: np.ndarray) -> None:
        # Labels live in the vertex-id space, so a dense volume array works.
        self._volumes = np.bincount(labels, minlength=graph.num_vertices)

    def score(self, vertex_ids, labels, frequencies):
        volumes = self._volumes[labels]
        return (
            frequencies * (1.0 + self.gamma) - self.gamma * volumes
        ).astype(WEIGHT_DTYPE, copy=False)

    def on_iteration_end(self, graph, old_labels, new_labels, iteration):
        self._volumes = np.bincount(new_labels, minlength=graph.num_vertices)

    @property
    def label_volumes(self) -> np.ndarray:
        """Current per-label vertex counts (``v`` in the LLP formula)."""
        return self._volumes
