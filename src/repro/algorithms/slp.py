"""Speaker-listener label propagation (SLPA; Xie, Szymanski & Liu, 2011).

SLPA discovers *overlapping* communities: every vertex keeps a bounded
memory of candidate labels with occurrence counts.  Each iteration:

1. **Speak** (*PickLabel*): every vertex samples one label from its memory,
   with probability proportional to the stored counts.
2. **Listen** (*LabelPropagation* + *UpdateVertex*): every vertex takes the
   most frequent spoken label among its neighbors and adds it to its
   memory.
3. **Prune**: labels whose in-memory share falls below a threshold are
   dropped (the paper caps each vertex at 5 candidate labels).

The run never "converges" in the classic sense; it executes a fixed
iteration budget (20 in Section 5.1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.api import LPProgram
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.types import LABEL_DTYPE, NO_LABEL


class SpeakerListenerLP(LPProgram):
    """SLPA with bounded per-vertex label memory.

    Parameters
    ----------
    max_labels:
        Memory slots per vertex (paper: 5).
    prune_threshold:
        Minimum share of a vertex's memory mass a label needs to survive
        the end-of-iteration pruning.
    seed:
        Seed of the speaking rule's random choices.
    """

    def __init__(
        self,
        max_labels: int = 5,
        prune_threshold: float = 0.1,
        seed: int = 0,
    ) -> None:
        if max_labels <= 0:
            raise ProgramError("max_labels must be positive")
        if not 0.0 <= prune_threshold < 1.0:
            raise ProgramError("prune_threshold must be in [0, 1)")
        self.max_labels = max_labels
        self.prune_threshold = prune_threshold
        self.name = f"slp(max={max_labels})"
        self._rng = np.random.default_rng(seed)
        self._mem_labels: np.ndarray = np.empty((0, 0), dtype=LABEL_DTYPE)
        self._mem_counts: np.ndarray = np.empty((0, 0), dtype=np.float64)

    # ------------------------------------------------------------------
    def init_state(self, graph: CSRGraph, labels: np.ndarray) -> None:
        n = graph.num_vertices
        self._mem_labels = np.full((n, self.max_labels), NO_LABEL, dtype=LABEL_DTYPE)
        self._mem_counts = np.zeros((n, self.max_labels), dtype=np.float64)
        self._mem_labels[:, 0] = labels
        self._mem_counts[:, 0] = 1.0

    def pick_labels(self, graph, labels, iteration):
        """Speak: sample one label per vertex ∝ memory counts."""
        totals = self._mem_counts.sum(axis=1, keepdims=True)
        probs = np.divide(
            self._mem_counts,
            totals,
            out=np.zeros_like(self._mem_counts),
            where=totals > 0,
        )
        cumulative = np.cumsum(probs, axis=1)
        draws = self._rng.random((labels.size, 1))
        slots = (draws > cumulative).sum(axis=1)
        slots = np.minimum(slots, self.max_labels - 1)
        spoken = self._mem_labels[np.arange(labels.size), slots]
        # Vertices with empty memory (possible after pruning) speak their
        # original id.
        empty = spoken == NO_LABEL
        spoken = spoken.copy()
        spoken[empty] = np.arange(labels.size, dtype=LABEL_DTYPE)[empty]
        return spoken.astype(LABEL_DTYPE, copy=False)

    def update_vertices(self, vertex_ids, best_labels, best_scores, current_labels):
        """Listen: add each vertex's heard MFL to its memory."""
        heard = super().update_vertices(
            vertex_ids, best_labels, best_scores, current_labels
        )
        valid = np.isfinite(best_scores)
        self._listen(
            vertex_ids[valid],
            best_labels[valid].astype(LABEL_DTYPE, copy=False),
        )
        return heard

    def _listen(self, vertices: np.ndarray, labels: np.ndarray) -> None:
        mem_labels = self._mem_labels
        mem_counts = self._mem_counts
        # Increment where the label is already in memory.
        matches = mem_labels[vertices] == labels[:, None]
        has_match = matches.any(axis=1)
        match_slot = matches.argmax(axis=1)
        hit_v = vertices[has_match]
        mem_counts[hit_v, match_slot[has_match]] += 1.0

        # Insert into a free slot, else replace the weakest entry.
        miss_v = vertices[~has_match]
        miss_l = labels[~has_match]
        if miss_v.size:
            free = mem_labels[miss_v] == NO_LABEL
            has_free = free.any(axis=1)
            free_slot = free.argmax(axis=1)
            insert_v = miss_v[has_free]
            mem_labels[insert_v, free_slot[has_free]] = miss_l[has_free]
            mem_counts[insert_v, free_slot[has_free]] = 1.0

            evict_v = miss_v[~has_free]
            if evict_v.size:
                weakest = mem_counts[evict_v].argmin(axis=1)
                mem_labels[evict_v, weakest] = miss_l[~has_free]
                mem_counts[evict_v, weakest] = 1.0

    def on_iteration_end(self, graph, old_labels, new_labels, iteration):
        """Prune labels below the memory-share threshold."""
        totals = self._mem_counts.sum(axis=1, keepdims=True)
        share = np.divide(
            self._mem_counts,
            totals,
            out=np.zeros_like(self._mem_counts),
            where=totals > 0,
        )
        prune = (share < self.prune_threshold) & (self._mem_labels != NO_LABEL)
        # Never prune a vertex's strongest label.
        strongest = self._mem_counts.argmax(axis=1)
        prune[np.arange(prune.shape[0]), strongest] = False
        self._mem_labels[prune] = NO_LABEL
        self._mem_counts[prune] = 0.0

    def converged(self, old_labels, new_labels, iteration):
        return False  # SLPA runs its fixed budget

    def final_labels(self, labels):
        """Dominant memory label per vertex."""
        strongest = self._mem_counts.argmax(axis=1)
        dominant = self._mem_labels[
            np.arange(self._mem_labels.shape[0]), strongest
        ]
        missing = dominant == NO_LABEL
        dominant = dominant.copy()
        dominant[missing] = labels[missing]
        return dominant.astype(LABEL_DTYPE, copy=False)

    # ------------------------------------------------------------------
    def overlapping_communities(self) -> Dict[int, List[int]]:
        """All (label → member vertices) pairs above the prune threshold.

        A vertex may appear under several labels — SLPA's overlapping
        output.
        """
        result: Dict[int, List[int]] = {}
        totals = self._mem_counts.sum(axis=1)
        for v in range(self._mem_labels.shape[0]):
            if totals[v] <= 0:
                continue
            for slot in range(self.max_labels):
                label = int(self._mem_labels[v, slot])
                if label == NO_LABEL:
                    continue
                if self._mem_counts[v, slot] / totals[v] >= self.prune_threshold:
                    result.setdefault(label, []).append(v)
        return result

    @property
    def memory(self):
        """Read-only view of (labels, counts) memories (for tests)."""
        return self._mem_labels, self._mem_counts
