"""Classic label propagation (Raghavan, Albert & Kumara, 2007).

Every vertex starts with a unique label; each iteration it adopts the most
frequent label among its in-neighbors (ties broken toward the smaller label
id for determinism across engines).  Terminates when no label changes or the
iteration budget runs out.

This is exactly the default behaviour of :class:`~repro.core.api.LPProgram`;
the subclass exists to carry the name and to document the semantics.
"""

from __future__ import annotations

from repro.core.api import LPProgram


class ClassicLP(LPProgram):
    """The classic LP algorithm (Section 2.1 of the paper)."""

    name = "classic-lp"
    # A vertex's MFL depends only on its neighbors' labels, so frontier
    # engines may skip vertices with unchanged neighborhoods.
    frontier_safe = True
