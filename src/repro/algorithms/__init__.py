"""LP algorithm variants implemented on the GLP API.

* :class:`~repro.algorithms.classic.ClassicLP` — Raghavan et al. [28].
* :class:`~repro.algorithms.llp.LayeredLP` — Boldi et al. [7], the
  ``gamma``-parameterized variant that resists giant communities.
* :class:`~repro.algorithms.slp.SpeakerListenerLP` — SLPA [38], overlapping
  communities with bounded per-vertex label memory.
* :class:`~repro.algorithms.seeded.SeededFraudLP` — propagation from
  black-listed seed vertices (the TaoBao pipeline's workload).
* :class:`~repro.algorithms.labelrank.LabelRankLP` — LabelRank [40]
  (stabilized LP), implemented as an extension variant.
* :class:`~repro.algorithms.balanced.BalancedLP` — balanced LP [34]
  (graph partitioning with capacity constraints), extension variant.
"""

from repro.algorithms.classic import ClassicLP
from repro.algorithms.llp import LayeredLP
from repro.algorithms.slp import SpeakerListenerLP
from repro.algorithms.seeded import SeededFraudLP
from repro.algorithms.labelrank import LabelRankLP
from repro.algorithms.balanced import BalancedLP

__all__ = [
    "ClassicLP",
    "LayeredLP",
    "SpeakerListenerLP",
    "SeededFraudLP",
    "LabelRankLP",
    "BalancedLP",
]
