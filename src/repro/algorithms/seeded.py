"""Seeded label propagation for fraud detection.

The TaoBao pipeline (Figure 1) does not run community detection from
scratch: it propagates labels *from known black-listed seed vertices* to
"identify suspicious clusters from known black-listed users".  This program
implements that workload:

* seeds start with their fraud-cluster label; everyone else is unlabeled;
* unlabeled neighbors contribute nothing to MFL counting;
* seed vertices never change their label;
* propagation can be bounded to ``max_hops`` so a cluster stays local to
  its seeds (fraud rings are small).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.api import LPProgram
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.types import LABEL_DTYPE, NO_LABEL, WEIGHT_DTYPE


class SeededFraudLP(LPProgram):
    """Propagate fraud labels from seed vertices.

    Parameters
    ----------
    seeds:
        Mapping of ``vertex -> cluster label``.  Labels must be >= 0.
    max_hops:
        Optional bound on propagation depth (``None`` = unbounded).
    """

    def __init__(
        self, seeds: Dict[int, int], *, max_hops: Optional[int] = None
    ) -> None:
        if not seeds:
            raise ProgramError("at least one seed is required")
        if any(label < 0 for label in seeds.values()):
            raise ProgramError("seed labels must be non-negative")
        if max_hops is not None and max_hops <= 0:
            raise ProgramError("max_hops must be positive when given")
        self.seeds = dict(seeds)
        self.max_hops = max_hops
        self.name = f"seeded-lp({len(seeds)} seeds)"
        # A vertex's update depends only on its neighbors' labels (seed
        # pinning is per-vertex; max_hops only bounds the iteration count),
        # so frontier engines may sparsify.
        self.frontier_safe = True
        self._seed_vertices: np.ndarray = np.empty(0, dtype=np.int64)
        self._seed_labels: np.ndarray = np.empty(0, dtype=LABEL_DTYPE)

    def init_labels(self, graph: CSRGraph) -> np.ndarray:
        labels = np.full(graph.num_vertices, NO_LABEL, dtype=LABEL_DTYPE)
        self._seed_vertices = np.fromiter(
            self.seeds.keys(), dtype=np.int64, count=len(self.seeds)
        )
        if self._seed_vertices.size and (
            self._seed_vertices.min() < 0
            or self._seed_vertices.max() >= graph.num_vertices
        ):
            raise ProgramError("seed vertex ids out of range")
        self._seed_labels = np.fromiter(
            self.seeds.values(), dtype=LABEL_DTYPE, count=len(self.seeds)
        )
        labels[self._seed_vertices] = self._seed_labels
        return labels

    def load_neighbor(self, vertex_ids, neighbor_ids, neighbor_labels, edge_weights):
        """Unlabeled neighbors contribute zero frequency."""
        freqs = np.where(neighbor_labels == NO_LABEL, 0.0, edge_weights)
        # Map NO_LABEL to a harmless concrete label: zero frequency already
        # removes it from contention, but the label value must be valid for
        # grouping and the sketches.
        labels = np.where(neighbor_labels == NO_LABEL, 0, neighbor_labels)
        return labels.astype(LABEL_DTYPE, copy=False), freqs.astype(
            WEIGHT_DTYPE, copy=False
        )

    def update_vertices(self, vertex_ids, best_labels, best_scores, current_labels):
        """Adopt the MFL only when it carries positive evidence; pin seeds."""
        result = current_labels.copy()
        adopt = np.isfinite(best_scores) & (best_scores > 0)
        result[vertex_ids[adopt]] = best_labels[adopt]
        result[self._seed_vertices] = self._seed_labels
        return result

    def pinned_vertices(self, graph: CSRGraph) -> np.ndarray:
        """Seeds are pinned: their update is a no-op by construction.

        Frontier engines prune them from sparse passes — crucial on warm
        windows, where carried hub-product seeds would otherwise stream
        their whole neighbor lists every iteration for nothing.
        """
        return np.unique(self._seed_vertices)

    def converged(self, old_labels, new_labels, iteration):
        if self.max_hops is not None and iteration >= self.max_hops:
            return True
        return bool(np.array_equal(old_labels, new_labels))

    # ------------------------------------------------------------------
    def clusters(self, labels: np.ndarray) -> Dict[int, np.ndarray]:
        """Group labeled vertices by cluster: ``{cluster: vertex_ids}``."""
        labeled = np.flatnonzero(labels != NO_LABEL)
        result: Dict[int, np.ndarray] = {}
        for cluster in np.unique(labels[labeled]):
            result[int(cluster)] = labeled[labels[labeled] == cluster]
        return result
