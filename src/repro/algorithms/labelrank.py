"""LabelRank-style stabilized label propagation (Xie & Szymanski, 2013).

Classic LP's hard label switches make it unstable: a vertex can oscillate
between two equally frequent labels forever.  LabelRank keeps a *soft*
distribution over candidate labels per vertex and updates it with three
operators — propagation (average neighbor distributions), inflation (raise
to a power and renormalize, sharpening the winner) and cutoff (drop
negligible labels).

Implemented here with bounded per-vertex storage (``max_labels`` slots) so
device memory stays linear.  Listed as an *extension* variant in DESIGN.md:
it demonstrates that the GLP hook API covers soft-labeling algorithms, not
just the three variants the paper evaluates.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import LPProgram
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.types import LABEL_DTYPE, NO_LABEL


class LabelRankLP(LPProgram):
    """LabelRank with bounded label distributions.

    Parameters
    ----------
    inflation:
        Exponent of the inflation operator (> 1 sharpens distributions).
    cutoff:
        Probability below which a label is dropped from a vertex's
        distribution.
    max_labels:
        Distribution slots per vertex.
    """

    def __init__(
        self,
        inflation: float = 1.5,
        cutoff: float = 0.05,
        max_labels: int = 4,
    ) -> None:
        if inflation < 1.0:
            raise ProgramError("inflation must be >= 1")
        if not 0.0 <= cutoff < 1.0:
            raise ProgramError("cutoff must be in [0, 1)")
        if max_labels <= 0:
            raise ProgramError("max_labels must be positive")
        self.inflation = inflation
        self.cutoff = cutoff
        self.max_labels = max_labels
        self.name = f"labelrank(inf={inflation:g})"
        self._dist_labels: np.ndarray = np.empty((0, 0), dtype=LABEL_DTYPE)
        self._dist_probs: np.ndarray = np.empty((0, 0), dtype=np.float64)

    def init_state(self, graph: CSRGraph, labels: np.ndarray) -> None:
        n = graph.num_vertices
        self._dist_labels = np.full(
            (n, self.max_labels), NO_LABEL, dtype=LABEL_DTYPE
        )
        self._dist_probs = np.zeros((n, self.max_labels), dtype=np.float64)
        self._dist_labels[:, 0] = labels
        self._dist_probs[:, 0] = 1.0

    def pick_labels(self, graph, labels, iteration):
        """Expose each vertex's current strongest label."""
        strongest = self._dist_probs.argmax(axis=1)
        picked = self._dist_labels[
            np.arange(self._dist_labels.shape[0]), strongest
        ]
        missing = picked == NO_LABEL
        picked = picked.copy()
        picked[missing] = labels[missing]
        return picked.astype(LABEL_DTYPE, copy=False)

    def update_vertices(self, vertex_ids, best_labels, best_scores, current_labels):
        heard = super().update_vertices(
            vertex_ids, best_labels, best_scores, current_labels
        )
        valid = np.isfinite(best_scores)
        self._mix(
            vertex_ids[valid],
            best_labels[valid].astype(LABEL_DTYPE, copy=False),
        )
        return heard

    def _mix(self, vertices: np.ndarray, labels: np.ndarray) -> None:
        """Propagation + inflation + cutoff for the heard labels."""
        dist_l = self._dist_labels
        dist_p = self._dist_probs

        matches = dist_l[vertices] == labels[:, None]
        has_match = matches.any(axis=1)
        slot = matches.argmax(axis=1)
        hit_v = vertices[has_match]
        dist_p[hit_v, slot[has_match]] += 1.0

        miss_v = vertices[~has_match]
        miss_l = labels[~has_match]
        if miss_v.size:
            weakest = dist_p[miss_v].argmin(axis=1)
            dist_l[miss_v, weakest] = miss_l
            dist_p[miss_v, weakest] = 1.0

        # Inflation and renormalization over the touched rows.
        rows = np.unique(vertices)
        inflated = dist_p[rows] ** self.inflation
        totals = inflated.sum(axis=1, keepdims=True)
        normalized = np.divide(
            inflated, totals, out=np.zeros_like(inflated), where=totals > 0
        )
        # Cutoff: drop negligible labels (but keep each row's strongest).
        strongest = normalized.argmax(axis=1)
        drop = normalized < self.cutoff
        drop[np.arange(rows.size), strongest] = False
        normalized[drop] = 0.0
        labels_block = dist_l[rows]
        labels_block[drop] = NO_LABEL
        dist_l[rows] = labels_block
        dist_p[rows] = normalized

    def converged(self, old_labels, new_labels, iteration):
        return bool(np.array_equal(old_labels, new_labels)) and iteration > 1

    def final_labels(self, labels):
        strongest = self._dist_probs.argmax(axis=1)
        dominant = self._dist_labels[
            np.arange(self._dist_labels.shape[0]), strongest
        ]
        missing = dominant == NO_LABEL
        dominant = dominant.copy()
        dominant[missing] = labels[missing]
        return dominant.astype(LABEL_DTYPE, copy=False)
