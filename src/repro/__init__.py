"""GLP reproduction: GPU-accelerated graph label propagation on a simulated GPU.

Reproduction of *"GPU-Accelerated Graph Label Propagation for Real-Time
Fraud Detection"* (Ye, Li, He, Li & Sun, SIGMOD 2021).  The paper's Titan V
is replaced by :mod:`repro.gpusim`, a functional + analytical GPU simulator;
everything above it — the GLP framework, the CMS+HT and warp-centric MFL
kernels, the LP variants, the baselines and the TaoBao-style fraud
pipeline — is implemented faithfully to the paper.

Quickstart::

    from repro import ClassicLP, GLPEngine
    from repro.graph.generators import planted_partition_graph

    graph, truth = planted_partition_graph(1000, 20, 8.0, 0.9)
    result = GLPEngine().run(graph, ClassicLP(), max_iterations=20)
    print(result.community_sizes()[:5], result.total_seconds)
"""

from repro.algorithms import (
    ClassicLP,
    LabelRankLP,
    LayeredLP,
    SeededFraudLP,
    SpeakerListenerLP,
)
from repro.core import GLPEngine, LPProgram, LPResult
from repro.graph import CSRGraph, GraphBuilder
from repro.gpusim import Device, DeviceSpec, TITAN_V

__version__ = "1.0.0"

__all__ = [
    "ClassicLP",
    "LayeredLP",
    "SpeakerListenerLP",
    "SeededFraudLP",
    "LabelRankLP",
    "GLPEngine",
    "LPProgram",
    "LPResult",
    "CSRGraph",
    "GraphBuilder",
    "Device",
    "DeviceSpec",
    "TITAN_V",
    "__version__",
]
