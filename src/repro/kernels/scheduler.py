"""Degree-based vertex scheduling.

GLP dispatches vertices to different kernels by degree (Section 5.3's
experimental thresholds):

* **low** — degree < 32: one-warp-multi-vertices (Section 4.2),
* **mid** — 32 <= degree <= 128: one warp per vertex,
* **high** — degree > 128: one block per vertex with CMS+HT (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeBins:
    """Vertex id arrays per degree class (each sorted ascending)."""

    low: np.ndarray
    mid: np.ndarray
    high: np.ndarray
    low_threshold: int
    high_threshold: int

    @property
    def total(self) -> int:
        return int(self.low.size + self.mid.size + self.high.size)

    def summary(self) -> dict:
        """Bin sizes for reports."""
        return {
            "low": int(self.low.size),
            "mid": int(self.mid.size),
            "high": int(self.high.size),
        }


def bin_vertices_by_degree(
    graph: CSRGraph,
    *,
    low_threshold: int = 32,
    high_threshold: int = 128,
    vertices: np.ndarray = None,
) -> DegreeBins:
    """Split vertices into low/mid/high degree classes.

    ``vertices`` restricts binning to a subset (hybrid mode partitions);
    defaults to all vertices.  Isolated vertices (degree 0) land in ``low``
    — they are no-ops for every kernel.
    """
    if low_threshold <= 0 or high_threshold < low_threshold:
        raise KernelError(
            f"thresholds must satisfy 0 < low <= high; got "
            f"{low_threshold}, {high_threshold}"
        )
    if vertices is None:
        degrees = graph.degrees
        ids = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        ids = np.sort(np.asarray(vertices, dtype=np.int64))
        degrees = graph.degrees[ids]
    low_mask = degrees < low_threshold
    high_mask = degrees > high_threshold
    mid_mask = ~(low_mask | high_mask)
    return DegreeBins(
        low=ids[low_mask],
        mid=ids[mid_mask],
        high=ids[high_mask],
        low_threshold=low_threshold,
        high_threshold=high_threshold,
    )
