"""Shared kernel-strategy plumbing: context, config and access accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.api import LPProgram
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.kernels.mfl import EdgeBatch

#: Bytes per vertex id / label / offset on the device.
ELEM_BYTES = 8

#: Shift separating warp-id from step-id when composing warp-step keys.
_STEP_SHIFT = np.int64(24)


@dataclass(frozen=True)
class StrategyConfig:
    """Kernel-strategy selection and tuning knobs.

    The defaults are the full GLP configuration; the ablation experiment
    (Table 3) swaps individual strategies back to the baseline.
    """

    #: High-degree strategy: "smem" (CMS+HT) or "global" (global hash).
    high_strategy: str = "smem"
    #: Mid-degree strategy: "shared_ht" (warp + shared HT) or "global".
    mid_strategy: str = "shared_ht"
    #: Low-degree strategy: "warp_multi", "warp_per_vertex" or
    #: "thread_per_vertex".
    low_strategy: str = "warp_multi"
    #: Degree below which a vertex is "low degree" (paper: 32).
    low_threshold: int = 32
    #: Degree above which a vertex is "high degree" (paper: 128).
    high_threshold: int = 128
    #: Shared-memory hash-table slots per block (``h`` in Lemma 1).
    ht_capacity: int = 512
    #: CMS rows (``d`` in Lemma 2).
    cms_depth: int = 4
    #: CMS buckets per row (``w``).
    cms_width: int = 512
    #: Threads per block for the high-degree kernel.
    block_size: int = 256

    def __post_init__(self) -> None:
        if self.high_strategy not in ("smem", "global"):
            raise KernelError(f"unknown high_strategy {self.high_strategy!r}")
        if self.mid_strategy not in ("shared_ht", "global"):
            raise KernelError(f"unknown mid_strategy {self.mid_strategy!r}")
        if self.low_strategy not in (
            "warp_multi",
            "warp_per_vertex",
            "thread_per_vertex",
        ):
            raise KernelError(f"unknown low_strategy {self.low_strategy!r}")
        if self.ht_capacity <= 0 or self.cms_depth <= 0 or self.cms_width <= 0:
            raise KernelError("sketch dimensions must be positive")
        if self.block_size <= 0 or self.block_size % 32:
            raise KernelError("block_size must be a positive multiple of 32")


#: Table 3's ``global`` baseline: everything through the global hash table.
GLOBAL_BASELINE = StrategyConfig(
    high_strategy="global", mid_strategy="global", low_strategy="warp_per_vertex"
)

#: Table 3's ``smem`` row: only the high-degree kernel upgraded.
SMEM_ONLY = StrategyConfig(
    high_strategy="smem", mid_strategy="global", low_strategy="warp_per_vertex"
)

#: Table 3's ``smem+warp`` row: both paper optimizations active.
SMEM_WARP = StrategyConfig(
    high_strategy="smem", mid_strategy="global", low_strategy="warp_multi"
)

#: The full GLP configuration (also upgrades mid-degree vertices).
GLP_DEFAULT = StrategyConfig()


@dataclass
class KernelContext:
    """Everything a strategy kernel needs for one LabelPropagation pass."""

    device: Device
    graph: CSRGraph
    current_labels: np.ndarray
    program: LPProgram
    config: StrategyConfig = field(default_factory=lambda: GLP_DEFAULT)
    #: Per-pass kernel statistics (e.g. the CMS+HT kernel records how many
    #: high-degree vertices needed the global-memory fallback — the
    #: quantity Theorem 1 bounds).
    stats: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Warp-step maps: which (warp, issue-step) each edge access belongs to.
# Two accesses coalesce only when they happen in the same warp on the same
# step, so these maps are what turn a strategy's schedule into transactions.
# ----------------------------------------------------------------------
def warp_steps_one_warp_per_vertex(
    graph: CSRGraph, batch: EdgeBatch, warp_size: int = 32
) -> np.ndarray:
    """Warp-step keys when one warp strides over each vertex's list.

    Edge ``e`` of vertex ``v`` is handled by lane ``within % 32`` on step
    ``within // 32``; all lanes of a step belong to vertex ``v``'s warp.
    """
    within = batch.edge_positions - graph.offsets[batch.vertex_ids]
    steps = within // warp_size
    return (batch.vertex_ids.astype(np.int64) << _STEP_SHIFT) | steps


def warp_steps_one_thread_per_vertex(
    graph: CSRGraph, batch: EdgeBatch, warp_size: int = 32
) -> np.ndarray:
    """Warp-step keys when each thread walks one vertex's list.

    Thread ``v`` sits in warp ``v // 32``; on step ``k`` the warp's lanes
    access the ``k``-th neighbor of 32 *different* vertices — the classic
    uncoalesced pattern the paper criticizes.
    """
    within = batch.edge_positions - graph.offsets[batch.vertex_ids]
    warps = batch.vertex_ids.astype(np.int64) // warp_size
    return (warps << _STEP_SHIFT) | within


def warp_steps_block_per_vertex(
    graph: CSRGraph, batch: EdgeBatch, block_size: int, warp_size: int = 32
) -> np.ndarray:
    """Warp-step keys when a block of ``block_size`` threads strides a list."""
    within = batch.edge_positions - graph.offsets[batch.vertex_ids]
    lane_slot = within % block_size
    step = within // block_size
    warp_in_block = lane_slot // warp_size
    key = (
        (batch.vertex_ids.astype(np.int64) << _STEP_SHIFT)
        | (step * (block_size // warp_size) + warp_in_block)
    )
    return key


def account_common_reads(
    ctx: KernelContext,
    batch: EdgeBatch,
    label_warp_steps: Optional[np.ndarray],
    *,
    neighbor_ids_scattered: bool = False,
) -> None:
    """Account the reads every counting strategy performs.

    * the two CSR offsets per processed vertex (near-coalesced),
    * the neighbor-id reads — contiguous segment streams when a warp/block
      walks one list together, but *scattered* when each lane walks its own
      list (``neighbor_ids_scattered=True``, the one-thread-one-vertex
      pattern the paper criticizes), and
    * the per-edge label gather — the access whose coalescing behaviour
      differs between strategies, hence the caller-provided warp-step map.
    """
    device = ctx.device
    graph = ctx.graph
    vertices = batch.vertices
    if vertices.size:
        device.memory.load_gather(vertices, ELEM_BYTES, array="csr-offsets")
        if not neighbor_ids_scattered:
            device.memory.load_segments(
                graph.offsets[vertices],
                graph.degrees[vertices],
                ELEM_BYTES,
                array="neighbor-ids",
            )
    if batch.num_edges:
        if neighbor_ids_scattered:
            device.memory.load_gather(
                batch.edge_positions,
                ELEM_BYTES,
                warp_ids=label_warp_steps,
                array="neighbor-ids",
            )
        device.memory.load_gather(
            batch.neighbor_ids,
            ELEM_BYTES,
            warp_ids=label_warp_steps,
            array="labels",
        )


def account_label_writeback(ctx: KernelContext, num_vertices: int) -> None:
    """Account the coalesced store of the per-vertex winning labels."""
    if num_vertices:
        ctx.device.memory.store_sequential(
            num_vertices, ELEM_BYTES, array="best-labels"
        )
