"""Vectorized building blocks shared by every MFL kernel.

All strategies ultimately need the same functional pieces — expand a vertex
subset into its edge list, aggregate per-(vertex, label) frequencies through
the program's ``load_neighbor`` hook, and select the best-scoring label per
vertex — while differing only in *how the hardware would execute it* (which
the per-strategy modules account).  Centralizing the functional path
guarantees every strategy computes identical labels, which the differential
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.api import LPProgram
from repro.graph.csr import CSRGraph
from repro.types import LABEL_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE

#: Score assigned to vertices with no incoming edges ("keep your label").
NO_SCORE = -np.inf


@dataclass(frozen=True)
class EdgeBatch:
    """The expanded edge list of a vertex subset.

    Attributes
    ----------
    vertices:
        The vertex subset, in the order their edges appear.
    vertex_ids:
        Per-edge destination vertex (repeats of ``vertices``).
    neighbor_ids:
        Per-edge source (in-neighbor) vertex.
    edge_positions:
        Global CSR edge slot of each edge — the *addresses* the memory
        model needs.
    edge_weights:
        Per-edge weight (ones when the graph is unweighted).
    """

    vertices: np.ndarray
    vertex_ids: np.ndarray
    neighbor_ids: np.ndarray
    edge_positions: np.ndarray
    edge_weights: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.vertex_ids.size)


def expand_edges(
    graph: CSRGraph, vertices: Optional[np.ndarray] = None
) -> EdgeBatch:
    """Expand ``vertices``' neighbor lists into flat per-edge arrays.

    ``vertices=None`` expands the whole graph in CSR order without copies.
    """
    if vertices is None:
        vertices = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
        positions = np.arange(graph.num_edges, dtype=VERTEX_DTYPE)
        vertex_ids = graph.edge_sources()
        neighbor_ids = graph.indices
    else:
        vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
        lengths = graph.degrees[vertices]
        total = int(lengths.sum())
        starts = graph.offsets[vertices]
        # positions[j] = starts[seg(j)] + rank-within-segment(j)
        seg_ends = np.cumsum(lengths)
        seg_ids = np.repeat(
            np.arange(vertices.size, dtype=VERTEX_DTYPE), lengths
        )
        within = (
            np.arange(total, dtype=VERTEX_DTYPE)
            - np.concatenate(([0], seg_ends[:-1]))[seg_ids]
        )
        positions = starts[seg_ids] + within
        vertex_ids = vertices[seg_ids]
        neighbor_ids = graph.indices[positions]
    if graph.weights is None:
        weights = np.ones(positions.size, dtype=WEIGHT_DTYPE)
    else:
        weights = graph.weights[positions]
    return EdgeBatch(
        vertices=vertices,
        vertex_ids=vertex_ids,
        neighbor_ids=neighbor_ids,
        edge_positions=positions,
        edge_weights=weights,
    )


@dataclass(frozen=True)
class LabelGroups:
    """Per-(vertex, label) aggregation of an edge batch.

    ``vertex_ids[g]``, ``labels[g]``, ``frequencies[g]`` describe group
    ``g``; groups are sorted by ``(vertex, label)``.  ``group_of_edge``
    maps each input edge (in the sorted order ``edge_order``) to its group.
    """

    vertex_ids: np.ndarray
    labels: np.ndarray
    frequencies: np.ndarray
    edge_order: np.ndarray
    group_of_edge: np.ndarray

    @property
    def num_groups(self) -> int:
        return int(self.vertex_ids.size)

    def distinct_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex ``(vertices, m)`` where ``m`` = distinct label count."""
        if self.num_groups == 0:
            return (
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=np.int64),
            )
        boundaries = np.concatenate(
            ([True], self.vertex_ids[1:] != self.vertex_ids[:-1])
        )
        starts = np.flatnonzero(boundaries)
        vertices = self.vertex_ids[starts]
        counts = np.diff(np.concatenate((starts, [self.num_groups])))
        return vertices, counts


def aggregate_label_frequencies(
    program: LPProgram, batch: EdgeBatch, current_labels: np.ndarray
) -> LabelGroups:
    """Aggregate an edge batch into per-(vertex, label) frequencies.

    Routes every edge through the program's ``load_neighbor`` hook, then
    groups by ``(vertex, label)`` and sums the frequency contributions —
    the functional equivalent of what every counting strategy computes.
    """
    neighbor_labels = current_labels[batch.neighbor_ids]
    labels, freqs = program.load_neighbor(
        batch.vertex_ids, batch.neighbor_ids, neighbor_labels, batch.edge_weights
    )
    labels = np.asarray(labels, dtype=LABEL_DTYPE)
    freqs = np.asarray(freqs, dtype=WEIGHT_DTYPE)
    if labels.size == 0:
        empty_v = np.empty(0, dtype=VERTEX_DTYPE)
        return LabelGroups(
            vertex_ids=empty_v,
            labels=np.empty(0, dtype=LABEL_DTYPE),
            frequencies=np.empty(0, dtype=WEIGHT_DTYPE),
            edge_order=np.empty(0, dtype=VERTEX_DTYPE),
            group_of_edge=np.empty(0, dtype=VERTEX_DTYPE),
        )
    order = np.lexsort((labels, batch.vertex_ids))
    sorted_vertices = batch.vertex_ids[order]
    sorted_labels = labels[order]
    sorted_freqs = freqs[order]
    new_group = np.concatenate(
        (
            [True],
            (sorted_vertices[1:] != sorted_vertices[:-1])
            | (sorted_labels[1:] != sorted_labels[:-1]),
        )
    )
    starts = np.flatnonzero(new_group)
    group_of_edge = np.cumsum(new_group) - 1
    frequencies = np.add.reduceat(sorted_freqs, starts)
    return LabelGroups(
        vertex_ids=sorted_vertices[starts],
        labels=sorted_labels[starts],
        frequencies=frequencies.astype(WEIGHT_DTYPE, copy=False),
        edge_order=order,
        group_of_edge=group_of_edge,
    )


def select_best_labels(
    program: LPProgram,
    groups: LabelGroups,
    vertices: np.ndarray,
    current_labels: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pick the best-scoring label per vertex (ties → smallest label).

    Returns ``(best_labels, best_scores)`` aligned with ``vertices``.
    Vertices without any group (no incoming edges) get their current label
    and :data:`NO_SCORE`.
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    best_labels = current_labels[vertices].astype(LABEL_DTYPE, copy=True)
    best_scores = np.full(vertices.size, NO_SCORE, dtype=WEIGHT_DTYPE)
    if groups.num_groups == 0:
        return best_labels, best_scores
    scores = np.asarray(
        program.score(groups.vertex_ids, groups.labels, groups.frequencies),
        dtype=WEIGHT_DTYPE,
    )
    # Sort by (vertex, -score, label): the first row of each vertex block is
    # its winner with deterministic smallest-label tie-breaking.
    order = np.lexsort((groups.labels, -scores, groups.vertex_ids))
    ordered_vertices = groups.vertex_ids[order]
    first = np.concatenate(
        ([True], ordered_vertices[1:] != ordered_vertices[:-1])
    )
    win_vertices = ordered_vertices[first]
    win_labels = groups.labels[order][first]
    win_scores = scores[order][first]

    # Scatter winners into the `vertices` alignment.  All call sites pass
    # sorted unique vertex subsets, so searchsorted is an exact inverse.
    idx = np.searchsorted(vertices, win_vertices)
    best_labels[idx] = win_labels
    best_scores[idx] = win_scores
    return best_labels, best_scores


def per_vertex_extremes(
    groups: LabelGroups,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per vertex: ``(vertices, m, f_max)``.

    ``m`` is the distinct-label count and ``f_max`` the largest aggregated
    frequency — the two quantities the Section 4.1 analysis is written in.
    """
    if groups.num_groups == 0:
        return (
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=WEIGHT_DTYPE),
        )
    boundaries = np.concatenate(
        ([True], groups.vertex_ids[1:] != groups.vertex_ids[:-1])
    )
    starts = np.flatnonzero(boundaries)
    vertices = groups.vertex_ids[starts]
    m = np.diff(np.concatenate((starts, [groups.num_groups])))
    f_max = np.maximum.reduceat(groups.frequencies, starts)
    return vertices, m, f_max
