"""Frontier maintenance kernels for delta (frontier-based) propagation.

Warm-started sliding-window runs converge "in a couple of iterations
because most of the graph is unchanged" (paper, Section 6): after the first
pass, only vertices with a *changed in-neighbor* can change themselves.  The
frontier layer tracks exactly that set, Gunrock-style:

1. **frontier-expand** — scatter the changed vertices' out-neighbors (read
   through the reversed CSR) into a per-vertex byte bitmap;
2. **frontier-compact** — scan the bitmap and scatter the set positions
   into a dense, sorted vertex-id list the degree-binned kernels consume.

Both are honest simulated kernels: the expand pays the reversed-CSR offset
gathers, the neighbor-segment streams and the scattered byte stores; the
compact pays the bitmap read, the prefix-scan traffic and the compacted-id
writeback.  The reversed CSR itself must be device-resident (the engines
upload it next to the forward CSR, where it participates in
:class:`~repro.errors.OutOfDeviceMemoryError` capacity checks).

The direction-optimizing dispatch (Beamer-style) lives here too: when the
frontier stops being sparse the degree-binned dense pass is already the
optimal schedule, so :func:`use_sparse_pass` switches back to it above a
configurable frontier-fraction threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import KernelError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.kernels.mfl import expand_edges

#: Bytes per vertex id / offset on the device (matches kernels.base).
ELEM_BYTES = 8

#: Bytes per frontier-bitmap entry (one byte per vertex, not one bit —
#: byte stores avoid read-modify-write atomics in the expand kernel).
BITMAP_BYTES = 1

#: Recognized execution modes for frontier-capable engines.
FRONTIER_MODES = ("dense", "frontier", "auto")


@dataclass(frozen=True)
class FrontierConfig:
    """Frontier execution policy for an engine.

    Parameters
    ----------
    mode:
        ``"dense"`` — classic full-vertex passes (no frontier machinery);
        ``"frontier"`` — always run the sparse pass over the tracked
        frontier (after the mandatory dense first iteration);
        ``"auto"`` — direction-optimizing: sparse passes while the frontier
        is small, dense fallback above ``dense_threshold``.
    dense_threshold:
        Frontier fraction ``|frontier| / |V|`` above which ``"auto"`` mode
        falls back to the dense pass.
    """

    mode: str = "dense"
    dense_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in FRONTIER_MODES:
            raise KernelError(
                f"unknown frontier mode {self.mode!r}; "
                f"expected one of {FRONTIER_MODES}"
            )
        if not 0.0 < self.dense_threshold <= 1.0:
            raise KernelError("dense_threshold must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether any frontier machinery is active."""
        return self.mode != "dense"


def resolve_frontier(frontier) -> FrontierConfig:
    """Coerce an engine's ``frontier=`` argument into a config."""
    if isinstance(frontier, FrontierConfig):
        return frontier
    if isinstance(frontier, str):
        return FrontierConfig(mode=frontier)
    raise KernelError(
        f"frontier must be a mode string or FrontierConfig, got {frontier!r}"
    )


def use_sparse_pass(
    config: FrontierConfig, frontier_size: int, num_vertices: int
) -> bool:
    """The direction-optimizing switch: sparse or dense this iteration?"""
    if not config.enabled:
        return False
    if config.mode == "frontier":
        return True
    if num_vertices == 0:
        return True
    return frontier_size / num_vertices <= config.dense_threshold


def frontier_bitmap_bytes(num_vertices: int) -> int:
    """Device footprint of the frontier bitmap."""
    return num_vertices * BITMAP_BYTES


def coerce_initial_frontier(
    frontier, num_vertices: int
) -> np.ndarray:
    """Validate an engine's ``initial_frontier=`` argument.

    Incremental callers (the sliding-window serving loop) hand the engines
    the affected vertex set of a window slide so iteration 1 runs sparse.
    The engines' frontier machinery assumes sorted unique in-range ids, so
    coerce here and fail loudly on garbage rather than mislabeling.
    """
    frontier = np.unique(np.asarray(frontier, dtype=np.int64))
    if frontier.size and (
        frontier[0] < 0 or frontier[-1] >= num_vertices
    ):
        raise KernelError(
            f"initial_frontier ids must be in [0, {num_vertices}); got "
            f"range [{frontier[0]}, {frontier[-1]}]"
        )
    return frontier


def prune_pinned(
    frontier: np.ndarray, pinned: "np.ndarray | None"
) -> np.ndarray:
    """Drop pinned vertices from a sparse frontier.

    ``pinned`` is the program's :meth:`~repro.core.api.LPProgram.
    pinned_vertices` set (sorted unique) — vertices whose update is a
    guaranteed no-op, so excluding them from the processing set preserves
    every label and the frontier trajectory while skipping their (often
    hub-sized) neighbor streams.
    """
    if pinned is None or pinned.size == 0 or frontier.size == 0:
        return frontier
    return frontier[~np.isin(frontier, pinned, assume_unique=True)]


def expand_frontier(
    device: Device, reversed_graph: CSRGraph, changed: np.ndarray
) -> np.ndarray:
    """Mark out-neighbors of ``changed`` in the frontier bitmap.

    ``reversed_graph`` is the reversed CSR, so ``reversed_graph.neighbors(u)``
    is exactly the set of vertices whose MFL input contains ``u``.  Returns
    the sorted, de-duplicated candidate frontier.
    """
    changed = np.asarray(changed, dtype=np.int64)
    if changed.size == 0:
        return np.empty(0, dtype=np.int64)
    with device.launch("frontier-expand"):
        # Read the changed-id worklist (coalesced stream).
        device.memory.load_sequential(
            changed.size, ELEM_BYTES, array="frontier-worklist"
        )
        # Gather each changed vertex's reversed-CSR offset pair, then
        # stream its out-neighbor segment.
        device.memory.load_gather(changed, ELEM_BYTES, array="csr-offsets")
        device.memory.load_segments(
            reversed_graph.offsets[changed],
            reversed_graph.degrees[changed],
            ELEM_BYTES,
            array="neighbor-ids",
        )
        batch = expand_edges(reversed_graph, changed)
        frontier = np.unique(batch.neighbor_ids.astype(np.int64, copy=False))
        # Scattered byte stores into the bitmap — one per touched edge
        # (duplicates still issue a store; they just coalesce per sector).
        # Every lane writes the same value (1), which is exactly why the
        # paper-style byte bitmap needs no atomics: the store is
        # idempotent, and the sanitizer checks it as such.
        if batch.num_edges:
            device.memory.store_scatter(
                batch.neighbor_ids,
                BITMAP_BYTES,
                array="frontier-bitmap",
                idempotent=True,
            )
        _account_warp_work(device, changed.size + batch.num_edges)
    return frontier


def compact_frontier(
    device: Device, num_vertices: int, frontier: np.ndarray
) -> np.ndarray:
    """Scan + scatter the bitmap into a dense sorted frontier-id list."""
    frontier = np.asarray(frontier, dtype=np.int64)
    with device.launch("frontier-compact"):
        # Pass 1: read the bitmap and write per-block set counts; pass 2:
        # exclusive scan of the counts; pass 3: re-read the bitmap and
        # scatter ids to their scanned positions; pass 4: clear the bitmap
        # for the next round.  Modeled as two bitmap streams plus the scan
        # traffic and the compacted writeback.  The device.barrier() calls
        # are the grid syncs separating the passes — zero cost, but they
        # order the phases for the sanitizer exactly as the hardware
        # kernel boundaries would.
        device.memory.load_sequential(
            num_vertices, BITMAP_BYTES, array="frontier-bitmap"
        )
        device.barrier()
        device.memory.load_sequential(
            num_vertices, ELEM_BYTES, array="scan-counts"
        )
        device.memory.store_sequential(
            num_vertices, ELEM_BYTES, array="scan-counts"
        )
        device.barrier()
        device.memory.load_sequential(
            num_vertices, BITMAP_BYTES, array="frontier-bitmap"
        )
        if frontier.size:
            device.memory.store_sequential(
                frontier.size, ELEM_BYTES, array="frontier-out"
            )
            device.barrier()
            device.memory.store_scatter(
                frontier, BITMAP_BYTES, array="frontier-bitmap"
            )
        _account_warp_work(device, 2 * num_vertices + frontier.size)
    return frontier


def next_frontier(
    device: Device,
    reversed_graph: CSRGraph,
    changed: np.ndarray,
) -> np.ndarray:
    """Full frontier advance: expand changed vertices, compact the bitmap."""
    with obs.span(
        "frontier-advance", cat="pass", changed=int(np.size(changed))
    ):
        candidates = expand_frontier(device, reversed_graph, changed)
        frontier = compact_frontier(
            device, reversed_graph.num_vertices, candidates
        )
    m = obs.metrics()
    if m is not None:
        m.observe("frontier_candidates", frontier.size)
    return frontier


def _account_warp_work(device: Device, num_elements: int) -> None:
    """Issue-slot accounting for an element-parallel frontier kernel."""
    if num_elements <= 0:
        return
    warps = -(-num_elements // device.spec.warp_size)
    device.counters.warp_instructions += warps * 2
    device.counters.active_lane_sum += num_elements * 2
    device.counters.warps_launched += warps
