"""The segmented-sort counting strategy (G-Sort baseline).

The approach of Kozawa et al. [17]: gather every neighbor's label into a
per-edge ``NL`` array, run a segmented sort (one segment per neighbor list),
then scan each sorted segment to find the longest run — the MFL.

Cost profile reproduced here (Section 2.2's critique):

* the NL array costs a full extra graph-sized allocation plus one gather
  and one store per edge,
* small segments sort in shared memory (cheap — why G-Sort wins on small
  graphs), but segments beyond the shared-memory tile degenerate to
  multi-pass global radix sort,
* the count scan re-reads every label.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import obs
from repro.kernels import mfl
from repro.kernels.base import (
    ELEM_BYTES,
    KernelContext,
    account_common_reads,
    account_label_writeback,
    warp_steps_one_warp_per_vertex,
)

#: Segments at most this long sort in shared memory (warp/block merge
#: sort); longer segments fall back to device-wide radix passes, as in
#: CUB's segmented radix sort.
_SMEM_TILE = 128
#: Radix-sort passes for oversized segments (8-bit digits over 32-bit keys).
_RADIX_PASSES = 4
#: Sorted payload bytes per edge: the label key plus the value CUB's
#: key-value segmented sort carries (edge weight / source id for the
#: LoadNeighbor generalization).
_PAIR_BYTES = 16
#: Warp instructions per element per bitonic stage.
_BITONIC_INSTR = 2
#: Warp instructions per 32-edge step of the final count scan.
_SCAN_INSTRUCTIONS = 4


def run_segmented_sort(
    ctx: KernelContext, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute MFLs for ``vertices`` via gather + segmented sort + scan."""
    device = ctx.device
    graph = ctx.graph
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    batch = mfl.expand_edges(graph, vertices)
    groups = mfl.aggregate_label_frequencies(
        ctx.program, batch, ctx.current_labels
    )

    degrees = graph.degrees[vertices]
    num_edges = batch.num_edges

    # The NL array is a graph-sized device allocation (the paper's memory-
    # overhead criticism); it lives for the duration of the pass.
    with obs.alloc_scope("scratch", "kernels.gsort.nl"):
        nl_array = device.alloc((max(1, num_edges),), np.int64)
    try:
        with device.launch("gsort-gather"):
            warp_steps = warp_steps_one_warp_per_vertex(graph, batch)
            account_common_reads(ctx, batch, warp_steps)
            # Key + value pair written per edge.
            device.memory.store_sequential(
                num_edges, _PAIR_BYTES, array="nl-pairs"
            )

        with device.launch("gsort-segsort"):
            small = degrees[(degrees > 1) & (degrees <= _SMEM_TILE)]
            large = degrees[degrees > _SMEM_TILE]
            if small.size:
                # Load tile, bitonic-sort pairs in shared memory, store tile.
                device.memory.load_segments(
                    np.zeros(small.size, dtype=np.int64), small, _PAIR_BYTES
                )
                stages = np.ceil(np.log2(small)) ** 2
                lane_ops = (small * stages).sum()
                device.counters.shared_load_ops += int(lane_ops)
                device.counters.shared_store_ops += int(lane_ops)
                device.counters.warp_instructions += int(
                    lane_ops / device.spec.warp_size * _BITONIC_INSTR
                )
                device.counters.active_lane_sum += int(
                    lane_ops * _BITONIC_INSTR
                )
                device.memory.store_sequential(int(small.sum()), _PAIR_BYTES)
            if large.size:
                # Plain radix sort of key-value pairs: per pass one
                # histogram read, one scatter read and one (uncoalesced)
                # scatter write — the "multiple scans on NL" the paper
                # criticizes.
                total_large = int(large.sum())
                for _ in range(_RADIX_PASSES):
                    device.memory.load_sequential(total_large, _PAIR_BYTES)
                    device.memory.load_sequential(total_large, _PAIR_BYTES)
                    device.memory.store_scatter(
                        np.arange(total_large, dtype=np.int64)[::-1],
                        _PAIR_BYTES,
                    )
                device.counters.warp_instructions += (
                    total_large // device.spec.warp_size + 1
                ) * _RADIX_PASSES * 3

        with device.launch("gsort-count"):
            # NOTE: the segsort launch above stays unnamed for the
            # sanitizer — its small/large partitions are modeled with
            # overlapping 0-based offsets, which would alias as false
            # conflicts; the real kernel sorts disjoint NL segments.
            device.memory.load_sequential(
                num_edges, ELEM_BYTES, array="nl-pairs"
            )
            steps = -(-degrees // device.spec.warp_size)
            device.counters.warp_instructions += (
                int(steps.sum()) * _SCAN_INSTRUCTIONS
            )
            device.counters.active_lane_sum += (
                int(degrees.sum()) * _SCAN_INSTRUCTIONS
            )
            device.counters.warps_launched += int(vertices.size)
            best_labels, best_scores = mfl.select_best_labels(
                ctx.program, groups, vertices, ctx.current_labels
            )
            account_label_writeback(ctx, vertices.size)
    finally:
        device.free(nl_array)

    return best_labels, best_scores
