"""MFL (most-frequent-label) kernels and the LabelPropagation pass.

One module per strategy from the paper:

* :mod:`~repro.kernels.global_hash` — the ``global`` baseline (G-Hash):
  one warp per vertex, counting in a global-memory hash table.
* :mod:`~repro.kernels.segmented_sort` — the G-Sort baseline: gather all
  neighbor labels, segmented sort, scan for the MFL.
* :mod:`~repro.kernels.smem_cms_ht` — ``SharedMemBigNodes`` (Section 4.1):
  shared-memory CMS + HT for high-degree vertices.
* :mod:`~repro.kernels.warp_centric` — one-warp-multi-vertices via warp
  intrinsics for low-degree vertices (Section 4.2).
* :mod:`~repro.kernels.scheduler` — degree binning (low < 32, high > 128).
* :mod:`~repro.kernels.propagate` — composes strategies into one
  LabelPropagation pass.
* :mod:`~repro.kernels.frontier` — frontier expand/compact kernels and the
  direction-optimizing dispatch for delta propagation.
"""

from repro.kernels.frontier import FrontierConfig
from repro.kernels.propagate import StrategyConfig, propagate_pass
from repro.kernels.scheduler import DegreeBins, bin_vertices_by_degree

__all__ = [
    "FrontierConfig",
    "StrategyConfig",
    "propagate_pass",
    "DegreeBins",
    "bin_vertices_by_degree",
]
