"""Low/mid-degree MFL kernels (Section 4.2).

Three scheduling strategies for small neighbor lists:

* :func:`run_warp_multi` — the paper's contribution: one warp handles
  *multiple* whole vertices at once, counting label frequencies with
  ``__ballot_sync`` / ``__match_any_sync`` / ``__popc`` instead of atomics.
  The intrinsics are executed for real (on the simulator's bit-exact
  implementations) and their ``popc`` counts *are* the frequencies used.
* :func:`run_thread_per_vertex` — the one-thread-one-vertex baseline: no
  idle lanes, but every lane walks a different neighbor list, so loads are
  maximally uncoalesced and the warp stalls on its slowest lane.
* :func:`run_warp_shared_ht` — one warp per vertex counting into a
  per-vertex shared-memory hash table; sensible for mid-degree vertices
  (32..128) where a warp is neither starved nor oversubscribed.

Packing policy for ``run_warp_multi``: vertices are grouped by degree and
``floor(32 / d)`` whole vertices of degree ``d`` share a warp.  Whole-vertex
placement is required — ``__match_any_sync`` can only count a frequency
whose occurrences all sit in one warp.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels import mfl
from repro.kernels.base import (
    KernelContext,
    account_common_reads,
    account_label_writeback,
    warp_steps_one_thread_per_vertex,
    warp_steps_one_warp_per_vertex,
)
from repro.gpusim import warp as warp_intrinsics

#: Instruction budget of one warp-multi step: ballot + 2x match_any + popc
#: + leader test + score + segmented max.
_WARP_MULTI_INSTRUCTIONS = 15
#: Per-neighbor-pair instructions of the register-counting thread kernel.
_THREAD_PAIR_INSTRUCTIONS = 2
#: Per-step instructions of the warp + shared-HT kernel.
_SHARED_HT_INSTRUCTIONS = 7


def _pack_lanes(
    degrees: np.ndarray, vertices: np.ndarray, warp_size: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Degree-binned whole-vertex packing.

    Returns ``(edge_warp, edge_lane, num_warps)`` where edge ``j`` of packed
    vertex ``i`` lands on ``(edge_warp, edge_lane)``.  Edges are ordered as
    ``expand_edges`` emits them (vertices ascending, then list order), so the
    arrays align with an :class:`~repro.kernels.mfl.EdgeBatch` built from
    the *same* vertex array sorted by (degree, id).
    """
    num_warps = 0
    edge_warps = []
    edge_lanes = []
    for d in np.unique(degrees):
        if d == 0:
            continue
        d = int(d)
        group = np.flatnonzero(degrees == d)
        within = np.tile(np.arange(d, dtype=np.int64), group.size)
        slot = np.arange(group.size, dtype=np.int64)
        if d < warp_size:
            per_warp = warp_size // d
            warp_of_vertex = num_warps + slot // per_warp
            lane_base = (slot % per_warp) * d
            edge_warps.append(np.repeat(warp_of_vertex, d))
            edge_lanes.append(np.repeat(lane_base, d) + within)
            num_warps += int(-(-group.size // per_warp))
        else:
            # Degree >= warp_size (possible when the low threshold is
            # raised above 32): the vertex occupies ceil(d/32) full
            # warp-steps of its own.
            steps = -(-d // warp_size)
            warp_base = num_warps + slot * steps
            edge_warps.append(
                np.repeat(warp_base, d) + within // warp_size
            )
            edge_lanes.append(within % warp_size)
            num_warps += int(group.size * steps)
    if edge_warps:
        return (
            np.concatenate(edge_warps),
            np.concatenate(edge_lanes),
            num_warps,
        )
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        0,
    )


def run_warp_multi(
    ctx: KernelContext, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One-warp-multi-vertices kernel over low-degree ``vertices``.

    Returns ``(best_labels, best_scores)`` aligned with the (sorted) input
    vertex array.
    """
    device = ctx.device
    graph = ctx.graph
    warp_size = device.spec.warp_size
    vertices = np.sort(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    degrees = graph.degrees[vertices]
    # Pack in (degree, id) order so each warp holds same-degree vertices.
    pack_order = np.lexsort((vertices, degrees))
    packed_vertices = vertices[pack_order]
    batch = mfl.expand_edges(graph, packed_vertices)
    groups = mfl.aggregate_label_frequencies(
        ctx.program, batch, ctx.current_labels
    )

    with device.launch("warp-multi"):
        edge_warp, edge_lane, num_warps = _pack_lanes(
            degrees[pack_order], packed_vertices, warp_size
        )
        account_common_reads(ctx, batch, edge_warp)

        if num_warps:
            # ----------------------------------------------------------
            # Genuine intrinsic execution: lay edges onto (warp, lane)
            # grids and run ballot / match_any / popc.
            # ----------------------------------------------------------
            lane_vertices = np.full((num_warps, warp_size), -1, dtype=np.int64)
            lane_labels = np.zeros((num_warps, warp_size), dtype=np.int64)
            neighbor_labels = ctx.current_labels[batch.neighbor_ids]
            loaded_labels, loaded_freqs = ctx.program.load_neighbor(
                batch.vertex_ids,
                batch.neighbor_ids,
                neighbor_labels,
                batch.edge_weights,
            )
            lane_vertices[edge_warp, edge_lane] = batch.vertex_ids
            lane_labels[edge_warp, edge_lane] = loaded_labels

            active = lane_vertices >= 0
            warp_intrinsics.ballot_sync(active, active)
            # vmask (threads on the same vertex) and lmask (same vertex AND
            # same label); the packed (vertex, label) key realizes the
            # paper's second match_any over labels within a vertex group.
            warp_intrinsics.match_any_sync(active, lane_vertices)
            combined = lane_vertices * np.int64(1 << 32) + lane_labels
            lmask = warp_intrinsics.match_any_sync(active, combined)
            lane_freq = warp_intrinsics.popc(lmask)

            device.counters.warp_instructions += (
                num_warps * _WARP_MULTI_INSTRUCTIONS
            )
            device.counters.active_lane_sum += (
                int(active.sum()) * _WARP_MULTI_INSTRUCTIONS
            )
            device.counters.warps_launched += num_warps

            # Differential check hook: with unit weights the popc counts
            # must equal the group-by frequencies.
            ctx.stats["warp_multi_popc_edges"] = int(lane_freq[active].sum())
            ctx.stats["warp_multi_warps"] = num_warps

        best_labels, best_scores = mfl.select_best_labels(
            ctx.program, groups, vertices, ctx.current_labels
        )
        account_label_writeback(ctx, vertices.size)

    return best_labels, best_scores


def run_thread_per_vertex(
    ctx: KernelContext, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One-thread-one-vertex baseline (register pairwise counting)."""
    device = ctx.device
    graph = ctx.graph
    vertices = np.sort(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    batch = mfl.expand_edges(graph, vertices)
    groups = mfl.aggregate_label_frequencies(
        ctx.program, batch, ctx.current_labels
    )

    with device.launch("thread-per-vertex"):
        warp_steps = warp_steps_one_thread_per_vertex(graph, batch)
        account_common_reads(
            ctx, batch, warp_steps, neighbor_ids_scattered=True
        )

        # Each thread counts its list in registers: O(d^2) compares; the
        # warp advances at the pace of its slowest lane.
        degrees = graph.degrees[vertices].astype(np.int64)
        warp_of_vertex = (
            np.arange(vertices.size, dtype=np.int64) // device.spec.warp_size
        )
        pair_work = degrees**2
        warp_steps_max = np.zeros(int(warp_of_vertex.max()) + 1, dtype=np.int64)
        np.maximum.at(warp_steps_max, warp_of_vertex, pair_work)
        device.counters.warp_instructions += (
            int(warp_steps_max.sum()) * _THREAD_PAIR_INSTRUCTIONS
        )
        device.counters.active_lane_sum += (
            int(pair_work.sum()) * _THREAD_PAIR_INSTRUCTIONS
        )
        device.counters.warps_launched += int(warp_steps_max.size)

        best_labels, best_scores = mfl.select_best_labels(
            ctx.program, groups, vertices, ctx.current_labels
        )
        account_label_writeback(ctx, vertices.size)

    return best_labels, best_scores


def run_warp_shared_ht(
    ctx: KernelContext, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One warp per vertex, counting into a shared-memory hash table.

    The GLP default for mid-degree vertices: the whole distinct-label set
    fits a per-warp shared table (degree <= 128 < ht_capacity), so counting
    never touches global memory.
    """
    device = ctx.device
    graph = ctx.graph
    config = ctx.config
    vertices = np.sort(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    device.shared.check_allocation(config.ht_capacity * 8)
    batch = mfl.expand_edges(graph, vertices)
    groups = mfl.aggregate_label_frequencies(
        ctx.program, batch, ctx.current_labels
    )

    with device.launch("warp-shared-ht"):
        warp_steps = warp_steps_one_warp_per_vertex(graph, batch)
        account_common_reads(ctx, batch, warp_steps)

        neighbor_labels = ctx.current_labels[batch.neighbor_ids]
        loaded_labels, _ = ctx.program.load_neighbor(
            batch.vertex_ids,
            batch.neighbor_ids,
            neighbor_labels,
            batch.edge_weights,
        )
        mixed = np.asarray(loaded_labels).astype(np.uint64) * np.uint64(
            0x9E3779B97F4A7C15
        )
        mixed ^= mixed >> np.uint64(29)
        slot = (mixed % np.uint64(config.ht_capacity)).astype(np.int64)
        device.atomics.shared_atomic_add(
            slot,
            warp_ids=warp_steps,
            array="warp-ht",
            size=config.ht_capacity * 2,
        )

        degrees = graph.degrees[vertices]
        steps = -(-degrees // device.spec.warp_size)
        device.counters.warp_instructions += (
            int(steps.sum()) * _SHARED_HT_INSTRUCTIONS
        )
        device.counters.active_lane_sum += (
            int(degrees.sum()) * _SHARED_HT_INSTRUCTIONS
        )
        device.counters.warps_launched += int(vertices.size)

        best_labels, best_scores = mfl.select_best_labels(
            ctx.program, groups, vertices, ctx.current_labels
        )
        account_label_writeback(ctx, vertices.size)

    return best_labels, best_scores
