"""The ``global`` counting strategy (G-Hash baseline).

One warp per vertex; every neighbor label is counted by an ``atomicAdd``
into a global-memory hash table keyed by ``(vertex, label)``.  This is the
approach of [2] and the baseline row of Table 3.

Its two weaknesses — which the accounting here surfaces — are exactly the
paper's motivation:

* every probe and counter update is an (often uncoalesced) global-memory
  transaction, and once communities form, many lanes of a warp hit the
  *same* counter, serializing the atomics;
* low-degree vertices leave most of their warp's lanes idle.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import obs
from repro.kernels import mfl
from repro.kernels.base import (
    ELEM_BYTES,
    KernelContext,
    account_common_reads,
    account_label_writeback,
    warp_steps_one_warp_per_vertex,
)
from repro.sketch.globalhash import GlobalHashTable, combine_keys

#: Warp instructions per 32-edge loop step (index math, load, hash, branch).
_LOOP_INSTRUCTIONS = 6
#: Warp instructions for the final per-vertex max-score reduction.
_REDUCE_INSTRUCTIONS = 5


def run_global_hash(
    ctx: KernelContext, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Count labels of ``vertices`` through a global hash table.

    Returns ``(best_labels, best_scores)`` aligned with ``vertices``.
    """
    device = ctx.device
    graph = ctx.graph
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    batch = mfl.expand_edges(graph, vertices)
    groups = mfl.aggregate_label_frequencies(
        ctx.program, batch, ctx.current_labels
    )

    with device.launch("global-hash"):
        warp_steps = warp_steps_one_warp_per_vertex(graph, batch)
        account_common_reads(ctx, batch, warp_steps)

        if batch.num_edges:
            # Real hash-table insertion: probe counts and the slot addresses
            # the atomics hit come from actual collisions at load factor 0.5.
            table = GlobalHashTable.for_expected_keys(
                max(1, groups.num_groups), load_factor=0.5
            )
            with obs.alloc_scope("scratch", "kernels.ghash.table"):
                table_mem = device.alloc((table.capacity,), np.int64)
            try:
                neighbor_labels = ctx.current_labels[batch.neighbor_ids]
                edge_labels, _ = ctx.program.load_neighbor(
                    batch.vertex_ids,
                    batch.neighbor_ids,
                    neighbor_labels,
                    batch.edge_weights,
                )
                keys = combine_keys(batch.vertex_ids, edge_labels)
                slots, probes = table.add_batch(keys)
                # One atomic RMW per edge at its resolved slot...
                device.atomics.global_atomic_add(
                    slots, ELEM_BYTES, warp_ids=warp_steps, array="global-ht"
                )
                # ...plus one uncoalesced probe load per extra inspection.
                extra_probes = probes - batch.num_edges
                device.counters.global_load_transactions += int(extra_probes)

                # MFL extraction: the warp re-reads its neighbor labels to
                # enumerate candidates (the "label values are repeatedly
                # loaded" issue of Section 2.2) and re-reads the counters.
                device.memory.load_gather(
                    batch.neighbor_ids,
                    ELEM_BYTES,
                    warp_ids=warp_steps,
                    array="labels",
                )
                if groups.num_groups:
                    first_of_group = np.concatenate(
                        (
                            [True],
                            groups.group_of_edge[1:] != groups.group_of_edge[:-1],
                        )
                    )
                    group_slots = slots[groups.edge_order][first_of_group]
                    # Counter re-read after the counting loop: atomics and
                    # reads never race (the add is the synchronization).
                    device.memory.load_gather(
                        group_slots, ELEM_BYTES, array="global-ht"
                    )
            finally:
                device.free(table_mem)

        # Warp-level loop cost: one warp strides each vertex's list.
        degrees = graph.degrees[vertices]
        steps = -(-degrees // device.spec.warp_size)
        loop_instr = int(steps.sum()) * _LOOP_INSTRUCTIONS
        device.counters.warp_instructions += loop_instr
        device.counters.active_lane_sum += int(degrees.sum()) * _LOOP_INSTRUCTIONS
        device.counters.warp_instructions += (
            vertices.size * _REDUCE_INSTRUCTIONS
        )
        # The reduction only has one live lane per counted label; lanes
        # beyond the vertex's degree idle through it like the main loop.
        device.counters.active_lane_sum += int(
            np.minimum(degrees, device.spec.warp_size).sum()
        ) * _REDUCE_INSTRUCTIONS
        device.counters.warps_launched += int(vertices.size)

        best_labels, best_scores = mfl.select_best_labels(
            ctx.program, groups, vertices, ctx.current_labels
        )
        account_label_writeback(ctx, vertices.size)

    return best_labels, best_scores
