"""The LabelPropagation pass: degree-binned kernel composition.

``propagate_pass`` is what the GLP engine runs once per iteration: it bins
vertices by degree, dispatches each bin to the strategy the
:class:`~repro.kernels.base.StrategyConfig` selects, and merges the
per-vertex winners back into dense arrays.

Strategy → kernel mapping:

=================  ====================================================
``high_strategy``  "smem" → :func:`run_smem_cms_ht`; "global" → pooled
                   into the global-hash kernel
``mid_strategy``   "shared_ht" → :func:`run_warp_shared_ht`; "global" →
                   pooled into the global-hash kernel
``low_strategy``   "warp_multi" → :func:`run_warp_multi`;
                   "warp_per_vertex" → pooled into the global-hash
                   kernel (a warp per vertex counting globally — the
                   G-Hash scheduling); "thread_per_vertex" →
                   :func:`run_thread_per_vertex`
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro import obs
from repro.errors import KernelError
from repro.kernels.base import (  # noqa: F401  (re-exported presets)
    GLOBAL_BASELINE,
    GLP_DEFAULT,
    SMEM_ONLY,
    SMEM_WARP,
    KernelContext,
    StrategyConfig,
)
from repro.kernels.global_hash import run_global_hash
from repro.kernels.scheduler import DegreeBins, bin_vertices_by_degree
from repro.kernels.segmented_sort import run_segmented_sort
from repro.kernels.smem_cms_ht import run_smem_cms_ht
from repro.kernels.warp_centric import (
    run_thread_per_vertex,
    run_warp_multi,
    run_warp_shared_ht,
)
from repro.kernels.mfl import NO_SCORE
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


@dataclass(frozen=True)
class PassResult:
    """Outcome of one LabelPropagation pass over a vertex subset."""

    vertices: np.ndarray
    best_labels: np.ndarray
    best_scores: np.ndarray
    bins: DegreeBins
    stats: dict


def propagate_pass(
    ctx: KernelContext,
    vertices: np.ndarray = None,
    *,
    bins: DegreeBins = None,
) -> PassResult:
    """Run one MFL pass over ``vertices`` (all vertices by default).

    ``bins`` lets callers pass precomputed degree bins for a *static* vertex
    set (degrees never change between iterations, so engines memoize the
    full-graph bins instead of re-binning and re-sorting every round);
    dynamic frontier subsets are binned here per pass.
    """
    graph = ctx.graph
    config = ctx.config
    if vertices is None:
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        vertices = np.sort(np.asarray(vertices, dtype=np.int64))

    if bins is None:
        bins = bin_vertices_by_degree(
            graph,
            low_threshold=config.low_threshold,
            high_threshold=config.high_threshold,
            vertices=vertices,
        )
    elif bins.total != vertices.size:
        raise KernelError(
            f"precomputed bins cover {bins.total} vertices but the pass "
            f"processes {vertices.size}"
        )

    best_labels = ctx.current_labels[vertices].astype(LABEL_DTYPE, copy=True)
    best_scores = np.full(vertices.size, NO_SCORE, dtype=WEIGHT_DTYPE)

    def merge(subset: np.ndarray, labels: np.ndarray, scores: np.ndarray):
        if subset.size == 0:
            return
        idx = np.searchsorted(vertices, subset)
        best_labels[idx] = labels
        best_scores[idx] = scores

    with obs.span(
        "propagate-pass",
        cat="pass",
        vertices=int(vertices.size),
        high=int(bins.high.size),
        mid=int(bins.mid.size),
        low=int(bins.low.size),
    ):
        # Bins whose strategy is "global" share one pooled kernel launch.
        pooled = []
        if config.high_strategy == "global":
            pooled.append(bins.high)
        elif bins.high.size:
            merge(bins.high, *run_smem_cms_ht(ctx, bins.high))

        if config.mid_strategy == "global":
            pooled.append(bins.mid)
        elif bins.mid.size:
            merge(bins.mid, *run_warp_shared_ht(ctx, bins.mid))

        if config.low_strategy == "warp_per_vertex":
            pooled.append(bins.low)
        elif config.low_strategy == "thread_per_vertex":
            if bins.low.size:
                merge(bins.low, *run_thread_per_vertex(ctx, bins.low))
        else:  # warp_multi
            if bins.low.size:
                merge(bins.low, *run_warp_multi(ctx, bins.low))

        if pooled:
            pooled_vertices = np.sort(np.concatenate(pooled))
            if pooled_vertices.size:
                merge(
                    pooled_vertices, *run_global_hash(ctx, pooled_vertices)
                )

    return PassResult(
        vertices=vertices,
        best_labels=best_labels,
        best_scores=best_scores,
        bins=bins,
        stats=dict(ctx.stats),
    )


def segmented_sort_pass(
    ctx: KernelContext,
    vertices: np.ndarray = None,
    *,
    bins: DegreeBins = None,
) -> PassResult:
    """A full pass through the G-Sort strategy (all degree classes)."""
    graph = ctx.graph
    if vertices is None:
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        vertices = np.sort(np.asarray(vertices, dtype=np.int64))
    if bins is None:
        bins = bin_vertices_by_degree(graph, vertices=vertices)
    with obs.span(
        "segmented-sort-pass", cat="pass", vertices=int(vertices.size)
    ):
        labels, scores = run_segmented_sort(ctx, vertices)
    return PassResult(
        vertices=vertices,
        best_labels=labels,
        best_scores=scores,
        bins=bins,
        stats=dict(ctx.stats),
    )
