"""``SharedMemBigNodes``: the CMS + HT high-degree kernel (Section 4.1).

One thread block per high-degree vertex.  Each arriving neighbor label is
offered to a fixed-capacity shared-memory hash table; with full-table
probing the HT ends up holding exactly the first ``h`` distinct labels in
arrival order, and later arrivals of those labels keep incrementing their
counters.  Labels that find the table full fall through to a shared-memory
Count-Min Sketch.  After one scan:

* ``s(HT) >= s(CMS)``  →  the HT winner is provably the true MFL (the CMS
  only over-estimates and the score is monotone in frequency) — **no global
  memory needed**;
* otherwise the overflow labels are counted exactly in a global hash table
  and the winner is taken over both structures.

Theorem 1 bounds the fallback probability by ``m * 2^-d + e^-h``; the kernel
records the measured fallback rate in ``ctx.stats`` so the theory benchmark
can compare bound against reality.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels import mfl
from repro.kernels.base import (
    ELEM_BYTES,
    KernelContext,
    account_common_reads,
    account_label_writeback,
    warp_steps_block_per_vertex,
)
from repro.gpusim.block import BlockConfig, block_reduce_max_cost
from repro.sketch.countmin import CountMinSketch
from repro.sketch.globalhash import GlobalHashTable, combine_keys
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE

#: Warp instructions per block-sized loop step (load, hash, insert branch).
_LOOP_INSTRUCTIONS = 8


def _ht_slot_addresses(labels: np.ndarray, capacity: int) -> np.ndarray:
    """Vectorized base-slot addresses of the shared-memory HT."""
    mixed = labels.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(capacity)).astype(np.int64)


def run_smem_cms_ht(
    ctx: KernelContext, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Run ``SharedMemBigNodes`` over the high-degree ``vertices``."""
    device = ctx.device
    graph = ctx.graph
    config = ctx.config
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        ctx.stats["smem_high_vertices"] = 0
        ctx.stats["smem_fallback_vertices"] = 0
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    # Shared-memory budget check: HT (8 B/slot) + CMS (4 B/counter).
    ht_bytes = config.ht_capacity * 8
    cms_bytes = config.cms_depth * config.cms_width * 4
    device.shared.check_allocation(ht_bytes + cms_bytes)
    # Declared word extent of the block's shared allocation for the
    # sanitizer's OOB check: HT slots occupy [0, 2*capacity) and the CMS
    # counters [2*capacity, 2*capacity + depth*width).
    smem_words = config.ht_capacity * 2 + config.cms_depth * config.cms_width

    batch = mfl.expand_edges(graph, vertices)
    neighbor_labels = ctx.current_labels[batch.neighbor_ids]
    edge_labels, edge_freqs = ctx.program.load_neighbor(
        batch.vertex_ids, batch.neighbor_ids, neighbor_labels, batch.edge_weights
    )
    edge_labels = np.asarray(edge_labels, dtype=LABEL_DTYPE)
    edge_freqs = np.asarray(edge_freqs, dtype=WEIGHT_DTYPE)
    groups = mfl.aggregate_label_frequencies(
        ctx.program, batch, ctx.current_labels
    )

    with device.launch("smem-cms-ht"):
        warp_steps = warp_steps_block_per_vertex(
            graph, batch, config.block_size
        )
        account_common_reads(ctx, batch, warp_steps)

        # ------------------------------------------------------------------
        # HT residency: with full-table probing the resident set of each
        # vertex is the first `ht_capacity` distinct labels in arrival order.
        # ------------------------------------------------------------------
        within = batch.edge_positions - graph.offsets[batch.vertex_ids]
        sorted_within = within[groups.edge_order]
        group_starts = np.flatnonzero(
            np.concatenate(
                ([True], groups.group_of_edge[1:] != groups.group_of_edge[:-1])
            )
        )
        group_first_arrival = np.minimum.reduceat(sorted_within, group_starts)

        arrival_order = np.lexsort((group_first_arrival, groups.vertex_ids))
        ordered_vertices = groups.vertex_ids[arrival_order]
        vertex_starts = np.flatnonzero(
            np.concatenate(([True], ordered_vertices[1:] != ordered_vertices[:-1]))
        )
        rank_within_vertex = (
            np.arange(groups.num_groups, dtype=np.int64)
            - np.repeat(
                vertex_starts,
                np.diff(np.concatenate((vertex_starts, [groups.num_groups]))),
            )
        )
        resident_sorted = rank_within_vertex < config.ht_capacity
        resident = np.empty(groups.num_groups, dtype=bool)
        resident[arrival_order] = resident_sorted

        # Per-edge residency: an edge's counting path follows its label.
        edge_resident_sorted = resident[groups.group_of_edge]
        edge_resident = np.empty(batch.num_edges, dtype=bool)
        edge_resident[groups.edge_order] = edge_resident_sorted

        # ------------------------------------------------------------------
        # Shared-memory traffic: HT atomics for resident edges, CMS atomics
        # (d rows) for overflow edges — with real slot/bucket addresses so
        # bank conflicts reflect the actual label distribution.
        # ------------------------------------------------------------------
        ht_edges = np.flatnonzero(edge_resident)
        if ht_edges.size:
            addresses = _ht_slot_addresses(
                edge_labels[ht_edges], config.ht_capacity
            )
            device.atomics.shared_atomic_add(
                addresses,
                warp_ids=warp_steps[ht_edges],
                array="smem-ht-cms",
                size=smem_words,
            )
        overflow_edges = np.flatnonzero(~edge_resident)
        cms_template = CountMinSketch(config.cms_depth, config.cms_width)
        if overflow_edges.size:
            bucket_rows = cms_template.bucket_addresses(
                edge_labels[overflow_edges]
            )
            for row in range(config.cms_depth):
                device.atomics.shared_atomic_add(
                    bucket_rows[row] + config.ht_capacity * 2,
                    warp_ids=warp_steps[overflow_edges],
                    array="smem-ht-cms",
                    size=smem_words,
                )

        # ------------------------------------------------------------------
        # Per-vertex decision: s(HT) vs s(CMS).  CMS estimates are computed
        # with a real per-block sketch (collisions included).
        # ------------------------------------------------------------------
        scores = np.asarray(
            ctx.program.score(
                groups.vertex_ids, groups.labels, groups.frequencies
            ),
            dtype=WEIGHT_DTYPE,
        )
        unique_vertices, vertex_group_starts = np.unique(
            groups.vertex_ids, return_index=True
        )
        ht_scores = np.where(resident, scores, -np.inf)
        s_ht = np.maximum.reduceat(ht_scores, vertex_group_starts)

        overflow_vertex_ids = groups.vertex_ids[~resident]
        fallback_mask = np.zeros(unique_vertices.size, dtype=bool)
        if overflow_vertex_ids.size:
            # Only vertices with overflow labels can possibly fall back.
            for v in np.unique(overflow_vertex_ids):
                v_groups = (groups.vertex_ids == v) & (~resident)
                labels_v = groups.labels[v_groups]
                freqs_v = groups.frequencies[v_groups]
                sketch = CountMinSketch(config.cms_depth, config.cms_width)
                estimates = sketch.add(labels_v, freqs_v)
                cms_scores = np.asarray(
                    ctx.program.score(
                        np.full(labels_v.size, v, dtype=np.int64),
                        labels_v,
                        estimates,
                    ),
                    dtype=WEIGHT_DTYPE,
                )
                slot = int(np.searchsorted(unique_vertices, v))
                if cms_scores.size and cms_scores.max() > s_ht[slot]:
                    fallback_mask[slot] = True

        # ------------------------------------------------------------------
        # Global fallback: count overflow labels exactly in a global table.
        # ------------------------------------------------------------------
        fallback_vertices = unique_vertices[fallback_mask]
        if fallback_vertices.size:
            fb_set = np.isin(batch.vertex_ids, fallback_vertices)
            fb_edges = np.flatnonzero(fb_set & ~edge_resident)
            if fb_edges.size:
                table = GlobalHashTable.for_expected_keys(
                    fb_edges.size, load_factor=0.5
                )
                keys = combine_keys(
                    batch.vertex_ids[fb_edges], edge_labels[fb_edges]
                )
                slots, probes = table.add_batch(keys)
                device.atomics.global_atomic_add(
                    slots,
                    ELEM_BYTES,
                    warp_ids=warp_steps[fb_edges],
                    array="global-ht",
                )
                device.counters.global_load_transactions += int(
                    probes - fb_edges.size
                )

        # ------------------------------------------------------------------
        # Loop + reduction instruction costs.
        # ------------------------------------------------------------------
        degrees = graph.degrees[vertices]
        block_cfg = BlockConfig(config.block_size)
        warps_per_block = block_cfg.num_warps(device.spec.warp_size)
        loop_steps = -(-degrees // config.block_size)
        warp_instr = int(loop_steps.sum()) * warps_per_block * _LOOP_INSTRUCTIONS
        device.counters.warp_instructions += warp_instr
        device.counters.active_lane_sum += int(degrees.sum()) * _LOOP_INSTRUCTIONS
        device.counters.warps_launched += int(vertices.size) * warps_per_block
        # Two BlockReduce(max) per vertex, a third on the fallback path.
        block_reduce_max_cost(
            2 * vertices.size + int(fallback_mask.sum()),
            block_cfg,
            device.spec,
            device.counters,
        )

        best_labels, best_scores = mfl.select_best_labels(
            ctx.program, groups, vertices, ctx.current_labels
        )
        account_label_writeback(ctx, vertices.size)

    ctx.stats["smem_high_vertices"] = int(vertices.size)
    ctx.stats["smem_fallback_vertices"] = int(fallback_mask.sum())
    ctx.stats["smem_overflow_groups"] = int((~resident).sum())
    return best_labels, best_scores
