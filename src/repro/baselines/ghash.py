"""G-Hash: the global hash-table GPU baseline ([2], extending G-Sort).

One warp per vertex, all counting through a global-memory hash table — the
configuration the paper's ablation calls ``global`` (Section 5.3).  Relies
on the GPU cache for locality; once neighbor lists outgrow the cache, every
probe is a random global transaction, which is exactly what the accounting
model charges.
"""

from __future__ import annotations

from typing import Optional

from repro.core.framework import GLPEngine
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.device import Device
from repro.kernels.base import GLOBAL_BASELINE


class GHashEngine(GLPEngine):
    """The G-Hash baseline engine."""

    name = "G-Hash"

    def __init__(
        self,
        device: Optional[Device] = None,
        *,
        spec: DeviceSpec = TITAN_V,
    ) -> None:
        super().__init__(device, config=GLOBAL_BASELINE, spec=spec)
