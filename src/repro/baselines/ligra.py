"""Ligra-style frontier-based LP engine (Shun & Blelloch, 2013).

Ligra's edgeMap processes only *active* vertices.  For LP a vertex's MFL can
change only if some in-neighbor changed its label last iteration, so when
the program declares itself ``frontier_safe`` (classic LP does) the engine
sparsifies: the active set is the out-neighborhood of last iteration's
changed vertices.  Programs with global score state (LLP) or randomized
picks (SLP) fall back to dense iterations — where Ligra performs like OMP,
matching the paper's observation that "OMP and Ligra show similar
performance on most of the datasets".

The frontier machinery itself costs time (building the active set, switching
between sparse/dense representations), modeled as a per-active-vertex
overhead on top of the OMP-style compute model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.cpumodel import CPUEngineBase, CPUSpec, XEON_W2133
from repro.core.api import LPProgram
from repro.graph.csr import CSRGraph
from repro.scaling import TIME_SCALE


class LigraEngine(CPUEngineBase):
    """Frontier-sparsified multicore engine."""

    name = "Ligra"

    def __init__(self, spec: CPUSpec = XEON_W2133) -> None:
        super().__init__(spec)
        self._out_graph: Optional[CSRGraph] = None
        self._out_graph_source: Optional[int] = None

    def _active_vertices(
        self,
        graph: CSRGraph,
        program: LPProgram,
        changed_mask: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        if not program.frontier_safe or changed_mask is None:
            return None
        changed = np.flatnonzero(changed_mask)
        # Dense mode is cheaper once most vertices are active (Ligra's
        # sparse->dense threshold is |frontier edges| > E/20).
        if changed.size > graph.num_vertices // 20:
            return None
        # Out-neighbors of changed vertices = vertices whose *in*-neighbor
        # set contains a changed vertex; compute on the reversed graph.
        if self._out_graph is None or self._out_graph_source != id(graph):
            self._out_graph = graph.reversed()
            self._out_graph_source = id(graph)
        out = self._out_graph
        chunks = [out.neighbors(int(v)) for v in changed]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks)).astype(np.int64)

    def _iteration_seconds(
        self, graph: CSRGraph, *, active_edges: int, active_vertices: int
    ) -> float:
        spec = self.spec
        effective_rate = (
            spec.edges_per_core_per_second * spec.num_cores * 1.3
        )
        balanced = active_edges / effective_rate
        straggler = graph.max_degree / spec.edges_per_core_per_second
        compute = max(balanced, straggler) if active_edges else 0.0
        frontier_overhead = active_vertices * 2e-9 + 5e-6 * TIME_SCALE
        return compute + frontier_overhead + spec.sync_seconds
