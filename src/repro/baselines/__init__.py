"""Baseline LP engines the paper compares against (Section 5.1).

CPU engines (multicore cost model, functionally identical label updates):

* :class:`~repro.baselines.cpu_serial.SerialEngine` — single-thread
  reference (ground truth for differential tests).
* :class:`~repro.baselines.omp.OMPEngine` — OpenMP-style parallel-for.
* :class:`~repro.baselines.ligra.LigraEngine` — Ligra-style engine with
  frontier sparsification where the program allows it.
* :class:`~repro.baselines.tigergraph.TigerGraphEngine` — message-passing
  style engine (classic LP only, like TG in the paper).

GPU baselines (run on the same simulated device as GLP):

* :class:`~repro.baselines.gsort.GSortEngine` — segmented-sort MFL [17].
* :class:`~repro.baselines.ghash.GHashEngine` — global hash-table MFL [2].

Cluster baseline:

* :class:`~repro.baselines.distributed.InHouseDistributedEngine` — a
  32-machine BSP message-passing cluster (the TaoBao in-house solution).
"""

from repro.baselines.cpu_serial import SerialEngine
from repro.baselines.omp import OMPEngine
from repro.baselines.ligra import LigraEngine
from repro.baselines.tigergraph import TigerGraphEngine
from repro.baselines.gsort import GSortEngine
from repro.baselines.ghash import GHashEngine
from repro.baselines.distributed import InHouseDistributedEngine

__all__ = [
    "SerialEngine",
    "OMPEngine",
    "LigraEngine",
    "TigerGraphEngine",
    "GSortEngine",
    "GHashEngine",
    "InHouseDistributedEngine",
]
