"""The TaoBao in-house distributed LP solution (cluster BSP simulator).

The paper's Section 5.4 baseline: a message-passing (Pregel-style) LP
running on 32 machines, each with 4x Intel Xeon Platinum 8168 and 512 GB
RAM.  Per BSP superstep every vertex sends its label along its out-edges;
messages crossing partitions traverse the datacenter network, get
(de)serialized, and the superstep ends with a global barrier.

The cost profile that makes the cluster lose to one GPU:

* **network**: per-edge messages through the cluster's aggregate bandwidth
  (each byte is serialized, shipped and deserialized), vs. GLP reading
  labels straight from HBM2;
* **stragglers**: the superstep waits for the heaviest partition;
* **barriers**: a fixed coordination latency every superstep.

All constants are explicit :class:`ClusterSpec` fields; the 8.2x headline of
Figure 7 *emerges* from the bandwidth arithmetic, not from a hard-coded
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.cpumodel import (
    CPUEngineBase,
    CPUSpec,
    XEON_PLATINUM_8168_X4,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import balanced_edge_partition, boundary_edge_counts
from repro.scaling import TIME_SCALE


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the distributed deployment."""

    name: str = "TaoBao-inhouse-32"
    num_machines: int = 32
    machine: CPUSpec = XEON_PLATINUM_8168_X4
    #: Per-machine NIC bandwidth (25 GbE full duplex, datacenter fabric).
    nic_bandwidth: float = 2.5e9
    #: Bytes on the wire per label message (label + vertex id + framing).
    message_bytes: int = 16
    #: CPU-side (de)serialization throughput per machine (bytes/second).
    serialization_bandwidth: float = 4.0e9
    #: Global barrier / coordination latency per superstep (pre-scaled to
    #: the reproduction's time scale, see :mod:`repro.scaling`).
    barrier_seconds: float = 500e-6 * TIME_SCALE

    @property
    def total_cores(self) -> int:
        return self.num_machines * self.machine.num_cores


#: The paper's cluster.
TAOBAO_CLUSTER = ClusterSpec()


class InHouseDistributedEngine(CPUEngineBase):
    """BSP message-passing LP over a simulated cluster.

    Functionally identical to every other engine (bulk-synchronous MFL with
    the same tie-breaking); only the per-iteration timing model differs.
    """

    name = "InHouse-Distributed"

    def __init__(self, spec: ClusterSpec = TAOBAO_CLUSTER) -> None:
        super().__init__(spec.machine)
        self.cluster = spec
        self._partition_cache: dict = {}

    # ------------------------------------------------------------------
    def _partition_profile(self, graph: CSRGraph):
        """Per-partition edge counts and boundary (cross-machine) edges."""
        key = id(graph)
        if key not in self._partition_cache:
            parts = balanced_edge_partition(graph, self.cluster.num_machines)
            edges = np.array([p.num_edges for p in parts], dtype=np.int64)
            boundary = boundary_edge_counts(graph, parts)
            self._partition_cache[key] = (edges, boundary)
        return self._partition_cache[key]

    def _iteration_seconds(
        self, graph: CSRGraph, *, active_edges: int, active_vertices: int
    ) -> float:
        cluster = self.cluster
        machine = cluster.machine
        part_edges, boundary = self._partition_profile(graph)
        if graph.num_edges == 0:
            return cluster.barrier_seconds
        activity = active_edges / graph.num_edges

        # Local compute: the straggler partition bounds the superstep.
        per_machine_rate = (
            machine.edges_per_core_per_second * machine.num_cores * 1.2
        )
        compute = float(part_edges.max()) * activity / per_machine_rate

        # Network: every cross-partition edge carries one label message;
        # the busiest receiver's NIC is the bottleneck link, and every byte
        # is serialized on the sender and deserialized on the receiver.
        max_in_bytes = float(boundary.max()) * activity * cluster.message_bytes
        network = max_in_bytes / cluster.nic_bandwidth
        serialization = 2.0 * max_in_bytes / cluster.serialization_bandwidth

        # Compute overlaps the shuffle only partially in BSP: model the
        # superstep as compute followed by exchange, plus the barrier.
        return compute + network + serialization + cluster.barrier_seconds
