"""Multicore CPU cost model and the shared CPU engine skeleton.

The CPU baselines execute the *same* functional label updates as the GPU
engines (via the shared :mod:`repro.kernels.mfl` helpers) and differ only in
their timing model.  LP on CPUs is bound by random memory access — each edge
reads a label at an unpredictable address — so the model charges a
cache-miss-dominated cost per edge, divided over cores, plus per-iteration
synchronization.

The default spec models the paper's Intel Xeon W-2133 workstation
(6 cores / 12 threads, quad-channel DDR4): an optimized multicore LP
sustains ~35 M edges/core/s (label gather with hardware prefetch on the CSR
stream, counter update in L1-resident maps), i.e. ~200+ M edges/s across
the socket — in line with published shared-memory LP throughputs
(Ligra-class systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.api import LPProgram, validate_program
from repro.core.results import IterationStats, LPResult
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import PerfCounters
from repro.scaling import TIME_SCALE
from repro.kernels import mfl


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a multicore host.

    Attributes
    ----------
    edges_per_core_per_second:
        Sustained LP edge-processing rate per core (label gather + counter
        update, cache-miss bound).
    sync_seconds:
        Per-iteration barrier/fork-join overhead.
    per_vertex_overhead:
        Per-vertex bookkeeping cost in seconds (loop + MFL select).
    """

    name: str = "Xeon-W-2133"
    num_cores: int = 6
    num_threads: int = 12
    edges_per_core_per_second: float = 35e6
    sync_seconds: float = 20e-6 * TIME_SCALE
    per_vertex_overhead: float = 8e-9


#: The paper's workstation CPU (Sections 5.1-5.3).
XEON_W2133 = CPUSpec()

#: One machine of the TaoBao cluster: 4x Xeon Platinum 8168 (24 cores each).
XEON_PLATINUM_8168_X4 = CPUSpec(
    name="4x-Xeon-Platinum-8168",
    num_cores=96,
    num_threads=192,
    edges_per_core_per_second=10e6,  # NUMA penalty on random access
    sync_seconds=50e-6 * TIME_SCALE,
    per_vertex_overhead=8e-9,
)


class CPUEngineBase:
    """Common iterate loop for the CPU baselines.

    Subclasses override :meth:`_iteration_seconds` (the timing model) and
    may override :meth:`_active_vertices` (frontier sparsification).
    """

    name = "cpu"

    def __init__(self, spec: CPUSpec = XEON_W2133) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        program: LPProgram,
        *,
        max_iterations: int = 20,
        record_history: bool = False,
        stop_on_convergence: bool = True,
    ) -> LPResult:
        if max_iterations <= 0:
            raise ConvergenceError("max_iterations must be positive")
        labels = program.init_labels(graph)
        program.init_state(graph, labels)
        validate_program(program, graph, labels)

        iterations: List[IterationStats] = []
        history = [] if record_history else None
        converged = False
        changed_mask: Optional[np.ndarray] = None  # None = all changed

        for iteration in range(1, max_iterations + 1):
            picked = program.pick_labels(graph, labels, iteration)
            active = self._active_vertices(graph, program, changed_mask)

            batch = mfl.expand_edges(
                graph, None if active is None else active
            )
            groups = mfl.aggregate_label_frequencies(program, batch, picked)
            vertices = (
                np.arange(graph.num_vertices, dtype=np.int64)
                if active is None
                else active
            )
            best_labels, best_scores = mfl.select_best_labels(
                program, groups, vertices, picked
            )
            new_labels = program.update_vertices(
                vertices, best_labels, best_scores, labels
            )

            program.on_iteration_end(graph, labels, new_labels, iteration)
            changed_mask = new_labels != labels
            changed = int(np.count_nonzero(changed_mask))
            seconds = self._iteration_seconds(
                graph,
                active_edges=batch.num_edges,
                active_vertices=int(vertices.size),
            )
            iteration_converged = program.converged(
                labels, new_labels, iteration
            )
            labels = new_labels
            if history is not None:
                history.append(labels.copy())
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    seconds=seconds,
                    kernel_seconds=seconds,
                    transfer_seconds=0.0,
                    changed_vertices=changed,
                    counters=PerfCounters(),
                )
            )
            if iteration_converged and stop_on_convergence:
                converged = True
                break

        return LPResult(
            labels=program.final_labels(labels),
            iterations=iterations,
            converged=converged,
            engine=self.name,
            history=history,
        )

    # ------------------------------------------------------------------
    def _active_vertices(
        self,
        graph: CSRGraph,
        program: LPProgram,
        changed_mask: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Vertex subset to process this iteration (``None`` = all)."""
        return None

    def _iteration_seconds(
        self, graph: CSRGraph, *, active_edges: int, active_vertices: int
    ) -> float:
        raise NotImplementedError
