"""G-Sort: the segmented-sort GPU baseline (Kozawa et al., 2017).

A thin engine wrapper forcing the GLP framework's segmented-sort pass for
every vertex.  The original implementation supports only classic LP; like
the paper (Section 5.1) we "extend their code" by routing any LP program's
hooks through the same sort-based counting.
"""

from __future__ import annotations

from typing import Optional

from repro.core.framework import GLPEngine
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.device import Device


class GSortEngine(GLPEngine):
    """The G-Sort baseline engine."""

    name = "G-Sort"

    def __init__(
        self,
        device: Optional[Device] = None,
        *,
        spec: DeviceSpec = TITAN_V,
    ) -> None:
        super().__init__(device, pass_kind="gsort", spec=spec)
