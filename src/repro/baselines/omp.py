"""OpenMP-style multicore LP engine.

Models an OpenMP ``parallel for`` with dynamic scheduling over vertices:
edge work divides over hardware threads (bounded below by the heaviest
single vertex — one vertex cannot split), plus a fork-join barrier per
iteration.

OMP is the *normalization baseline* of Figures 4-6: every other approach is
reported as a speedup over this engine.
"""

from __future__ import annotations

from repro.baselines.cpumodel import CPUEngineBase, CPUSpec, XEON_W2133
from repro.graph.csr import CSRGraph


class OMPEngine(CPUEngineBase):
    """Dynamic-scheduled parallel-for over vertices."""

    name = "OMP"

    def __init__(self, spec: CPUSpec = XEON_W2133) -> None:
        super().__init__(spec)

    def _iteration_seconds(
        self, graph: CSRGraph, *, active_edges: int, active_vertices: int
    ) -> float:
        spec = self.spec
        threads = spec.num_threads
        # Hyperthreads share memory ports: scale throughput by cores but
        # grant a modest SMT benefit on this latency-bound workload.
        effective_rate = (
            spec.edges_per_core_per_second * spec.num_cores * 1.3
        )
        balanced = active_edges / effective_rate
        straggler = graph.max_degree / spec.edges_per_core_per_second
        compute = max(balanced, straggler)
        vertex_overhead = (
            active_vertices * spec.per_vertex_overhead / threads
        )
        return compute + vertex_overhead + spec.sync_seconds
