"""TigerGraph-style LP engine.

TigerGraph executes GSQL accumulators through a message-passing runtime:
every edge materializes a (label) message into per-vertex MapAccum state,
with serialization and task-queue overhead on top of raw edge processing.
The paper runs TG's stock LP implementation and finds it slower than both
OMP and Ligra (Figure 4); TG also only ships classic LP, so — like the
paper — this engine refuses other variants.
"""

from __future__ import annotations

from repro.algorithms.classic import ClassicLP
from repro.baselines.cpumodel import CPUEngineBase, CPUSpec, XEON_W2133
from repro.core.api import LPProgram
from repro.core.results import LPResult
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph

#: Message materialization + accumulator overhead per edge relative to the
#: raw OMP edge cost (TG processes ~3-4x slower in published comparisons).
_MESSAGE_OVERHEAD_FACTOR = 3.5


class TigerGraphEngine(CPUEngineBase):
    """Message-passing multicore engine (classic LP only)."""

    name = "TG"

    def __init__(self, spec: CPUSpec = XEON_W2133) -> None:
        super().__init__(spec)

    def run(self, graph: CSRGraph, program: LPProgram, **kwargs) -> LPResult:
        if not isinstance(program, ClassicLP):
            raise ProgramError(
                "TigerGraph's stock implementation only supports classic LP "
                f"(got {program.name!r}); the paper omits TG for LLP/SLP too"
            )
        return super().run(graph, program, **kwargs)

    def _iteration_seconds(
        self, graph: CSRGraph, *, active_edges: int, active_vertices: int
    ) -> float:
        spec = self.spec
        effective_rate = (
            spec.edges_per_core_per_second
            * spec.num_cores
            * 1.3
            / _MESSAGE_OVERHEAD_FACTOR
        )
        compute = active_edges / effective_rate
        accumulator_overhead = active_vertices * 30e-9
        return compute + accumulator_overhead + spec.sync_seconds * 4
