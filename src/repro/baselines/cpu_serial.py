"""Single-thread CPU reference engines (synchronous and block-asynchronous).

:class:`SerialEngine` is the ground truth for every differential test: all
parallel engines (CPU, GPU, hybrid, multi-GPU, distributed) must produce
byte-identical labels for deterministic programs, because every
implementation shares the same MFL semantics (score maximization, ties to
the smaller label).

:class:`BlockAsyncSerialEngine` is the asynchronous-update extension noted
in DESIGN.md: vertices are processed in blocks, and later blocks see the
labels earlier blocks just wrote (Gauss-Seidel style).  Asynchronous LP
converges faster and cannot oscillate on bipartite structures — the classic
trade-off against the bulk-synchronous model GPUs prefer.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.cpumodel import CPUEngineBase, CPUSpec, XEON_W2133
from repro.core.api import LPProgram, validate_program
from repro.core.results import IterationStats, LPResult
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import PerfCounters
from repro.kernels import mfl


class SerialEngine(CPUEngineBase):
    """One core, synchronous updates, no synchronization overhead."""

    name = "Serial"

    def __init__(self, spec: CPUSpec = XEON_W2133) -> None:
        super().__init__(spec)

    def _iteration_seconds(
        self, graph: CSRGraph, *, active_edges: int, active_vertices: int
    ) -> float:
        return (
            active_edges / self.spec.edges_per_core_per_second
            + active_vertices * self.spec.per_vertex_overhead
        )


class BlockAsyncSerialEngine(SerialEngine):
    """Block-asynchronous (Gauss-Seidel) LP.

    Each iteration sweeps the vertex set in ``num_blocks`` contiguous
    blocks; block ``i+1`` reads the labels block ``i`` just produced.
    With ``num_blocks == 1`` this degenerates to the synchronous engine.
    """

    name = "Serial-Async"

    def __init__(
        self, spec: CPUSpec = XEON_W2133, *, num_blocks: int = 8
    ) -> None:
        super().__init__(spec)
        if num_blocks <= 0:
            raise ConvergenceError("num_blocks must be positive")
        self.num_blocks = num_blocks

    def run(
        self,
        graph: CSRGraph,
        program: LPProgram,
        *,
        max_iterations: int = 20,
        record_history: bool = False,
        stop_on_convergence: bool = True,
    ) -> LPResult:
        if max_iterations <= 0:
            raise ConvergenceError("max_iterations must be positive")
        labels = program.init_labels(graph)
        program.init_state(graph, labels)
        validate_program(program, graph, labels)

        bounds = np.linspace(
            0, graph.num_vertices, self.num_blocks + 1
        ).astype(np.int64)
        iterations: List[IterationStats] = []
        history = [] if record_history else None
        converged = False

        for iteration in range(1, max_iterations + 1):
            before = labels.copy()
            picked = program.pick_labels(graph, labels, iteration)
            working = picked.astype(labels.dtype, copy=True)
            current = labels
            for b in range(self.num_blocks):
                block = np.arange(bounds[b], bounds[b + 1], dtype=np.int64)
                if block.size == 0:
                    continue
                batch = mfl.expand_edges(graph, block)
                # Asynchrony: the MFL reads `working`, which already holds
                # the labels earlier blocks produced this sweep.
                groups = mfl.aggregate_label_frequencies(
                    program, batch, working
                )
                best_labels, best_scores = mfl.select_best_labels(
                    program, groups, block, working
                )
                current = program.update_vertices(
                    block, best_labels, best_scores, current
                )
                working[block] = current[block]

            program.on_iteration_end(graph, before, current, iteration)
            changed = int(np.count_nonzero(current != before))
            iteration_converged = program.converged(
                before, current, iteration
            )
            labels = current
            if history is not None:
                history.append(labels.copy())
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    seconds=self._iteration_seconds(
                        graph,
                        active_edges=graph.num_edges,
                        active_vertices=graph.num_vertices,
                    ),
                    kernel_seconds=0.0,
                    transfer_seconds=0.0,
                    changed_vertices=changed,
                    counters=PerfCounters(),
                )
            )
            if iteration_converged and stop_on_convergence:
                converged = True
                break

        return LPResult(
            labels=program.final_labels(labels),
            iterations=iterations,
            converged=converged,
            engine=self.name,
            history=history,
        )
