"""Shared scalar types and dtype conventions.

The whole library standardizes on:

* ``VERTEX_DTYPE`` (int64) for vertex identifiers and CSR offsets — the paper
  targets graphs beyond 2^31 edges, so 32-bit offsets would overflow.
* ``LABEL_DTYPE`` (int64) for label values.  Labels start out equal to vertex
  ids (classic LP initialization) and must therefore share the vertex range.
* ``WEIGHT_DTYPE`` (float64) for edge weights and label scores.

Keeping these in one module means every kernel, engine and test agrees on
array dtypes without re-deriving them.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: dtype used for vertex ids, degrees and CSR offsets.
VERTEX_DTYPE = np.int64

#: dtype used for label values.
LABEL_DTYPE = np.int64

#: dtype used for edge weights and label scores.
WEIGHT_DTYPE = np.float64

#: Sentinel meaning "no label assigned" (used by seeded LP and SLP slots).
NO_LABEL: int = -1

#: Scalar type accepted wherever a vertex id is expected.
VertexId = Union[int, np.integer]

#: Scalar type accepted wherever a label is expected.
Label = Union[int, np.integer]


def _coerce_1d(values, dtype, copy: bool, kind: str) -> np.ndarray:
    # np.asarray copies only when needed (dtype conversion); an explicit
    # np.array(..., copy=True) forces a fresh buffer.
    arr = (
        np.array(values, dtype=dtype)
        if copy
        else np.asarray(values, dtype=dtype)
    )
    arr = np.atleast_1d(arr)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D {kind} array, got shape {arr.shape}")
    return arr


def as_vertex_array(values, *, copy: bool = False) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``VERTEX_DTYPE`` array."""
    return _coerce_1d(values, VERTEX_DTYPE, copy, "vertex")


def as_label_array(values, *, copy: bool = False) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``LABEL_DTYPE`` array."""
    return _coerce_1d(values, LABEL_DTYPE, copy, "label")


def as_weight_array(values, *, copy: bool = False) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``WEIGHT_DTYPE`` array."""
    return _coerce_1d(values, WEIGHT_DTYPE, copy, "weight")
