"""Figure 7: GLP vs the in-house distributed solution on the TaoBao windows."""

from repro.bench import run_fig7
from repro.bench.datasets import WINDOW_DAYS


def test_fig7_taobao(benchmark, save_report):
    text, data = benchmark.pedantic(
        run_fig7, kwargs={"iterations": 10}, rounds=1, iterations=1
    )
    save_report("fig7_taobao", text, data)

    # GLP beats the in-house solution on every window.
    for days in WINDOW_DAYS:
        assert data[days]["speedup"] > 1.5, days

    # Paper: 8.2x average speedup with one GPU; 1.8x more with two.
    assert 5.0 < data["avg_speedup"] < 14.0, data["avg_speedup"]
    assert 1.3 < data["avg_multi"] < 3.0, data["avg_multi"]

    # The largest window exceeds device memory -> hybrid mode, and its
    # visible transfer overhead stays below 10% (Section 5.4).
    largest = data[WINDOW_DAYS[-1]]
    assert largest["mode"] == "GLP-Hybrid"
    assert largest["transfer_fraction"] is not None
    assert largest["transfer_fraction"] < 0.10
    # Smaller windows fit on the device outright.
    assert data[WINDOW_DAYS[0]]["mode"] == "GLP"
