"""Section 5.4 prose: LP occupies ~75% of the automated pipeline."""

from repro.bench import run_pipeline_share


def test_pipeline_share(benchmark, save_report):
    text, data = benchmark.pedantic(
        run_pipeline_share, kwargs={"window_days": 30}, rounds=1, iterations=1
    )
    save_report("pipeline_share", text, data)

    inhouse = data["in-house distributed"]
    glp = data["GLP (1 GPU)"]

    # Paper: "the LP component occupies 75% overhead of TaoBao's automated
    # detection pipeline" (with the production engine).
    assert 0.60 < inhouse.lp_fraction < 0.90, inhouse.lp_fraction
    # Swapping in GLP collapses the LP share.
    assert glp.lp_fraction < 0.35, glp.lp_fraction
    # Same detection quality either way (identical labels).
    assert inhouse.metrics.precision == glp.metrics.precision
    assert inhouse.metrics.recall == glp.metrics.recall
    assert inhouse.metrics.precision > 0.8
    assert inhouse.metrics.recall > 0.5
