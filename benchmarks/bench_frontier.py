"""Dense vs frontier vs auto execution on cold and warm-started runs.

The frontier engine's value proposition is the production serving loop:
consecutive sliding windows share ~99 % of their edges, the previous
detection's labels warm-start the next run, and after iteration 1 only the
delta neighborhoods stay on the frontier.  This bench drives the
:class:`~repro.pipeline.incremental.SlidingWindowDetector` once per mode
and emits the acceptance numbers as JSON:

* ``warm.edge_ratio_iter2plus`` — dense/frontier processed-edge ratio from
  iteration 2 onward (must be >= 5 on the warm-started run),
* ``warm.kernel_seconds`` per mode (frontier must be cheaper than dense),
* ``labels_identical`` — bitwise identity of final labels across modes.

Runs both under pytest (full-size, report saved) and standalone for CI::

    PYTHONPATH=src python benchmarks/bench_frontier.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import GLPEngine
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.incremental import SlidingWindowDetector
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)

MODES = ("dense", "frontier", "auto")


def _run_stats(lp_result):
    return {
        "num_iterations": lp_result.num_iterations,
        "kernel_seconds": sum(
            s.kernel_seconds for s in lp_result.iterations
        ),
        "pass_modes": [
            s.kernel_stats.get("pass_mode", "dense")
            for s in lp_result.iterations
        ],
        "frontier_sizes": [s.frontier_size for s in lp_result.iterations],
        "processed_edges": [
            s.processed_edges for s in lp_result.iterations
        ],
        "edges_iter2plus": int(
            sum(s.processed_edges for s in lp_result.iterations[1:])
        ),
    }


def run_frontier_comparison(
    *,
    num_users: int,
    num_products: int,
    num_days: int,
    transactions_per_day: int,
    window_days: int,
    seed: int = 7,
) -> dict:
    """Run cold + one warm-started slide per mode; return the comparison."""
    config = TransactionStreamConfig(
        num_users=num_users,
        num_products=num_products,
        num_days=num_days,
        transactions_per_day=transactions_per_day,
        num_rings=4,
        ring_size=8,
        seed=seed,
    )
    report: dict = {"modes": {}}
    labels: dict = {}
    for mode in MODES:
        detector = SlidingWindowDetector(
            TransactionStream(config),
            ClusterDetector(GLPEngine(frontier=mode)),
        )
        _, cold = detector.start(0, window_days)
        _, warm = detector.slide()
        report["modes"][mode] = {
            "cold": _run_stats(cold.lp_result),
            "warm": _run_stats(warm.lp_result),
        }
        labels[mode] = (cold.lp_result.labels, warm.lp_result.labels)

    report["labels_identical"] = all(
        np.array_equal(labels["dense"][phase], labels[mode][phase])
        for mode in ("frontier", "auto")
        for phase in (0, 1)
    )
    dense_tail = report["modes"]["dense"]["warm"]["edges_iter2plus"]
    frontier_tail = report["modes"]["frontier"]["warm"]["edges_iter2plus"]
    report["warm"] = {
        "edge_ratio_iter2plus": (
            dense_tail / frontier_tail if frontier_tail else float("inf")
        ),
        "kernel_seconds": {
            mode: report["modes"][mode]["warm"]["kernel_seconds"]
            for mode in MODES
        },
    }
    return report


def check_acceptance(report: dict) -> None:
    """The ISSUE's acceptance criteria, shared by pytest and smoke runs."""
    assert report["labels_identical"], "frontier labels diverged from dense"
    assert report["warm"]["edge_ratio_iter2plus"] >= 5.0, (
        "warm frontier run must process >=5x fewer edges from iteration 2"
    )
    ks = report["warm"]["kernel_seconds"]
    assert ks["frontier"] < ks["dense"], (
        "warm frontier run must have lower simulated kernel time"
    )
    warm_modes = report["modes"]["frontier"]["warm"]["pass_modes"]
    assert warm_modes[0] == "dense" and "sparse" in warm_modes


def test_frontier_vs_dense(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_frontier_comparison(
            num_users=4000,
            num_products=2000,
            num_days=16,
            transactions_per_day=2500,
            window_days=10,
        ),
        rounds=1,
        iterations=1,
    )
    check_acceptance(report)
    save_report("frontier", json.dumps(report, indent=2), report)


def main(argv) -> int:
    unknown = [a for a in argv if a != "--smoke"]
    if unknown:
        print(f"unknown arguments: {unknown}; usage: "
              f"bench_frontier.py [--smoke]", file=sys.stderr)
        return 2
    smoke = "--smoke" in argv
    if smoke:
        report = run_frontier_comparison(
            num_users=600,
            num_products=300,
            num_days=8,
            transactions_per_day=400,
            window_days=5,
        )
    else:
        report = run_frontier_comparison(
            num_users=4000,
            num_products=2000,
            num_days=16,
            transactions_per_day=2500,
            window_days=10,
        )
    check_acceptance(report)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
