"""Section 5.4's monetary argument: one GPU box vs the 32-machine cluster."""

from repro.bench.experiments import run_cost_efficiency


def test_cost_efficiency(benchmark, save_report):
    text, data = benchmark.pedantic(
        run_cost_efficiency, kwargs={"iterations": 10}, rounds=1, iterations=1
    )
    save_report("cost_efficiency", text, data)

    # The paper's price quote: $23,560 x 32 vs $3,616 -> ~208x cheaper.
    assert data["cluster_cost"] == 753_920
    assert data["glp_cost"] == 3_616
    assert 200 < data["cost_ratio"] < 215

    # GLP is both faster in absolute terms...
    assert data["glp_throughput"] > data["dist_throughput"]
    # ...and orders of magnitude better per dollar.
    assert data["perf_per_dollar_ratio"] > 100
