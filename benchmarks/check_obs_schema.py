#!/usr/bin/env python
"""Validate observability output files against their expected schemas.

Usage::

    python benchmarks/check_obs_schema.py TRACE_JSON METRICS_JSON \
        [ADVISOR_JSON] [--analysis REPORT_JSON ...] [--bench BENCH_JSON ...] \
        [--journal JOURNAL_JSONL ...] [--slo SLO_REPORT_JSON ...] \
        [--postmortem BUNDLE_JSON ...] [--memory MEMORY_JSON ...]

Checks that ``TRACE_JSON`` is a loadable Chrome ``trace_event`` document
with at least one complete kernel span, and that ``METRICS_JSON`` is a
metrics registry dump carrying the iteration-time histogram with its
percentile fields.  With the optional third argument, also checks that
``ADVISOR_JSON`` (the output of ``repro advise --json``) carries per-kernel
verdicts from the known enum and cause breakdowns that sum to each
kernel's modeled seconds.  Each ``--analysis`` argument names a sanitizer,
lint, or chaos report (``repro check --out`` / ``repro run
--sanitize-out`` / ``repro chaos --out``) to
validate against the analysis-report schema; ``--analysis`` may also be
used alone, without the trace/metrics positionals.  Each ``--bench``
argument names a ``BENCH_<scenario>.json`` baseline payload (``repro bench
run``) to validate: schema version, required payload fields, counters, and
advisor verdicts — plus, for ``warm_windows_incremental``, the incremental
serving gates (labels identical to the full recompute, >=5x fewer
processed edges, lower modeled seconds).  ``--journal`` validates an
event-journal JSONL (``repro pipeline --journal-out``): ``journal.meta``
header, envelope keys, strictly increasing ``seq``, and a consistent
``run_id``.  ``--slo`` validates an SLO verdict report (``repro pipeline
--slo-out``) as an analysis report with ``source == "slo"`` plus per-SLO
verdicts.  ``--postmortem`` validates a flight-recorder bundle
(``postmortem-NNN.json`` under ``--flight-dir``).  ``--memory`` validates
a device-memory watermark report (``--mem-out``): category enum, exact
per-event reconciliation of live bytes against ``Device.allocated_bytes``,
a peak explained by the event timeline, and the embedded planner-accuracy
rows.  Exits non-zero with a
message on the first violation — this is the CI gate for ``run
--trace-out/--metrics-out``, ``advise --json``, the sanitize-gate
artifacts, and the perf-gate bench payloads.
"""

from __future__ import annotations

import json
import os
import sys

#: Derived enum file written by ``python -m repro.analysis.consistency
#: --write``; the single source of truth for rule/source/severity/category/
#: event enums.  The script stays standalone (stdlib only): the enums are
#: *derived from* the code by the consistency analyzer, committed next to
#: this script, and kept fresh by the CI static-gate.
_ENUMS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "obs_schema_enums.json"
)


def _load_enums() -> dict:
    try:
        with open(_ENUMS_PATH) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        print(
            f"check_obs_schema: FAIL: cannot load derived enums "
            f"{_ENUMS_PATH}: {error}",
            file=sys.stderr,
        )
        raise SystemExit(1)


_ENUMS = _load_enums()

# Kept in sync with repro.obs.advisor by tests/obs/test_advisor.py; the
# script stays standalone (no repo imports) so CI can run it anywhere.
KERNEL_VERDICTS = {
    "memory-bound",
    "compute-bound",
    "divergence-bound",
    "conflict-bound",
    "atomic-bound",
    "latency-bound",
}
CAUSE_KEYS = {
    "global_memory",
    "compute_issue",
    "divergence",
    "bank_conflicts",
    "atomics",
    "launch_overhead",
}
FINDING_KEYS = ("kernel", "verdict", "seconds", "severity", "message", "hint")

# Derived from repro.analysis.findings via obs_schema_enums.json; the
# consistency analyzer (``repro check --all``) fails CI when these drift.
ANALYSIS_RULES = set(_ENUMS["analysis"]["rules"])
ANALYSIS_SOURCES = set(_ENUMS["analysis"]["sources"])
ANALYSIS_SEVERITIES = tuple(_ENUMS["analysis"]["severities"])
ANALYSIS_SCHEMA_VERSION = 1

# Journal event names any pipeline run may emit (plus the meta header),
# derived from the obs.emit() call sites.
JOURNAL_EVENTS = set(_ENUMS["journal"]["events"])

# Kept in sync with repro.obs.journal / repro.obs.flight by
# tests/obs/test_journal.py and tests/obs/test_flight.py.
JOURNAL_SCHEMA_VERSION = 1
JOURNAL_ENVELOPE_KEYS = ("seq", "ts_us", "event", "run_id", "slide_id",
                         "attempt_id")
FLIGHT_SCHEMA_VERSION = 1
POSTMORTEM_KEYS = ("schema_version", "trigger", "run_id", "slide_id",
                   "attempt_id", "details", "context", "fault_plan",
                   "metrics", "memory", "events")
TRACE_SCHEMA_VERSION = 1
METRICS_SCHEMA_VERSION = 1

# Category enum derived from repro.obs.memory via obs_schema_enums.json.
MEMORY_SCHEMA_VERSION = 1
MEMORY_CATEGORIES = set(_ENUMS["memory"]["categories"])
MEMORY_DEVICE_KEYS = (
    "device", "capacity_bytes", "live_bytes", "peak_bytes", "peak_ts",
    "peak_fraction", "categories_at_peak", "category_peaks", "num_events",
    "reconciled", "mismatches", "transfers", "events",
)
MEMORY_EVENT_KEYS = (
    "ts", "op", "device", "live_bytes", "device_allocated_bytes",
    "reconciled",
)
MEMORY_ACCURACY_KEYS = (
    "engine", "device", "source", "predicted_bytes",
    "measured_peak_bytes", "error_ratio", "within_threshold",
)

# Kept in sync with repro.bench.baseline (SCHEMA_VERSION / result_payload)
# by tests/bench/test_baseline.py.
BENCH_SCHEMA_VERSION = 1
BENCH_REQUIRED_KEYS = (
    "scenario", "engine", "algorithm", "dataset", "num_vertices",
    "num_edges", "iterations", "converged", "labels_hash",
    "num_communities", "total_seconds", "seconds_per_iteration",
    "counters", "advisor",
)
BENCH_COUNTER_KEYS = (
    "global_transactions", "global_atomic_serialized_ops",
    "shared_atomic_serialized_ops", "shared_bank_conflicts",
    "lane_utilization", "h2d_bytes", "d2h_bytes",
)
ANALYSIS_FINDING_KEYS = (
    "rule", "severity", "message", "kernel", "array", "space",
    "offset", "location", "actors", "count",
)


def fail(message: str):
    print(f"check_obs_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != TRACE_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{TRACE_SCHEMA_VERSION}"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        fail(f"{path}: no complete ('X') spans")
    for event in complete:
        for key in ("name", "cat", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{path}: span {event.get('name')!r} missing {key!r}")
        if event["dur"] < 0:
            fail(f"{path}: span {event['name']!r} has negative duration")
    kernels = [e for e in complete if e.get("cat") == "kernel"]
    if not kernels:
        fail(f"{path}: no kernel spans — device hooks did not fire")
    print(
        f"check_obs_schema: {path}: OK "
        f"({len(complete)} spans, {len(kernels)} kernel)"
    )


def check_metrics(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != METRICS_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{METRICS_SCHEMA_VERSION}"
        )
    series = doc.get("metrics")
    if not isinstance(series, list) or not series:
        fail(f"{path}: metrics list missing or empty")
    for metric in series:
        for key in ("name", "type", "labels"):
            if key not in metric:
                fail(f"{path}: series missing {key!r}: {metric}")
    histograms = [
        m for m in series
        if m["name"] == "engine_iteration_seconds"
        and m["type"] == "histogram"
    ]
    if not histograms:
        fail(f"{path}: engine_iteration_seconds histogram not found")
    for hist in histograms:
        for key in ("count", "sum", "p50", "p95", "p99"):
            if key not in hist:
                fail(f"{path}: iteration histogram missing {key!r}")
        if hist["count"] < 1:
            fail(f"{path}: iteration histogram recorded no observations")
    print(f"check_obs_schema: {path}: OK ({len(series)} series)")


def check_advisor(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        fail(f"{path}: kernels list missing or empty")
    for kernel in kernels:
        name = kernel.get("name")
        if not name:
            fail(f"{path}: kernel entry without a name")
        if kernel.get("verdict") not in KERNEL_VERDICTS:
            fail(
                f"{path}: kernel {name!r} has unknown verdict "
                f"{kernel.get('verdict')!r}"
            )
        causes = kernel.get("causes")
        if not isinstance(causes, dict) or set(causes) != CAUSE_KEYS:
            fail(f"{path}: kernel {name!r} has malformed causes dict")
        if abs(sum(causes.values()) - kernel.get("seconds", 0.0)) > 1e-9:
            fail(
                f"{path}: kernel {name!r} causes do not sum to its "
                f"modeled seconds"
            )
    fraction = doc.get("transfer_fraction")
    if not isinstance(fraction, (int, float)) or not 0.0 <= fraction <= 1.0:
        fail(f"{path}: transfer_fraction missing or out of [0, 1]")
    for finding in doc.get("findings", []):
        for key in FINDING_KEYS:
            if key not in finding:
                fail(f"{path}: finding missing {key!r}: {finding}")
    print(
        f"check_obs_schema: {path}: OK "
        f"({len(kernels)} kernels, {len(doc.get('findings', []))} findings)"
    )


def check_analysis(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != ANALYSIS_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{ANALYSIS_SCHEMA_VERSION}"
        )
    if doc.get("source") not in ANALYSIS_SOURCES:
        fail(f"{path}: unknown source {doc.get('source')!r}")
    checked = doc.get("checked")
    if not isinstance(checked, int) or checked < 0:
        fail(f"{path}: 'checked' missing or negative")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        fail(f"{path}: findings list missing")
    severities = {severity: 0 for severity in ANALYSIS_SEVERITIES}
    for finding in findings:
        for key in ANALYSIS_FINDING_KEYS:
            if key not in finding:
                fail(f"{path}: finding missing {key!r}: {finding}")
        if finding["rule"] not in ANALYSIS_RULES:
            fail(f"{path}: unknown rule {finding['rule']!r}")
        if finding["severity"] not in severities:
            fail(f"{path}: unknown severity {finding['severity']!r}")
        severities[finding["severity"]] += 1
        if not finding["location"] and not finding["kernel"]:
            fail(f"{path}: finding {finding['rule']!r} has no anchor "
                 f"(neither location nor kernel)")
        actors = finding["actors"]
        if not isinstance(actors, list) or any(
            not isinstance(a, list) or len(a) != 2 for a in actors
        ):
            fail(f"{path}: malformed actors for {finding['rule']!r}")
    for key, severity in (
        ("num_errors", "error"),
        ("num_warnings", "warning"),
        ("num_infos", "info"),
    ):
        expected = severities.get(severity, 0)
        if doc.get(key, 0) != expected:
            fail(
                f"{path}: {key}={doc.get(key)!r} does not match the "
                f"findings list ({expected})"
            )
    rules = doc.get("rules")
    if not isinstance(rules, dict) or set(rules) - ANALYSIS_RULES:
        fail(f"{path}: rules histogram missing or carries unknown rules")
    if sum(rules.values()) != len(findings):
        fail(f"{path}: rules histogram does not sum to the findings count")
    print(
        f"check_obs_schema: {path}: OK ({doc['source']}, {checked} checked, "
        f"{severities['error']} error(s), {severities['warning']} warning(s))"
    )


def check_journal(path: str) -> None:
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        fail(f"{path}: journal is empty")
    records = []
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"{path}: line {i + 1} is not valid JSON: {error}")
        if not isinstance(record, dict):
            fail(f"{path}: line {i + 1} is not a JSON object")
        records.append(record)
    meta = records[0]
    if meta.get("event") != "journal.meta":
        fail(f"{path}: first line must be the 'journal.meta' header")
    if meta.get("schema_version") != JOURNAL_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {meta.get('schema_version')!r} != "
            f"{JOURNAL_SCHEMA_VERSION}"
        )
    run_id = meta.get("run_id")
    if not run_id or not isinstance(run_id, str):
        fail(f"{path}: journal.meta header missing run_id")
    events = records[1:]
    if not events:
        fail(f"{path}: no events after the journal.meta header")
    last_seq = 0
    for record in events:
        for key in JOURNAL_ENVELOPE_KEYS:
            if key not in record:
                fail(
                    f"{path}: event {record.get('event')!r} missing "
                    f"envelope key {key!r}"
                )
        if record["run_id"] != run_id:
            fail(
                f"{path}: event {record['event']!r} run_id "
                f"{record['run_id']!r} != header {run_id!r}"
            )
        if record["event"] not in JOURNAL_EVENTS:
            fail(
                f"{path}: event name {record['event']!r} is not in the "
                "derived journal-event enum"
            )
        seq = record["seq"]
        if not isinstance(seq, int) or seq <= last_seq:
            fail(
                f"{path}: event {record['event']!r} seq {seq!r} not "
                f"strictly increasing (last {last_seq})"
            )
        last_seq = seq
        if not isinstance(record["ts_us"], int) or record["ts_us"] < 0:
            fail(f"{path}: event {record['event']!r} has bad ts_us")
    slides = {r["slide_id"] for r in events if r["slide_id"]}
    print(
        f"check_obs_schema: {path}: OK "
        f"({len(events)} events, {len(slides)} slide(s), run {run_id})"
    )


def check_slo(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("source") != "slo":
        fail(f"{path}: source {doc.get('source')!r} != 'slo'")
    check_analysis(path)
    verdicts = doc.get("verdicts")
    if not isinstance(verdicts, list) or not verdicts:
        fail(f"{path}: verdicts list missing or empty")
    for verdict in verdicts:
        for key in ("name", "kind", "objective", "ok", "measured",
                    "missing", "alerting"):
            if key not in verdict:
                fail(
                    f"{path}: verdict {verdict.get('name')!r} missing "
                    f"{key!r}"
                )
    print(f"check_obs_schema: {path}: OK ({len(verdicts)} SLO verdict(s))")


def check_postmortem(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != FLIGHT_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{FLIGHT_SCHEMA_VERSION}"
        )
    for key in POSTMORTEM_KEYS:
        if key not in doc:
            fail(f"{path}: post-mortem bundle missing {key!r}")
    events = doc["events"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: post-mortem carries no flight-recorder events")
    for event in events:
        if "event" not in event or "seq" not in event:
            fail(f"{path}: malformed flight-recorder event: {event}")
    print(
        f"check_obs_schema: {path}: OK "
        f"(trigger {doc['trigger']!r}, {len(events)} events)"
    )


def check_memory(path: str) -> None:
    """Validate a ``--mem-out`` device-memory watermark report.

    The reconciliation contract is load-bearing: per-category live bytes
    must equal ``Device.allocated_bytes`` at every tracked event, and the
    tracked peak must be reachable from the event timeline.  The embedded
    planner-accuracy gate re-validates as an analysis report.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != MEMORY_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{MEMORY_SCHEMA_VERSION}"
        )
    categories = doc.get("categories")
    if not isinstance(categories, list) or set(categories) != (
        MEMORY_CATEGORIES
    ):
        fail(f"{path}: categories enum out of sync: {categories!r}")
    if doc.get("reconciled") is not True:
        fail(f"{path}: watermark report is not reconciled")
    devices = doc.get("devices")
    if not isinstance(devices, list) or not devices:
        fail(f"{path}: devices list missing or empty")
    total_events = 0
    for dev in devices:
        for key in MEMORY_DEVICE_KEYS:
            if key not in dev:
                fail(f"{path}: device entry missing {key!r}")
        idx = dev["device"]
        if dev["reconciled"] is not True or dev["mismatches"] != 0:
            fail(f"{path}: gpu{idx} has unreconciled events")
        for block in (dev["categories_at_peak"], dev["category_peaks"]):
            unknown = set(block) - MEMORY_CATEGORIES
            if unknown:
                fail(f"{path}: gpu{idx} has unknown categories {unknown}")
        events = dev["events"]
        if not isinstance(events, list):
            fail(f"{path}: gpu{idx} events must be a list")
        last_ts = float("-inf")
        seen_peak = 0
        for event in events:
            for key in MEMORY_EVENT_KEYS:
                if key not in event:
                    fail(
                        f"{path}: gpu{idx} event {event.get('op')!r} "
                        f"missing {key!r}"
                    )
            if event["ts"] < last_ts:
                fail(f"{path}: gpu{idx} event timeline not monotone in ts")
            last_ts = event["ts"]
            if event["live_bytes"] != event["device_allocated_bytes"]:
                fail(
                    f"{path}: gpu{idx} {event['op']!r} event: live "
                    f"{event['live_bytes']} != device "
                    f"{event['device_allocated_bytes']}"
                )
            seen_peak = max(seen_peak, event["live_bytes"])
        total_events += dev["num_events"]
        if events and len(events) == dev["num_events"]:
            # Untruncated timeline: the peak must be explained by it.
            if seen_peak != dev["peak_bytes"]:
                fail(
                    f"{path}: gpu{idx} peak {dev['peak_bytes']} not "
                    f"reached by its event timeline (max {seen_peak})"
                )
    planner = doc.get("planner")
    if not isinstance(planner, dict) or "accuracy" not in planner:
        fail(f"{path}: planner accuracy block missing")
    for row in planner["accuracy"]:
        for key in MEMORY_ACCURACY_KEYS:
            if key not in row:
                fail(f"{path}: planner accuracy row missing {key!r}")
    analysis = doc.get("analysis")
    if not isinstance(analysis, dict) or analysis.get("source") != "memory":
        fail(f"{path}: embedded analysis report missing or wrong source")
    num_rows = len(planner["accuracy"])
    print(
        f"check_obs_schema: {path}: OK ({len(devices)} device(s), "
        f"{total_events} events, {num_rows} planner prediction(s))"
    )


def check_bench(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    for key in BENCH_REQUIRED_KEYS:
        if key not in doc:
            fail(f"{path}: bench payload missing {key!r}")
    counters = doc["counters"]
    if not isinstance(counters, dict):
        fail(f"{path}: counters must be a dict")
    for key in BENCH_COUNTER_KEYS:
        if key not in counters:
            fail(f"{path}: counters missing {key!r}")
    advisor = doc["advisor"]
    for verdict in advisor.get("verdicts", {}).values():
        if verdict not in KERNEL_VERDICTS:
            fail(f"{path}: unknown advisor verdict {verdict!r}")
    if doc["scenario"] == "warm_windows_incremental":
        if doc.get("identical_to_full") is not True:
            fail(f"{path}: incremental labels not identical to full run")
        ratio = doc.get("processed_edges_ratio")
        if not isinstance(ratio, (int, float)) or ratio < 5.0:
            fail(
                f"{path}: processed_edges_ratio {ratio!r} below the "
                f"5x incremental gate"
            )
        inc = doc.get("incremental_total_seconds")
        full = doc.get("full_total_seconds")
        if (
            not isinstance(inc, (int, float))
            or not isinstance(full, (int, float))
            or inc >= full
        ):
            fail(
                f"{path}: incremental modeled seconds ({inc!r}) not below "
                f"the full recompute ({full!r})"
            )
    print(f"check_obs_schema: {path}: OK (scenario {doc['scenario']!r})")


def _extract_flag(args: list, flag: str):
    paths = []
    while flag in args:
        i = args.index(flag)
        if i + 1 >= len(args):
            print(__doc__)
            sys.exit(2)
        paths.append(args[i + 1])
        del args[i:i + 2]
    return paths


def main(argv) -> int:
    args = list(argv[1:])
    analysis_paths = _extract_flag(args, "--analysis")
    bench_paths = _extract_flag(args, "--bench")
    journal_paths = _extract_flag(args, "--journal")
    slo_paths = _extract_flag(args, "--slo")
    postmortem_paths = _extract_flag(args, "--postmortem")
    memory_paths = _extract_flag(args, "--memory")
    optional_only = (
        analysis_paths or bench_paths or journal_paths or slo_paths
        or postmortem_paths or memory_paths
    )
    if len(args) not in ((0, 2, 3) if optional_only else (2, 3)):
        print(__doc__)
        return 2
    if args:
        check_trace(args[0])
        check_metrics(args[1])
    if len(args) == 3:
        check_advisor(args[2])
    for path in analysis_paths:
        check_analysis(path)
    for path in bench_paths:
        check_bench(path)
    for path in journal_paths:
        check_journal(path)
    for path in slo_paths:
        check_slo(path)
    for path in postmortem_paths:
        check_postmortem(path)
    for path in memory_paths:
        check_memory(path)
    print("check_obs_schema: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
