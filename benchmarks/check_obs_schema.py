#!/usr/bin/env python
"""Validate observability output files against their expected schemas.

Usage::

    python benchmarks/check_obs_schema.py TRACE_JSON METRICS_JSON

Checks that ``TRACE_JSON`` is a loadable Chrome ``trace_event`` document
with at least one complete kernel span, and that ``METRICS_JSON`` is a
metrics registry dump carrying the iteration-time histogram with its
percentile fields.  Exits non-zero with a message on the first violation —
this is the CI gate for ``run --trace-out/--metrics-out``.
"""

from __future__ import annotations

import json
import sys


def fail(message: str):
    print(f"check_obs_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        fail(f"{path}: no complete ('X') spans")
    for event in complete:
        for key in ("name", "cat", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{path}: span {event.get('name')!r} missing {key!r}")
        if event["dur"] < 0:
            fail(f"{path}: span {event['name']!r} has negative duration")
    kernels = [e for e in complete if e.get("cat") == "kernel"]
    if not kernels:
        fail(f"{path}: no kernel spans — device hooks did not fire")
    print(
        f"check_obs_schema: {path}: OK "
        f"({len(complete)} spans, {len(kernels)} kernel)"
    )


def check_metrics(path: str) -> None:
    with open(path) as fh:
        doc = json.load(fh)
    series = doc.get("metrics")
    if not isinstance(series, list) or not series:
        fail(f"{path}: metrics list missing or empty")
    for metric in series:
        for key in ("name", "type", "labels"):
            if key not in metric:
                fail(f"{path}: series missing {key!r}: {metric}")
    histograms = [
        m for m in series
        if m["name"] == "engine_iteration_seconds"
        and m["type"] == "histogram"
    ]
    if not histograms:
        fail(f"{path}: engine_iteration_seconds histogram not found")
    for hist in histograms:
        for key in ("count", "sum", "p50", "p95", "p99"):
            if key not in hist:
                fail(f"{path}: iteration histogram missing {key!r}")
        if hist["count"] < 1:
            fail(f"{path}: iteration histogram recorded no observations")
    print(f"check_obs_schema: {path}: OK ({len(series)} series)")


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    check_trace(argv[1])
    check_metrics(argv[2])
    print("check_obs_schema: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
