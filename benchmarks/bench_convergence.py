"""Convergence dynamics: the mechanism behind the Section 4.1 observation.

"As more iterations are executed, neighbors of a vertex often share similar
labels since they are likely to be assigned in the same community."  This
bench traces, per iteration, the quantities that statement is about —
changed vertices, distinct labels per neighborhood (``m``), MFL share
(``f_max / degree``) — and additionally shows the classic synchronous-LP
pathology (a persistent boundary-oscillation set) that the block-
asynchronous reference engine eliminates.
"""

import numpy as np

from repro import ClassicLP, GLPEngine
from repro.baselines.cpu_serial import BlockAsyncSerialEngine
from repro.bench.datasets import load_dataset
from repro.bench.report import format_table
from repro.graph.stats import neighborhood_label_concentration


def test_convergence_dynamics(benchmark, save_report):
    graph = load_dataset("dblp")

    def trace():
        sync_result = GLPEngine().run(
            graph, ClassicLP(), max_iterations=20,
            stop_on_convergence=False, record_history=True,
        )
        async_result = BlockAsyncSerialEngine(num_blocks=8).run(
            graph, ClassicLP(), max_iterations=20,
            stop_on_convergence=False, record_history=True,
        )
        rows = []
        for i, labels in enumerate(sync_result.history):
            distinct_ratio, mfl_share = neighborhood_label_concentration(
                graph, labels, sample=400, seed=1
            )
            rows.append(
                (
                    i + 1,
                    sync_result.iterations[i].changed_vertices,
                    async_result.iterations[i].changed_vertices,
                    f"{distinct_ratio:.3f}",
                    f"{mfl_share:.3f}",
                    np.unique(labels).size,
                )
            )
        return rows

    rows = benchmark.pedantic(trace, rounds=1, iterations=1)
    text = format_table(
        ["iteration", "changed (sync)", "changed (async)",
         "m/degree", "f_max/degree", "communities"],
        rows,
        title="Convergence dynamics (dblp stand-in, classic LP)",
    )
    text += (
        "\nThe synchronous engine retains a boundary-oscillation set "
        "(vertices flipping between two equal-frequency labels); the "
        "block-asynchronous engine drains it."
    )
    save_report("convergence_dynamics", text, rows)

    sync_changed = [r[1] for r in rows]
    async_changed = [r[2] for r in rows]
    distinct = [float(r[3]) for r in rows]
    share = [float(r[4]) for r in rows]
    communities = [r[5] for r in rows]

    # Label churn collapses (but synchronously plateaus at the
    # oscillation set)...
    assert sync_changed[-1] < sync_changed[0] / 3
    # ...which the asynchronous schedule eliminates almost entirely.
    assert async_changed[-1] < sync_changed[-1] / 5
    # Neighborhood label diversity shrinks (m falls)...
    assert distinct[-1] < distinct[0] * 0.6
    # ...the MFL dominates neighborhoods (f_max grows)...
    assert share[-1] > 1.8 * share[0]
    # ...and the community count stabilizes far below n.
    assert communities[-1] < graph.num_vertices / 5
    assert abs(communities[-1] - communities[-2]) <= max(
        communities[-2] * 0.1, 5
    )
