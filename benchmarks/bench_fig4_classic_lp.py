"""Figure 4: speedup over OMP for classic LP, six approaches."""

from repro.bench import run_fig4


def test_fig4_classic_lp(benchmark, save_report):
    text, speedups = benchmark.pedantic(
        run_fig4, kwargs={"iterations": 8}, rounds=1, iterations=1
    )
    save_report("fig4_classic_lp", text, speedups)

    import numpy as np

    for dataset, per_approach in speedups.items():
        # GLP is the fastest approach on every dataset (paper: "GLP
        # achieves the best performance").
        assert max(per_approach, key=per_approach.get) == "GLP", dataset
        # TG is slower than OMP; Ligra is in OMP's ballpark.
        assert per_approach["TG"] < 1.0, dataset
        assert per_approach["Ligra"] > 0.5, dataset

    # Paper: 4.5x over G-Sort and 7x over G-Hash on average.
    gsort = np.mean([p["GLP"] / p["G-Sort"] for p in speedups.values()])
    ghash = np.mean([p["GLP"] / p["G-Hash"] for p in speedups.values()])
    assert 2.0 < gsort < 9.0, gsort
    assert 3.5 < ghash < 14.0, ghash
