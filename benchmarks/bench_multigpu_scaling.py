"""Multi-GPU scaling curve (extends the paper's single 2-GPU data point).

Section 5.4 reports one extra point: two GPUs give 1.8x.  This bench sweeps
1..8 devices on the largest Table 2 stand-in and records where the label
exchange flattens the curve — the communication/computation crossover the
1.8x figure is a sample of.
"""

import numpy as np

from repro import ClassicLP
from repro.bench.datasets import load_dataset
from repro.bench.report import format_table
from repro.core.multigpu import MultiGPUEngine


def test_multigpu_scaling(benchmark, save_report):
    graph = load_dataset("twitter")

    def sweep():
        rows = []
        reference = None
        times = {}
        for num_gpus in (1, 2, 4, 8):
            engine = MultiGPUEngine(num_gpus)
            result = engine.run(
                graph, ClassicLP(), max_iterations=6,
                stop_on_convergence=False,
            )
            if reference is None:
                reference = result.labels
                base = result.seconds_per_iteration
            assert np.array_equal(result.labels, reference)
            times[num_gpus] = result.seconds_per_iteration
            rows.append(
                (
                    num_gpus,
                    f"{result.seconds_per_iteration * 1e6:.2f}",
                    f"{base / result.seconds_per_iteration:.2f}x",
                )
            )
        return rows, times

    rows, times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["GPUs", "us/iteration", "speedup vs 1 GPU"],
        rows,
        title="Multi-GPU scaling (twitter stand-in, classic LP)",
    )
    save_report("multigpu_scaling", text, {"rows": rows, "times": times})

    # Monotone improvement...
    assert times[2] < times[1]
    assert times[4] < times[2]
    # ...with sub-linear scaling from the label exchange (paper: 1.8x at 2).
    assert 1.3 < times[1] / times[2] < 2.05
    assert times[1] / times[8] < 8.0
