"""Table 4: sliding-window workload shapes."""

from repro.bench import run_table4
from repro.bench.datasets import PAPER_TABLE4, WINDOW_DAYS


def test_table4_windows(benchmark, save_report):
    text, data = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_report("table4_windows", text, data)

    # Monotone growth in both V and E, like the paper's windows.
    vertices = [data[d][0] for d in WINDOW_DAYS]
    edges = [data[d][1] for d in WINDOW_DAYS]
    assert vertices == sorted(vertices)
    assert edges == sorted(edges)

    # Growth shape: E grows much faster than V (vertices saturate as the
    # same users/products recur; paper: V x2.2 and E x6.3 from 10d to 100d).
    v_growth = vertices[-1] / vertices[0]
    e_growth = edges[-1] / edges[0]
    assert 1.2 < v_growth < 4.0
    assert 4.0 < e_growth < 12.0
    assert e_growth > 2 * v_growth
