"""Detection quality of the LP variants on LFR benchmarks.

The paper evaluates *performance* of classic LP / LLP / SLP; this extension
bench evaluates their *quality* on the community-detection community's
standard testbed (LFR graphs over a mixing-parameter sweep), confirming the
variants behave as their source papers describe:

* all variants recover communities at low mixing and degrade as ``mu``
  grows;
* LLP produces finer partitions than classic LP (its design goal);
* quality is engine-independent (GPU == CPU labels, so NMI is identical).
"""

import numpy as np

from repro import ClassicLP, GLPEngine, LayeredLP, SpeakerListenerLP
from repro.bench.report import format_table
from repro.graph.generators.lfr import lfr_graph
from repro.graph.quality import modularity, normalized_mutual_information


def test_quality_on_lfr(benchmark, save_report):
    def sweep():
        rows = []
        data = {}
        for mu in (0.1, 0.3, 0.5):
            graph, truth = lfr_graph(800, mu=mu, seed=11)
            for program_factory, label in (
                (lambda: ClassicLP(), "classic"),
                (lambda: LayeredLP(gamma=1.0), "llp"),
                (lambda: SpeakerListenerLP(seed=1), "slp"),
            ):
                result = GLPEngine().run(
                    graph, program_factory(), max_iterations=15,
                    stop_on_convergence=False,
                )
                nmi = normalized_mutual_information(result.labels, truth)
                q = modularity(graph, result.labels)
                communities = int(np.unique(result.labels).size)
                data[(mu, label)] = (nmi, q, communities)
                rows.append(
                    (f"{mu:.1f}", label, f"{nmi:.3f}", f"{q:.3f}",
                     communities)
                )
        return rows, data

    rows, data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["mu", "variant", "NMI vs truth", "modularity", "communities"],
        rows,
        title="LP variant quality on LFR benchmarks (extension experiment)",
    )
    save_report("quality_lfr", text, rows)

    # Quality degrades with mixing for every variant.
    for label in ("classic", "llp", "slp"):
        assert data[(0.1, label)][0] > data[(0.5, label)][0]
    # Everything is respectable at mu=0.1.
    assert data[(0.1, "classic")][0] > 0.6
    # LLP partitions at least as finely as classic LP (its design goal).
    assert data[(0.3, "llp")][2] >= data[(0.3, "classic")][2]
