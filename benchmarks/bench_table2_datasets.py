"""Table 2: dataset inventory (paper shapes vs scaled stand-ins)."""

from repro.bench import run_table2


def test_table2_datasets(benchmark, save_report):
    text, rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_report("table2_datasets", text, rows)

    # Shape: the stand-ins preserve the paper's average-degree ordering —
    # roadNet smallest, aligraph by far the largest.
    by_name = {row[0]: row for row in rows}
    ours_avg = {name: row[6] for name, row in by_name.items()}
    assert min(ours_avg, key=ours_avg.get) == "roadNet"
    assert max(ours_avg, key=ours_avg.get) == "aligraph"
    assert ours_avg["aligraph"] > 4 * ours_avg["twitter"]
    # And the V/E ranking of the paper's large graphs.
    assert by_name["twitter"][5] > by_name["wiki-en"][5] > by_name["uk-2002"][5]
