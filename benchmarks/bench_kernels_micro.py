"""Micro-benchmarks: wall-clock cost of the simulator's hot paths.

Unlike the table/figure reproductions (which report *modeled* device time),
these measure the real wall-clock of the simulation itself, so regressions
in the vectorized kernels show up in ``pytest-benchmark`` history.
"""

import numpy as np
import pytest

from repro import ClassicLP
from repro.bench.datasets import load_dataset
from repro.gpusim.device import Device
from repro.kernels.base import GLP_DEFAULT, KernelContext
from repro.kernels.mfl import aggregate_label_frequencies, expand_edges
from repro.kernels.propagate import propagate_pass


@pytest.fixture(scope="module")
def twitter_graph():
    return load_dataset("twitter")


@pytest.fixture(scope="module")
def twitter_labels(twitter_graph):
    rng = np.random.default_rng(0)
    # Mid-convergence label distribution: ~100 communities.
    return rng.integers(
        0, 100, twitter_graph.num_vertices, dtype=np.int64
    )


def test_bench_edge_expansion(benchmark, twitter_graph):
    result = benchmark(expand_edges, twitter_graph)
    assert result.num_edges == twitter_graph.num_edges


def test_bench_label_aggregation(benchmark, twitter_graph, twitter_labels):
    program = ClassicLP()
    batch = expand_edges(twitter_graph)

    result = benchmark(
        aggregate_label_frequencies, program, batch, twitter_labels
    )
    assert result.num_groups > 0


def test_bench_glp_propagate_pass(benchmark, twitter_graph, twitter_labels):
    program = ClassicLP()

    def one_pass():
        ctx = KernelContext(
            device=Device(),
            graph=twitter_graph,
            current_labels=twitter_labels,
            program=program,
            config=GLP_DEFAULT,
        )
        return propagate_pass(ctx)

    result = benchmark.pedantic(one_pass, rounds=3, iterations=1)
    assert result.best_labels.size == twitter_graph.num_vertices
