"""Figure 6: speedup over OMP for SLP (speaker-listener)."""

from repro.bench import run_fig6


def test_fig6_slp(benchmark, save_report):
    text, speedups = benchmark.pedantic(
        run_fig6, kwargs={"iterations": 5}, rounds=1, iterations=1
    )
    save_report("fig6_slp", text, speedups)

    for dataset, per_approach in speedups.items():
        # Consistent with classic LP: GLP fastest, GPU baselines beaten.
        assert max(per_approach, key=per_approach.get) == "GLP", dataset
        assert "TG" not in per_approach
        assert per_approach["GLP"] > per_approach["G-Hash"], dataset
