"""Figure 5: speedup over OMP for LLP (gamma sweep)."""

from repro.bench import run_fig5


def test_fig5_llp(benchmark, save_report):
    text, speedups = benchmark.pedantic(
        run_fig5, kwargs={"iterations": 5}, rounds=1, iterations=1
    )
    save_report("fig5_llp", text, speedups)

    for dataset, per_approach in speedups.items():
        # Paper: "For LLP ... the results are consistent with those of
        # classic LP" — GLP stays the fastest; TG is absent (classic-only).
        assert max(per_approach, key=per_approach.get) == "GLP", dataset
        assert "TG" not in per_approach
        assert per_approach["GLP"] > per_approach["G-Sort"], dataset
        assert per_approach["GLP"] > per_approach["G-Hash"], dataset
