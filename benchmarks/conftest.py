"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one paper table/figure: the experiment
runs once under ``benchmark.pedantic`` (wall-clock of the full simulated
experiment), asserts the paper's qualitative shape, and writes the rendered
report to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered experiment report under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[report saved to benchmarks/results/{name}.txt]")

    return _save
