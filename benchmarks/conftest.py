"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one paper table/figure: the experiment
runs once under ``benchmark.pedantic`` (wall-clock of the full simulated
experiment), asserts the paper's qualitative shape, and writes the rendered
report to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    """Persist an experiment report under benchmarks/results/.

    Every report goes through the one shared serializer
    (:func:`repro.bench.report.write_report`): the rendered text lands in
    ``<name>.txt`` and, when the experiment passes its raw ``data``, a
    machine-readable ``<name>.json`` sidecar lands next to it.
    """
    from repro.bench.report import write_report

    def _save(name: str, text: str, data=None) -> None:
        paths = write_report(RESULTS_DIR, name, text, data)
        written = ", ".join(
            f"benchmarks/results/{p.name}" for p in paths
        )
        print(f"\n{text}\n[report saved to {written}]")

    return _save
