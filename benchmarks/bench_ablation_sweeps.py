"""Design-choice ablations beyond the paper's Table 3.

DESIGN.md calls out four tunables the paper fixes without sweeping; these
benches sweep each and record how the modeled performance and the kernel
statistics respond:

* HT capacity ``h`` — Lemma 1 says fallbacks vanish exponentially in ``h``;
* CMS depth ``d`` — Lemma 2 says false positives fall as ``2^-d``;
* the low/high degree thresholds of the kernel scheduler;
* the three low-degree scheduling strategies of Section 4.2.
"""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine
from repro.bench.datasets import load_dataset
from repro.bench.report import format_table
from repro.kernels.base import StrategyConfig


def run_with(graph, config, iterations=6):
    engine = GLPEngine(config=config)
    result = engine.run(
        graph, ClassicLP(), max_iterations=iterations,
        stop_on_convergence=False,
    )
    fallbacks = sum(
        s.kernel_stats.get("smem_fallback_vertices", 0)
        for s in result.iterations
    )
    high = sum(
        s.kernel_stats.get("smem_high_vertices", 0)
        for s in result.iterations
    )
    return result, (fallbacks / high if high else 0.0)


def test_ht_capacity_sweep(benchmark, save_report):
    """Larger HTs mean fewer global fallbacks (Lemma 1's exponential)."""
    graph = load_dataset("twitter")

    def sweep():
        rows = []
        for capacity in (8, 32, 128, 512):
            config = StrategyConfig(ht_capacity=capacity)
            result, fallback_rate = run_with(graph, config)
            rows.append(
                (capacity, f"{fallback_rate:.2%}",
                 f"{result.seconds_per_iteration * 1e6:.2f}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["HT capacity h", "fallback rate", "us/iteration"],
        rows,
        title="Ablation: shared-memory HT capacity (twitter stand-in)",
    )
    save_report("ablation_ht_capacity", text, rows)

    rates = [float(r[1].rstrip("%")) for r in rows]
    # Monotone non-increasing fallback rate in h; big h ~ no fallbacks.
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
    assert rates[-1] < rates[0] or rates[0] == 0.0


def test_cms_depth_sweep(benchmark, save_report):
    """Deeper CMS rows cut false-positive fallbacks when the HT is tiny."""
    graph = load_dataset("aligraph")

    def sweep():
        rows = []
        for depth in (1, 2, 4, 8):
            config = StrategyConfig(
                ht_capacity=16, cms_depth=depth, cms_width=256
            )
            result, fallback_rate = run_with(graph, config)
            rows.append(
                (depth, f"{fallback_rate:.2%}",
                 f"{result.seconds_per_iteration * 1e6:.2f}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["CMS depth d", "fallback rate", "us/iteration"],
        rows,
        title="Ablation: CMS depth with a deliberately tiny HT (aligraph)",
    )
    save_report("ablation_cms_depth", text, rows)

    rates = [float(r[1].rstrip("%")) for r in rows]
    assert rates[-1] <= rates[0] + 1e-9


def test_degree_threshold_sweep(benchmark, save_report):
    """The 32/128 thresholds of Section 5.3 sit near the modeled optimum."""
    graph = load_dataset("ljournal")

    def sweep():
        rows = []
        for low, high in ((8, 32), (32, 128), (64, 256), (128, 512)):
            config = StrategyConfig(low_threshold=low, high_threshold=high)
            result, _ = run_with(graph, config)
            rows.append(
                (f"{low}/{high}",
                 f"{result.seconds_per_iteration * 1e6:.2f}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["low/high threshold", "us/iteration"],
        rows,
        title="Ablation: degree-class thresholds (ljournal stand-in)",
    )
    save_report("ablation_thresholds", text, rows)

    times = {r[0]: float(r[1]) for r in rows}
    # The paper's 32/128 choice is within 1.5x of the best swept setting.
    assert times["32/128"] <= 1.5 * min(times.values())


def test_low_degree_strategy_comparison(benchmark, save_report):
    """Section 4.2's three options on the two regimes that stress them:
    a constant-degree lattice (roadNet) and a power-law graph (youtube)."""

    def sweep():
        rows = []
        all_results = {}
        for dataset in ("roadNet", "youtube"):
            graph = load_dataset(dataset)
            results = {}
            for strategy in (
                "thread_per_vertex", "warp_per_vertex", "warp_multi"
            ):
                config = StrategyConfig(low_strategy=strategy)
                result, _ = run_with(graph, config)
                results[strategy] = result
                rows.append(
                    (dataset, strategy,
                     f"{result.seconds_per_iteration * 1e6:.2f}",
                     f"{result.total_counters.lane_utilization:.1%}")
                )
            labels = [r.labels for r in results.values()]
            assert all(np.array_equal(labels[0], l) for l in labels[1:])
            all_results[dataset] = results
        return rows, all_results

    (rows, all_results) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["dataset", "low-degree strategy", "us/iteration",
         "lane utilization"],
        rows,
        title="Ablation: low-degree scheduling strategies",
    )
    save_report("ablation_low_degree_strategy", text, rows)

    for dataset, results in all_results.items():
        per_iter = {
            name: r.seconds_per_iteration for name, r in results.items()
        }
        # One-warp-one-vertex is the clear loser everywhere (idle lanes),
        # by the factors the Table 3 `warp` row is built on.
        assert per_iter["warp_multi"] < per_iter["warp_per_vertex"] / 1.5

    # Under power-law degree divergence, packing also beats
    # one-thread-one-vertex (on a constant-degree lattice the two are
    # close — there is no divergence to exploit).
    youtube = all_results["youtube"]
    assert (
        youtube["warp_multi"].seconds_per_iteration
        < youtube["thread_per_vertex"].seconds_per_iteration
    )
    # And packing keeps lanes busy.
    for results in all_results.values():
        assert (
            results["warp_multi"].total_counters.lane_utilization
            > results["warp_per_vertex"].total_counters.lane_utilization
        )
